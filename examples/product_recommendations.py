"""Co-purchase recommendation on an Amazon-like product network.

Demonstrates the scalable query path of the library: instead of the exact
(quadratic) iterative engine, we precompute a reverse-walk index once and
answer top-k queries with the Importance-Sampling Monte-Carlo estimator of
Algorithm 1 — with pruning (θ = 0.05) and the SLING-style index, the
configuration the paper shows to run at SimRank speed.

Run:  python examples/product_recommendations.py
"""

import time

from repro import MonteCarloSemSim, SlingIndex, WalkIndex, top_k_similar
from repro.datasets import amazon_like


def main() -> None:
    print("Generating an Amazon-like co-purchase network...")
    data = amazon_like(num_products=300, seed=7)
    graph, measure = data.graph, data.measure
    print(f"  {graph} with a {len(data.taxonomy)}-concept category taxonomy")
    print()

    print("Preprocessing: 150 reverse walks of length 15 per node + SLING index")
    start = time.perf_counter()
    walk_index = WalkIndex(graph, num_walks=150, length=15, seed=0)
    sling = SlingIndex(graph, measure, theta=0.1)
    print(f"  built in {time.perf_counter() - start:.2f}s "
          f"({walk_index.storage_bytes / 1024:.0f} KiB walks, "
          f"{sling.num_entries} indexed pairs)")
    print()

    estimator = MonteCarloSemSim(
        walk_index, measure, decay=0.6, theta=0.05, pair_index=sling
    )

    # Recommend for a handful of products; the semantic upper bound
    # (Prop. 2.5) prunes the candidate scan.
    for query in data.entity_nodes[:3]:
        category = data.extras["categories"][query]
        start = time.perf_counter()
        recommendations = top_k_similar(
            query, data.entity_nodes, 5, estimator.similarity, measure=measure
        )
        elapsed = (time.perf_counter() - start) * 1000
        print(f"Customers who bought {query} (category {category}) may like "
              f"[{elapsed:.1f} ms]:")
        for product, score in recommendations:
            print(f"    {product:<22} score={score:.4f} "
                  f"(category {data.extras['categories'][product]})")
        print()


if __name__ == "__main__":
    main()
