"""Quickstart — the paper's running example end to end.

Builds the Figure 1 bibliographic network, computes SimRank and SemSim on
it, and shows the paper's headline observation (Example 2.2): SimRank —
structure only — thinks Bo is the author most similar to Aditi, while
SemSim, weighting the same recursion with Lin semantic similarity, promotes
John, whose field of interest (Spatial Crowdsourcing) is semantically much
closer to Aditi's (Crowd Mining).

Run:  python examples/quickstart.py
"""

from repro import SemSim, SimRank
from repro.datasets import figure1_network


def main() -> None:
    data = figure1_network()
    graph, measure = data.graph, data.measure

    print("Figure 1 network:", graph)
    print()

    print("Lin semantic similarities (Example 2.2):")
    for a, b in [
        ("Bo", "Aditi"),
        ("John", "Aditi"),
        ("Spatial Crowdsourcing", "Crowd Mining"),
        ("Web Data Mining", "Crowd Mining"),
    ]:
        print(f"  Lin({a}, {b}) = {measure.similarity(a, b):.3f}")
    print()

    # The paper's setting: decay 0.8, three iterations.
    simrank = SimRank(graph, decay=0.8, max_iterations=3, tolerance=0.0)
    semsim = SemSim(graph, measure, decay=0.8, max_iterations=3, tolerance=0.0)

    print("Who is more similar to Aditi — John or Bo?")
    print(f"  SimRank:  John {simrank.similarity('John', 'Aditi'):.4f}   "
          f"Bo {simrank.similarity('Bo', 'Aditi'):.4f}")
    print(f"  SemSim:   John {semsim.similarity('John', 'Aditi'):.6f}   "
          f"Bo {semsim.similarity('Bo', 'Aditi'):.6f}")
    print()

    simrank_pick = max(["John", "Bo"], key=lambda a: simrank.similarity(a, "Aditi"))
    semsim_pick = max(["John", "Bo"], key=lambda a: semsim.similarity(a, "Aditi"))
    print(f"SimRank picks {simrank_pick} (countries share a continent);")
    print(f"SemSim picks {semsim_pick} (fields of interest are semantically close).")


if __name__ == "__main__":
    main()
