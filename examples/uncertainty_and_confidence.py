"""Uncertain graphs and statistically confident rankings.

Two production concerns the paper's Section 7 points at, both supported by
this library:

1. **Uncertain edges** — relations extracted with confidence scores.  The
   possible-world semantics turns SemSim into an expectation; the
   across-world spread tells you which scores the uncertainty actually
   touches.
2. **Confidence-aware top-k** — Monte-Carlo estimates carry sampling
   error; Prop. 4.3 says far-apart scores essentially never swap ranks,
   while close ones may.  ``top_k_confident`` surfaces exactly which rank
   boundaries are settled.

Run:  python examples/uncertainty_and_confidence.py
"""

from repro.core import (
    MonteCarloSemSim,
    UncertainHIN,
    UncertainSemSim,
    WalkIndex,
    top_k_confident,
)
from repro.datasets import aminer_like


def main() -> None:
    data = aminer_like(num_authors=100, num_terms=50, seed=9)
    graph, measure = data.graph, data.measure
    print(f"Bibliographic network: {graph}")
    print()

    # ------------------------------------------------------------------
    # Part 1 — uncertain collaboration edges.
    # ------------------------------------------------------------------
    author_a, author_b = data.entity_nodes[0], data.entity_nodes[1]
    uncertain = UncertainHIN(graph)
    downgraded = 0
    for target, _, label in list(graph.out_edges(author_a)):
        if label == "co-author":
            uncertain.set_edge_probability(author_a, target, 0.5)
            uncertain.set_edge_probability(target, author_a, 0.5)
            downgraded += 1
    print(f"Downgraded {downgraded} of {author_a}'s collaborations to p=0.5.")

    engine = UncertainSemSim(uncertain, measure, decay=0.6, num_worlds=15, seed=1)
    touched = engine.score(author_a, author_b)
    untouched = engine.score(data.entity_nodes[5], data.entity_nodes[6])
    print(f"  E[sim({author_a}, {author_b})] = {touched.mean:.4f} "
          f"(± {touched.std:.4f} across worlds — uncertainty reaches this pair)")
    print(f"  E[sim({data.entity_nodes[5]}, {data.entity_nodes[6]})] = "
          f"{untouched.mean:.4f} (± {untouched.std:.4f})")
    print()

    # ------------------------------------------------------------------
    # Part 2 — which top-k ranks can you trust?
    # ------------------------------------------------------------------
    index = WalkIndex(graph, num_walks=150, length=12, seed=2)
    estimator = MonteCarloSemSim(index, measure, decay=0.6, theta=None)
    ranking = top_k_confident(author_a, data.entity_nodes, 5, estimator)
    print(f"Top-5 most similar to {author_a} (MC estimates ± 95% half-width):")
    for (node, estimate, half), settled in zip(ranking.ranking, ranking.separated):
        marker = "settled" if settled else "could swap with the next rank"
        print(f"    {node:<14} {estimate:.4f} ± {half:.4f}   [{marker}]")


if __name__ == "__main__":
    main()
