"""Plugging custom semantic measures into SemSim.

SemSim is modular: any measure satisfying the three axioms of Section 2.2
(symmetry, self-similarity 1, values in (0, 1]) drops into the same
machinery.  This example runs the same WordNet-like relatedness task under
five different measures — Lin (the paper's choice), Resnik, Jiang-Conrath,
Wu-Palmer and Rada path — plus a deliberately broken measure to show the
axiom validator at work.

Run:  python examples/custom_semantics.py
"""

from repro import SemSim, validate_measure
from repro.errors import MeasureAxiomError
from repro.datasets import wordnet_like, wordsim_benchmark
from repro.semantics import (
    JiangConrathMeasure,
    LinMeasure,
    RadaPathMeasure,
    ResnikMeasure,
    WuPalmerMeasure,
)
from repro.tasks import evaluate_relatedness


class BrokenMeasure:
    """Violates the range axiom: can return 0."""

    def similarity(self, a, b):
        return 1.0 if a == b else 0.0


def main() -> None:
    data = wordnet_like(depth=5, seed=3)
    judgements = wordsim_benchmark(data, num_pairs=80, seed=1)
    print(f"WordNet-like taxonomy: {data.graph}; "
          f"{len(judgements)} gold relatedness judgements")
    print()

    measures = {
        "Lin": LinMeasure(data.taxonomy, ic=data.ic),
        "Resnik": ResnikMeasure(data.taxonomy, ic=data.ic),
        "Jiang-Conrath": JiangConrathMeasure(data.taxonomy, ic=data.ic),
        "Wu-Palmer": WuPalmerMeasure(data.taxonomy),
        "Rada path": RadaPathMeasure(data.taxonomy),
    }

    print(f"{'measure':<16}{'axioms':>8}{'relatedness r':>16}")
    for name, measure in measures.items():
        validate_measure(measure, data.entity_nodes[:12])  # raises on violation
        engine = SemSim(data.graph, measure, decay=0.6, max_iterations=20)
        result = evaluate_relatedness(judgements, engine.similarity, name)
        print(f"{name:<16}{'ok':>8}{result.pearson_r:>16.3f}")
    print()

    print("And a measure that violates the axioms:")
    try:
        validate_measure(BrokenMeasure(), data.entity_nodes[:5])
    except MeasureAxiomError as error:
        print(f"    rejected: {error}")


if __name__ == "__main__":
    main()
