"""Entity resolution on an AMiner-like bibliographic network.

Reproduces the Section 5.3 workflow: mine duplicate-entity candidates with
Levenshtein string distance over the author/term name table, then use
SemSim top-k search to confirm which candidates are true duplicates —
exploiting the fact that a duplicate entry shares most of its neighbourhood
(collaborators, terms, country) with the original.

Run:  python examples/author_deduplication.py
"""

from repro import SemSim, top_k_similar
from repro.datasets import aminer_like
from repro.tasks import evaluate_entity_resolution, mine_duplicates_by_levenshtein


def main() -> None:
    print("Generating an AMiner-like bibliographic network with planted duplicates...")
    data = aminer_like(num_authors=180, num_terms=90, seed=42)
    print(f"  {data.graph}; {len(data.extras['duplicates'])} planted duplicate pairs")
    print()

    # Step 1 — candidate mining by string distance, as in the paper.
    term_names = {
        node: name for node, name in data.extras["names"].items()
        if str(node).startswith("term")
    }
    mined = mine_duplicates_by_levenshtein(term_names, max_distance=0.2)
    print(f"Levenshtein mining over term names found {len(mined)} candidate pairs, e.g.:")
    for original, duplicate in mined[:3]:
        print(f"    {term_names[original]!r}  ~  {term_names[duplicate]!r}")
    print()

    # Step 2 — confirm with similarity search.
    print("Computing SemSim (iterative form, c=0.6)...")
    engine = SemSim(data.graph, data.measure, decay=0.6, max_iterations=20)

    original, duplicate = data.extras["duplicates"][0]
    print(f"Top-5 most similar entities to {original}:")
    for node, score in top_k_similar(
        original, data.entity_nodes, 5, engine.similarity
    ):
        marker = "  <-- planted duplicate" if node == duplicate else ""
        print(f"    {node:<18} {score:.4f}{marker}")
    print()

    # Step 3 — quantitative evaluation against the planted ground truth.
    result = evaluate_entity_resolution(
        data.extras["duplicates"], data.entity_nodes, engine.similarity,
        ks=(2, 5, 10), method="SemSim",
    )
    print("Precision@k over all planted duplicates:")
    for k, precision in result.precision_at_k.items():
        print(f"    k={k:<3} {precision:.2f}")


if __name__ == "__main__":
    main()
