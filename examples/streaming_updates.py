"""Similarity under a stream of graph updates.

Information networks are dynamic (the paper's Section 7): collaborations
accumulate, products get co-purchased.  This example shows the incremental
path: plan the walk index from the (eps, delta) accuracy target using the
paper's Prop. 4.2 bounds, build it once, then apply edge updates — only the
walks visiting the touched node are resampled — and keep querying without
ever rebuilding from scratch.

Run:  python examples/streaming_updates.py
"""

from repro.core import (
    DynamicWalkIndex,
    MonteCarloSemSim,
    plan_index,
    single_source_mc,
)
from repro.datasets import aminer_like


def main() -> None:
    data = aminer_like(num_authors=120, num_terms=60, seed=5)
    graph, measure = data.graph, data.measure
    print(f"Bibliographic network: {graph}")

    # Plan the index from the accuracy target (Prop. 4.2). The analytic
    # bound is conservative; we cap it at the paper's practical defaults.
    planned_walks, planned_length = plan_index(
        decay=0.6, epsilon=0.1, delta=0.05, num_nodes=graph.num_nodes
    )
    num_walks = min(planned_walks, 300)
    length = max(planned_length, 10)
    print(f"Prop. 4.2 plan for (eps=0.1, delta=0.05): n_w={planned_walks}, "
          f"t={planned_length}; using n_w={num_walks}, t={length}")
    print()

    index = DynamicWalkIndex(graph, num_walks=num_walks, length=length, seed=0)
    author_a, author_b = data.entity_nodes[0], data.entity_nodes[1]

    def report(tag: str) -> None:
        estimator = MonteCarloSemSim(index, measure, decay=0.6, theta=0.05)
        score = estimator.similarity(author_a, author_b)
        ranked = sorted(
            single_source_mc(estimator, author_a, data.entity_nodes[:40]).items(),
            key=lambda item: -item[1],
        )
        closest = [node for node, _ in ranked if node != author_a][:3]
        print(f"{tag}: semsim({author_a}, {author_b}) = {score:.4f}; "
              f"closest to {author_a}: {closest}")

    report("before updates")

    # The two authors start collaborating — repeatedly.
    for round_number in range(1, 4):
        resampled = index.add_edge(author_a, author_b, weight=float(round_number))
        resampled += index.add_edge(author_b, author_a, weight=float(round_number))
        print(f"  round {round_number}: collaboration weight -> {round_number} "
              f"({resampled} walks resampled, not {index.storage_entries} rebuilt)")
        report(f"after round {round_number}")
    print()
    print(f"Total: {index.updates_applied} updates, "
          f"{index.walks_resampled} walk resamples over "
          f"{index.storage_entries} stored steps.")


if __name__ == "__main__":
    main()
