"""Flat-gather, preallocated, row-blocked backend — the guaranteed fast path.

Same arithmetic as the ``numpy`` reference, reorganised around three
observations about where the reference kernel actually spends its time:

* **Flat-index gathers.**  Two-array fancy indexing (``sem[nu, nv]``,
  ``walks[cr, rw]``) goes through numpy's general ``mapiter`` machinery —
  measured 2-3x slower per element than a flat ``take``.  Row gathers
  become ``table.reshape(-1, L).take(cand * n_w + walk, axis=0)``, and the
  per-step node-pair key plane ``walk_u * n + walk_v`` is computed **once**
  and serves *both* element gathers: sliced ``[:, 1:]`` it addresses the
  semantic numerators, sliced ``[:, :k]`` the SO denominators.
* **Preallocated scratch.**  The factor/SO/q/cumprod planes live in
  thread-local buffers reused across calls (serving workers share one
  estimator, so scratch must be per-thread); gathers land in them via
  ``np.take(..., out=...)`` and the elementwise chain runs in place, so
  the steady-state kernel allocates almost nothing.
* **Row-blocked chain.**  The multiply/divide/cumprod chain walks the
  planes about a dozen times; processing ``config.block_rows`` rows at a
  time keeps that working set cache-resident instead of streaming full
  planes from memory on every pass.

Bit-identity argument (``exact = True``): ``take`` fetches exactly the
floats fancy indexing fetched, every per-step value is a pure elementwise
function of that row's inputs, and the cumprod runs per row — so neither
the gather style nor the block boundaries can change a single
intermediate float.  The only order-sensitive operation is the
per-candidate summation; rows are processed in their original order and
reduced by a **single** global ``bincount``, the exact addition sequence
of the reference.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backends.base import (
    WalkScoreRequest,
    WalkScoreResult,
    register_backend,
    resolve_so_plane,
)
from repro.backends.numpy_ref import NumpyBackend


@register_backend
class BlockedBackend(NumpyBackend):
    """Flat-gather walk-score kernel, bit-identical to the reference."""

    name = "blocked"
    exact = True
    tolerance = 0.0
    description = (
        "flat-gather/preallocated row-blocked kernels, bit-identical to numpy"
    )

    def __init__(self, config=None) -> None:
        super().__init__(config)
        self._scratch = threading.local()

    def _buffers(self, rows: int, width: int) -> tuple[np.ndarray, ...]:
        """Per-thread scratch planes, grown monotonically, never shared."""
        planes = getattr(self._scratch, "planes", None)
        if planes is None or planes[0].shape[0] < rows or planes[0].shape[1] < width:
            shape = (
                max(rows, planes[0].shape[0] if planes else 0),
                max(width, planes[0].shape[1] if planes else 0),
            )
            planes = tuple(np.empty(shape, dtype=np.float64) for _ in range(4))
            self._scratch.planes = planes
        return planes

    def batch_walk_scores(self, request: WalkScoreRequest) -> WalkScoreResult:
        meetings = request.meetings
        m = request.positions.size
        rows_pair, rows_walk = np.nonzero(meetings >= 1)
        n_rows = rows_pair.size
        if n_rows == 0:
            return WalkScoreResult(
                totals=np.zeros(m, dtype=np.float64), walks_met=0
            )
        walks = request.walks
        pos_u = request.pos_u
        decay = request.decay
        theta = request.theta
        met_at = meetings[rows_pair, rows_walk]                         # (R,)
        max_k = int(meetings.max())
        num_nodes = request.sem_matrix.shape[0]
        n_w = walks.shape[1]
        width1 = walks.shape[2]                                         # L + 1
        width = width1 - 1

        # Flat-index row gathers: one take per table.  The u-side tables are
        # indexed by walk alone; the candidate side by (candidate, walk)
        # collapsed to a single flat row id.
        flat_rows = request.positions[rows_pair] * n_w + rows_walk
        walk_u = walks[pos_u].take(rows_walk, axis=0)[:, : max_k + 1]
        walk_v = walks.reshape(-1, width1).take(flat_rows, axis=0)[:, : max_k + 1]
        w_u = request.step_weights[pos_u].take(rows_walk, axis=0)[:, :max_k]
        w_v = request.step_weights.reshape(-1, width).take(flat_rows, axis=0)[
            :, :max_k
        ]
        q_u = request.step_q[pos_u].take(rows_walk, axis=0)[:, :max_k]
        q_v = request.step_q.reshape(-1, width).take(flat_rows, axis=0)[:, :max_k]

        # One key plane, two gathers: keys[:, 1:] addresses sem(nu, nv),
        # keys[:, :max_k] addresses SO(cu, cv).  (int64: node * n + node
        # overflows int32 past ~46k nodes.)
        keys = walk_u.astype(np.int64) * num_nodes + walk_v

        f_s, so_s, q_s, run_s = self._buffers(n_rows, max_k)
        factor = f_s[:n_rows, :max_k]
        so = so_s[:n_rows, :max_k]
        q_step = q_s[:n_rows, :max_k]
        running = run_s[:n_rows, :max_k]

        np.take(request.sem_matrix, keys[:, 1:], out=factor)
        if request.so_lookup is None:
            # active cells = one per step before each meeting
            so_evaluations = int(met_at.sum())
            np.take(request.so_matrix, keys[:, :max_k], out=so)
        else:
            so_evaluations = 0
            step_ids = np.arange(max_k)
            active_full = step_ids[None, :] < met_at[:, None]
            so[...] = resolve_so_plane(
                walk_u[:, :max_k], walk_v[:, :max_k], active_full,
                num_nodes, request.so_lookup,
            )

        totals_rows = np.empty(n_rows, dtype=np.float64)
        step_ids = np.arange(max_k)
        walks_pruned = 0
        block = self.config.block_rows
        # The chain runs in place over row blocks (contiguous views — rows
        # stay in original order), keeping ~a dozen passes cache-resident.
        with np.errstate(divide="ignore", invalid="ignore"):
            for s in range(0, n_rows, block):
                e = min(s + block, n_rows)
                b = e - s
                fb = factor[s:e]
                sob = so[s:e]
                qb = q_step[s:e]
                runb = running[s:e]
                ma_b = met_at[s:e]

                # Same chain as the reference —
                # ((sem * w_u) * w_v / so) * c / (q_u * q_v) — in place.
                np.multiply(fb, w_u[s:e], out=fb)
                np.multiply(fb, w_v[s:e], out=fb)
                np.multiply(q_u[s:e], q_v[s:e], out=qb)
                np.divide(fb, sob, out=fb)
                np.multiply(fb, decay, out=fb)
                np.divide(fb, qb, out=fb)

                active = step_ids[None, :] < ma_b[:, None]
                bad = (sob <= 0) | (qb <= 0)
                fb[active & bad] = 0.0
                fb[~active] = 1.0

                np.cumprod(fb, axis=1, out=runb)
                row_ids = np.arange(b)
                last = runb[row_ids, ma_b - 1]
                if theta is None:
                    totals_rows[s:e] = last
                else:
                    cut = (runb <= theta) & active
                    cut_anywhere = cut.any(axis=1)
                    first_cut = cut.argmax(axis=1)
                    totals_rows[s:e] = np.where(
                        cut_anywhere, runb[row_ids, first_cut], last
                    )
                    bailed = (bad & active)[row_ids, first_cut]
                    walks_pruned += int((cut_anywhere & ~bailed).sum())

        # Rows never left their original order, so this single global
        # bincount reproduces the reference's addition sequence exactly.
        totals = np.bincount(
            rows_pair, weights=totals_rows, minlength=m
        ).astype(np.float64)
        return WalkScoreResult(
            totals=totals,
            walks_met=n_rows,
            so_evaluations=so_evaluations,
            walks_pruned=walks_pruned,
        )
