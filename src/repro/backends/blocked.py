"""Flat-gather, preallocated, row-blocked backend — the guaranteed fast path.

Same arithmetic as the ``numpy`` reference, reorganised around four
observations about where the reference kernel actually spends its time:

* **Flat-index gathers.**  Two-array fancy indexing (``sem[nu, nv]``,
  ``walks[cr, rw]``) goes through numpy's general ``mapiter`` machinery —
  measured 2-3x slower per element than a flat ``take``.  Row gathers
  become ``table.reshape(-1, L).take(cand * n_w + walk, axis=0)``, and the
  per-step node-pair key plane ``walk_u * n + walk_v`` is computed **once**
  and serves *both* element gathers: sliced ``[:, 1:]`` it addresses the
  semantic numerators, sliced ``[:, :k]`` the SO denominators.
* **Cached u-side key plane.**  ``walk_u * n`` depends only on the source
  row, so for repeated same-source batches (top-k scans, coalesced serve
  traffic, sharded scatter fan-out) the int64 plane ``walks[pos_u] * n``
  is computed once per source and reused across calls from a small
  per-thread cache; later calls pay one ``take`` + one integer add.
  Entries are keyed by the request's ``source_key`` (the caller's
  content identity for the row — mandatory when rows are rewritten in
  place, as the sharded worker's slot rows are) and fall back to
  ``pos_u`` only for rows declared immutable.  When
  the SO denominators come from the precomputed matrix, the u-side walk
  gather is skipped entirely — the key plane is its only consumer.
* **Preallocated scratch.**  The factor/SO/q/cumprod planes *and* the
  step-mask planes live in thread-local buffers reused across calls
  (serving workers share one estimator, so scratch must be per-thread);
  gathers land in them via ``np.take(..., out=...)``, the elementwise
  chain runs in place, and the active/zero masks are fused into three
  boolean planes written with ``np.copyto(..., where=...)`` — so the
  steady-state kernel allocates almost nothing.
* **Row-blocked chain.**  The multiply/divide/cumprod chain walks the
  planes about a dozen times; processing ``config.block_rows`` rows at a
  time keeps that working set cache-resident instead of streaming full
  planes from memory on every pass.

Bit-identity argument (``exact = True``): ``take`` fetches exactly the
floats fancy indexing fetched; the cached key plane is integer arithmetic
(``(walks[pos_u].astype(int64) * n).take(rows)[:, :k] + walk_v`` is
elementwise equal to ``walk_u.astype(int64) * n + walk_v`` — exact, no
rounding); every per-step value is a pure elementwise function of that
row's inputs; the mask writes set exactly the cells the reference's
boolean assignments set; and the cumprod runs per row — so neither the
gather style, the caching, nor the block boundaries can change a single
intermediate float.  The only order-sensitive operation is the
per-candidate summation; rows are processed in their original order and
reduced by a **single** global ``bincount``, the exact addition sequence
of the reference.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.backends.base import (
    WalkScoreRequest,
    WalkScoreResult,
    register_backend,
    resolve_so_plane,
)
from repro.backends.numpy_ref import NumpyBackend

#: Sources whose int64 key plane is kept per thread (top-k scans and
#: coalesced serving hit one source many times; the plane is a few tens
#: of KB, so a handful of entries covers every real access pattern).
_U_KEY_CACHE = 16


@register_backend
class BlockedBackend(NumpyBackend):
    """Flat-gather walk-score kernel, bit-identical to the reference."""

    name = "blocked"
    exact = True
    tolerance = 0.0
    description = (
        "flat-gather/preallocated row-blocked kernels, bit-identical to numpy"
    )

    def __init__(self, config=None) -> None:
        super().__init__(config)
        self._scratch = threading.local()

    def _buffers(self, rows: int, width: int) -> tuple[np.ndarray, ...]:
        """Per-thread scratch planes, grown monotonically, never shared."""
        planes = getattr(self._scratch, "planes", None)
        if planes is None or planes[0].shape[0] < rows or planes[0].shape[1] < width:
            shape = (
                max(rows, planes[0].shape[0] if planes else 0),
                max(width, planes[0].shape[1] if planes else 0),
            )
            planes = tuple(np.empty(shape, dtype=np.float64) for _ in range(4)) + (
                tuple(np.empty(shape, dtype=bool) for _ in range(3))
            )
            self._scratch.planes = planes
        return planes

    def _u_key_plane(
        self,
        walks: np.ndarray,
        pos_u: int,
        num_nodes: int,
        source_key=None,
    ) -> np.ndarray:
        """``walks[pos_u].astype(int64) * num_nodes``, cached per source.

        The cache is invalidated whenever the walk tensor object changes
        (a different index generation) and is thread-local, so serving
        workers never contend.  Entries are keyed by *source_key* when
        the request carries one — the caller's content identity for the
        row, required when rows are rewritten in place (the sharded
        worker's slot rows; see :class:`~repro.backends.WalkScoreRequest`)
        — and by ``pos_u`` otherwise, which is only sound because a
        keyless row is declared immutable.
        """
        cache = getattr(self._scratch, "u_keys", None)
        if cache is None or cache[0] is not walks or cache[1] != num_nodes:
            cache = (walks, num_nodes, {})
            self._scratch.u_keys = cache
        per_source = cache[2]
        key = pos_u if source_key is None else source_key
        plane = per_source.get(key)
        if plane is None:
            if len(per_source) >= _U_KEY_CACHE:
                per_source.clear()
            plane = walks[pos_u].astype(np.int64) * num_nodes
            per_source[key] = plane
        return plane

    def batch_walk_scores(self, request: WalkScoreRequest) -> WalkScoreResult:
        meetings = request.meetings
        m = request.positions.size
        rows_pair, rows_walk = np.nonzero(meetings >= 1)
        n_rows = rows_pair.size
        if n_rows == 0:
            return WalkScoreResult(
                totals=np.zeros(m, dtype=np.float64), walks_met=0
            )
        walks = request.walks
        pos_u = request.pos_u
        decay = request.decay
        theta = request.theta
        met_at = meetings[rows_pair, rows_walk]                         # (R,)
        max_k = int(meetings.max())
        num_nodes = request.sem_matrix.shape[0]
        n_w = walks.shape[1]
        width1 = walks.shape[2]                                         # L + 1
        width = width1 - 1

        # Flat-index row gathers: one take per table.  The u-side tables are
        # indexed by walk alone; the candidate side by (candidate, walk)
        # collapsed to a single flat row id.
        flat_rows = request.positions[rows_pair] * n_w + rows_walk
        walk_v = walks.reshape(-1, width1).take(flat_rows, axis=0)[:, : max_k + 1]
        w_u = request.step_weights[pos_u].take(rows_walk, axis=0)[:, :max_k]
        w_v = request.step_weights.reshape(-1, width).take(flat_rows, axis=0)[
            :, :max_k
        ]
        q_u = request.step_q[pos_u].take(rows_walk, axis=0)[:, :max_k]
        q_v = request.step_q.reshape(-1, width).take(flat_rows, axis=0)[:, :max_k]

        # One key plane, two gathers: keys[:, 1:] addresses sem(nu, nv),
        # keys[:, :max_k] addresses SO(cu, cv).  The u-side term
        # walk_u * n (int64: it overflows int32 past ~46k nodes) is cached
        # across calls, so a repeated source pays one take + one add.
        keys = self._u_key_plane(
            walks, pos_u, num_nodes, request.source_key
        ).take(rows_walk, axis=0)[:, : max_k + 1]
        keys = keys + walk_v

        f_s, so_s, q_s, run_s, act_s, bad_s, tmp_s = self._buffers(n_rows, max_k)
        factor = f_s[:n_rows, :max_k]
        so = so_s[:n_rows, :max_k]
        q_step = q_s[:n_rows, :max_k]
        running = run_s[:n_rows, :max_k]
        act_plane = act_s[:n_rows, :max_k]
        bad_plane = bad_s[:n_rows, :max_k]
        tmp_plane = tmp_s[:n_rows, :max_k]

        np.take(request.sem_matrix, keys[:, 1:], out=factor)
        if request.so_lookup is None:
            # active cells = one per step before each meeting; the u-side
            # walk gather is not needed at all on this path — the cached
            # key plane is its only consumer.
            so_evaluations = int(met_at.sum())
            np.take(request.so_matrix, keys[:, :max_k], out=so)
        else:
            so_evaluations = 0
            walk_u = walks[pos_u].take(rows_walk, axis=0)[:, :max_k]
            step_ids_full = np.arange(max_k)
            active_full = step_ids_full[None, :] < met_at[:, None]
            so[...] = resolve_so_plane(
                walk_u, walk_v[:, :max_k], active_full,
                num_nodes, request.so_lookup,
            )

        totals_rows = np.empty(n_rows, dtype=np.float64)
        step_ids = np.arange(max_k)
        walks_pruned = 0
        block = self.config.block_rows
        row_ids_full = np.arange(min(block, n_rows))
        # The chain runs in place over row blocks (contiguous views — rows
        # stay in original order), keeping ~a dozen passes cache-resident;
        # the masks land in preallocated bool planes, so the loop body
        # allocates nothing plane-sized.
        with np.errstate(divide="ignore", invalid="ignore"):
            for s in range(0, n_rows, block):
                e = min(s + block, n_rows)
                b = e - s
                fb = factor[s:e]
                sob = so[s:e]
                qb = q_step[s:e]
                runb = running[s:e]
                ma_b = met_at[s:e]
                actb = act_plane[s:e]
                badb = bad_plane[s:e]
                tmpb = tmp_plane[s:e]

                # Same chain as the reference —
                # ((sem * w_u) * w_v / so) * c / (q_u * q_v) — in place.
                np.multiply(fb, w_u[s:e], out=fb)
                np.multiply(fb, w_v[s:e], out=fb)
                np.multiply(q_u[s:e], q_v[s:e], out=qb)
                np.divide(fb, sob, out=fb)
                np.multiply(fb, decay, out=fb)
                np.divide(fb, qb, out=fb)

                # active = step < met_at; zero the active cells whose SO or
                # q denominator collapsed, neutralise the inactive tail.
                np.greater.outer(ma_b, step_ids, out=actb)
                np.less_equal(sob, 0.0, out=badb)
                np.less_equal(qb, 0.0, out=tmpb)
                np.logical_or(badb, tmpb, out=badb)
                np.logical_and(badb, actb, out=badb)
                np.copyto(fb, 0.0, where=badb)
                np.logical_not(actb, out=tmpb)
                np.copyto(fb, 1.0, where=tmpb)

                np.cumprod(fb, axis=1, out=runb)
                row_ids = row_ids_full[:b]
                last = runb[row_ids, ma_b - 1]
                if theta is None:
                    totals_rows[s:e] = last
                else:
                    np.less_equal(runb, theta, out=tmpb)
                    np.logical_and(tmpb, actb, out=tmpb)
                    cut_anywhere = tmpb.any(axis=1)
                    first_cut = tmpb.argmax(axis=1)
                    totals_rows[s:e] = np.where(
                        cut_anywhere, runb[row_ids, first_cut], last
                    )
                    # badb already holds bad & active
                    bailed = badb[row_ids, first_cut]
                    walks_pruned += int((cut_anywhere & ~bailed).sum())

        # Rows never left their original order, so this single global
        # bincount reproduces the reference's addition sequence exactly.
        totals = np.bincount(
            rows_pair, weights=totals_rows, minlength=m
        ).astype(np.float64)
        return WalkScoreResult(
            totals=totals,
            walks_met=n_rows,
            so_evaluations=so_evaluations,
            walks_pruned=walks_pruned,
        )
