"""Pluggable compute backends for the Monte-Carlo scoring hot paths.

See :mod:`repro.backends.base` for the protocol and the equivalence
contract.  Importing this package registers the built-in backends:

* ``numpy`` — the reference stacked-array kernels (the baseline every
  other backend is verified against);
* ``blocked`` — cache-blocked/preallocated kernels, bit-identical to the
  reference and the guaranteed accelerated fallback;
* ``numba`` — jitted per-row kernels, registered when ``numba`` is
  importable (otherwise listed as unavailable with the reason).

Select one with ``QueryEngine(backend=...)``, the CLI's ``--backend``, or
the ``REPRO_BACKEND`` environment variable; inspect the registry with
``repro backends list``.
"""

from repro.backends.base import (
    BACKEND_ENV_VAR,
    BackendConfig,
    BackendError,
    BackendInfo,
    BackendUnavailableError,
    ComputeBackend,
    DEFAULT_BACKEND,
    UnknownBackendError,
    WalkScoreRequest,
    WalkScoreResult,
    available_backends,
    default_backend_name,
    get_backend,
    kernel_timer,
    register_backend,
    register_unavailable,
    resolve_backend,
    unregister_backend,
)

# Importing the modules registers the built-ins (numba only when present).
from repro.backends import numpy_ref as _numpy_ref  # noqa: F401
from repro.backends import blocked as _blocked      # noqa: F401
from repro.backends import numba_jit as _numba_jit  # noqa: F401

__all__ = [
    "BACKEND_ENV_VAR",
    "BackendConfig",
    "BackendError",
    "BackendInfo",
    "BackendUnavailableError",
    "ComputeBackend",
    "DEFAULT_BACKEND",
    "UnknownBackendError",
    "WalkScoreRequest",
    "WalkScoreResult",
    "available_backends",
    "default_backend_name",
    "get_backend",
    "kernel_timer",
    "register_backend",
    "register_unavailable",
    "resolve_backend",
    "unregister_backend",
]
