"""The compute-backend seam: protocol, configuration and registry.

The Monte-Carlo hot paths — the batched likelihood-ratio walk scores of
Algorithm 1, the classical ``c^tau`` SimRank reduction and the SARW
step-mass products — are pure array kernels: every input they need is
prepared by the estimator (walk tensors, per-step ``W``/``Q`` tables, the
dense semantic matrix, meeting times) and every output is a plain array
plus a handful of work counters.  :class:`ComputeBackend` pins that
contract down so the kernels can be swapped — a different blocking
strategy, a JIT, eventually a sharded or low-rank engine — without
touching the estimator, the serving stack or the CLI.

Backends register themselves by name (:func:`register_backend`) and are
discovered through :func:`available_backends` / ``repro backends list``.
Third-party packages can plug in the same way::

    from repro.backends import ComputeBackend, register_backend

    @register_backend
    class MyBackend(ComputeBackend):
        name = "mine"
        ...

Selection precedence is **kwarg > CLI > environment > default**: an
explicit ``QueryEngine(backend=...)`` (the CLI's ``--backend`` is passed
through as that kwarg) beats the ``REPRO_BACKEND`` environment variable,
which beats the ``"numpy"`` default — see :func:`resolve_backend`.

Equivalence contract: a backend with ``exact=True`` must be
**bit-identical** to the ``numpy`` reference on every input (same floats,
same operation order); a backend with ``exact=False`` must agree within
its declared ``tolerance`` (an absolute per-score bound).  The
cross-backend property suite (``tests/properties/test_backend_identity.py``)
enforces this for every registered backend.
"""

from __future__ import annotations

import abc
import os
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Callable, Iterator

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.registry import get_registry, is_enabled

#: Backend used when neither the caller nor the environment picks one.
DEFAULT_BACKEND = "numpy"

#: Environment variable consulted by :func:`resolve_backend` when the
#: caller passes no explicit backend.
BACKEND_ENV_VAR = "REPRO_BACKEND"


class BackendError(ConfigurationError):
    """Base class for compute-backend selection/registration errors."""


class UnknownBackendError(BackendError):
    """No backend is registered under the requested name."""

    def __init__(self, name: str, known: list[str]) -> None:
        super().__init__(
            f"unknown compute backend {name!r}; registered backends: "
            f"{', '.join(known) or '(none)'}"
        )
        self.name = name


class BackendUnavailableError(BackendError):
    """The backend is registered but cannot run in this environment."""

    def __init__(self, name: str, reason: str) -> None:
        super().__init__(f"compute backend {name!r} is unavailable: {reason}")
        self.name = name
        self.reason = reason


@dataclass(frozen=True)
class BackendConfig:
    """Tuning knobs shared by every backend.

    block_rows:
        Rows (met coupled walks) whose elementwise factor/cumprod chain is
        processed per block by row-blocked kernels.  Smaller blocks keep
        the chain's working set cache-resident; the value trades numpy
        call overhead against memory traffic.
    step_memo_cap:
        Upper bound on the :class:`~repro.core.sarw.SemanticAwareWalker`
        step-distribution memo (entries, evicted least-recently-used).
        ``None`` disables the cap — only safe for short-lived processes.
    """

    block_rows: int = 4096
    step_memo_cap: int | None = 65536

    def __post_init__(self) -> None:
        if self.block_rows < 1:
            raise ConfigurationError(
                f"block_rows must be >= 1, got {self.block_rows!r}"
            )
        if self.step_memo_cap is not None and self.step_memo_cap < 1:
            raise ConfigurationError(
                f"step_memo_cap must be >= 1 or None, got {self.step_memo_cap!r}"
            )


@dataclass
class WalkScoreRequest:
    """Inputs of the batched Algorithm-1 walk-score kernel.

    All arrays are prepared by :class:`~repro.core.montecarlo.MonteCarloSemSim`
    — the kernel does no graph or measure work of its own.  Rows of the
    kernel's intermediate planes are the met coupled walks, enumerated
    exactly as ``np.nonzero(meetings >= 1)`` (C order); *so_lookup*, when
    given, replaces the dense *so_matrix* with a per-pair callable (the
    SLING ``pair_index`` path) and owns its own evaluation counting.

    *source_key*, when set, is a hashable token that uniquely identifies
    the **contents** of ``walks[pos_u]`` for this ``walks`` object —
    backends may use it to cache source-row derivations across calls.
    ``None`` declares row ``pos_u`` immutable for the lifetime of the
    ``walks`` object (true for estimator- and mmap-backed tensors), so
    ``pos_u`` itself is a safe cache key.  Callers that rewrite a row in
    place between calls (the sharded worker parks shipped source rows in
    reused slot rows) MUST pass a key that changes with the contents —
    e.g. the source's global node position.
    """

    walks: np.ndarray                 # (n, n_w, L + 1) node positions, -1 padded
    pos_u: int                        # query node position
    positions: np.ndarray             # (m,) candidate node positions
    meetings: np.ndarray              # (m, n_w) first-meeting steps, -1 = never
    sem_matrix: np.ndarray            # (n, n) dense semantic matrix
    step_weights: np.ndarray          # (n, n_w, L) per-step edge weights W
    step_q: np.ndarray                # (n, n_w, L) per-step proposal probs Q
    decay: float
    theta: float | None
    so_matrix: np.ndarray | None = None
    so_lookup: Callable[[int, int], float] | None = None
    source_key: "object | None" = None  # content identity of walks[pos_u]


@dataclass
class WalkScoreResult:
    """Outputs of the batched walk-score kernel.

    *totals* holds, per candidate, the sum of per-walk likelihood-ratio
    scores (the scalar path's ``sum_w _walk_score(...)``); the counters are
    the stat deltas the estimator folds into its
    :class:`~repro.core.montecarlo.EstimatorStats`.
    """

    totals: np.ndarray                # (m,) float64
    walks_met: int = 0
    so_evaluations: int = 0
    walks_pruned: int = 0


class ComputeBackend(abc.ABC):
    """Swappable kernels for the Monte-Carlo scoring hot paths.

    Subclasses set three class attributes — ``name`` (the registry key),
    ``exact`` (bit-identical to the ``numpy`` reference?) and
    ``tolerance`` (absolute per-score bound when not exact; 0.0 when
    exact) — and implement the three kernels.  Instances are cheap and
    thread-safe: any scratch state must be per-thread (serving workers
    share one estimator, hence one backend instance).
    """

    name: str = "abstract"
    exact: bool = False
    tolerance: float = 0.0
    description: str = ""

    def __init__(self, config: BackendConfig | None = None) -> None:
        self.config = config if config is not None else BackendConfig()

    @abc.abstractmethod
    def batch_walk_scores(self, request: WalkScoreRequest) -> WalkScoreResult:
        """Run the batched Algorithm-1 likelihood-ratio kernel."""

    @abc.abstractmethod
    def simrank_scores(
        self,
        meetings: np.ndarray,
        met: np.ndarray,
        decay: float,
        num_walks: int,
    ) -> np.ndarray:
        """Classical MC SimRank reduction: ``sum(c^tau) / n_w`` per row."""

    @abc.abstractmethod
    def step_masses(
        self,
        weights_u: np.ndarray,
        weights_v: np.ndarray,
        sem_block: np.ndarray,
    ) -> np.ndarray:
        """SARW step masses ``W(a,u) W(b,v) sem(a,b)``, flattened row-major.

        *sem_block* is the ``(|I(u)|, |I(v)|)`` pairwise semantic block;
        the result aligns with ``[(a, b) for a in I(u) for b in I(v)]``.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r}, exact={self.exact})"


# ---------------------------------------------------------------------------
# SO-plane helper shared by the numpy-family backends (pair_index path).
# ---------------------------------------------------------------------------

def resolve_so_plane(
    cu: np.ndarray,
    cv: np.ndarray,
    active: np.ndarray | None,
    num_nodes: int,
    so_lookup: Callable[[int, int], float],
) -> np.ndarray:
    """Fill a ``(rows, steps)`` SO plane through a per-pair lookup.

    Deduplicates identical ``(cu, cv)`` step pairs before consulting
    *so_lookup* (which owns caching and evaluation counting), exactly as
    the pre-seam batch path did.  *active* marks the cells that need real
    values (inactive cells stay 1.0 and are masked downstream); ``None``
    means the plane is dense and every cell is live.
    """
    pair_keys = cu.astype(np.int64) * np.int64(num_nodes) + cv
    if active is None:
        unique_keys, inverse = np.unique(pair_keys.ravel(), return_inverse=True)
    else:
        unique_keys, inverse = np.unique(pair_keys[active], return_inverse=True)
    unique_so = np.empty(unique_keys.size, dtype=np.float64)
    for j, key in enumerate(unique_keys):
        unique_so[j] = so_lookup(int(key) // num_nodes, int(key) % num_nodes)
    if active is None:
        return unique_so[inverse].reshape(cu.shape)
    so = np.ones(cu.shape, dtype=np.float64)
    so[active] = unique_so[inverse]
    return so


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class BackendInfo:
    """One row of ``repro backends list``."""

    name: str
    available: bool
    exact: bool
    tolerance: float
    description: str
    unavailable_reason: str | None = None


_REGISTRY: dict[str, type[ComputeBackend]] = {}
_UNAVAILABLE: dict[str, tuple[str, str]] = {}  # name -> (reason, description)


def register_backend(cls: type[ComputeBackend]) -> type[ComputeBackend]:
    """Class decorator: register *cls* under its ``name`` attribute.

    Re-registering a name overwrites the previous entry (latest wins), so
    a plugin can shadow a built-in deliberately; an unavailable stub of
    the same name is dropped.
    """
    name = getattr(cls, "name", None)
    if not name or name == ComputeBackend.name:
        raise ConfigurationError(
            f"backend class {cls.__name__} must define a non-default 'name'"
        )
    _REGISTRY[name] = cls
    _UNAVAILABLE.pop(name, None)
    return cls


def register_unavailable(name: str, reason: str, description: str = "") -> None:
    """Record a backend that exists but cannot run here (e.g. no numba).

    Keeps the name discoverable — ``repro backends list`` shows it with
    its reason, and selecting it raises :class:`BackendUnavailableError`
    instead of :class:`UnknownBackendError`.
    """
    if name not in _REGISTRY:
        _UNAVAILABLE[name] = (reason, description)


def unregister_backend(name: str) -> None:
    """Remove *name* from the registry (plugin teardown / testing aid)."""
    _REGISTRY.pop(name, None)
    _UNAVAILABLE.pop(name, None)


def available_backends() -> list[BackendInfo]:
    """Describe every registered backend, available or not, sorted by name."""
    rows = [
        BackendInfo(
            name=name,
            available=True,
            exact=cls.exact,
            tolerance=cls.tolerance,
            description=cls.description,
        )
        for name, cls in _REGISTRY.items()
    ]
    rows.extend(
        BackendInfo(
            name=name,
            available=False,
            exact=False,
            tolerance=0.0,
            description=description,
            unavailable_reason=reason,
        )
        for name, (reason, description) in _UNAVAILABLE.items()
    )
    return sorted(rows, key=lambda info: info.name)


def get_backend(
    name: str, config: BackendConfig | None = None
) -> ComputeBackend:
    """Instantiate the backend registered under *name*."""
    cls = _REGISTRY.get(name)
    if cls is None:
        if name in _UNAVAILABLE:
            raise BackendUnavailableError(name, _UNAVAILABLE[name][0])
        raise UnknownBackendError(name, sorted(_REGISTRY))
    return cls(config)


def default_backend_name() -> str:
    """The name :func:`resolve_backend` falls back to: env var or default."""
    return os.environ.get(BACKEND_ENV_VAR) or DEFAULT_BACKEND


def resolve_backend(
    spec: "str | ComputeBackend | None" = None,
    config: BackendConfig | None = None,
) -> ComputeBackend:
    """Resolve a backend spec with kwarg > env > default precedence.

    *spec* may be a ready :class:`ComputeBackend` instance (returned
    as-is; *config* must then be ``None`` — the instance already carries
    its own), a registered name, or ``None`` — which consults the
    ``REPRO_BACKEND`` environment variable before falling back to
    :data:`DEFAULT_BACKEND`.
    """
    if isinstance(spec, ComputeBackend):
        if config is not None:
            raise ConfigurationError(
                "cannot combine a backend instance with backend_config; "
                "construct the instance with the config instead"
            )
        return spec
    if spec is None:
        spec = default_backend_name()
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"backend must be a name or a ComputeBackend, got {spec!r}"
        )
    return get_backend(spec, config)


# ---------------------------------------------------------------------------
# Kernel timing — the per-backend observability hook.
# ---------------------------------------------------------------------------

_KERNEL_SECONDS = get_registry().histogram(
    "kernel_seconds",
    help="Compute-kernel wall time per call, by backend and kernel.",
    labelnames=("backend", "kernel"),
    buckets=(0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
             0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5),
)

_KERNEL_CELLS: dict[tuple[str, str], object] = {}


@contextmanager
def kernel_timer(backend: str, kernel: str) -> Iterator[None]:
    """Time one kernel call into ``kernel_seconds{backend, kernel}``.

    Free when observability is disabled; label children are cached so the
    hot path pays one dict hit, not a registry lookup.
    """
    if not is_enabled():
        yield
        return
    cell = _KERNEL_CELLS.get((backend, kernel))
    if cell is None:
        cell = _KERNEL_SECONDS.labels(backend=backend, kernel=kernel)
        _KERNEL_CELLS[(backend, kernel)] = cell
    start = time.perf_counter()
    try:
        yield
    finally:
        cell.observe(time.perf_counter() - start)
