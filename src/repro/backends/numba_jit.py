"""Numba-jitted backend — registered only when ``numba`` is importable.

The gathers (walk slices, per-step ``W``/``Q`` tables, the semantic and SO
planes) stay in numpy; the per-row product/cut loop — the part the
reference spends on full-width cumprods, maskings and temporaries — is
compiled.  Each row's loop replays the scalar Algorithm-1 operation
sequence and stops exactly at its own meeting (or θ freeze), so no work
is spent on padding at all.

Equivalence: the jitted loop multiplies the same factors in the same
order as the reference, but we do not promise bitwise equality across a
compiler boundary — the backend declares ``exact = False`` with a
documented absolute tolerance of ``1e-9`` per score, which the
cross-backend property suite enforces whenever numba is present.

Without numba this module registers an *unavailable* stub: the name still
shows up in ``repro backends list`` (with the reason), and selecting it
raises :class:`~repro.backends.base.BackendUnavailableError`.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import (
    WalkScoreRequest,
    WalkScoreResult,
    register_backend,
    register_unavailable,
    resolve_so_plane,
)
from repro.backends.numpy_ref import NumpyBackend

try:  # pragma: no cover — exercised only where numba is installed
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    HAVE_NUMBA = False
    register_unavailable(
        "numba",
        "numba is not importable in this environment",
        "jitted per-row kernels (|score - numpy| <= 1e-9)",
    )


if HAVE_NUMBA:  # pragma: no cover — exercised only where numba is installed

    @njit(cache=True)
    def _walk_totals(numerator, so, q_step, met_at, decay, theta, use_theta):
        n_rows = numerator.shape[0]
        totals_rows = np.empty(n_rows, dtype=np.float64)
        pruned = 0
        for i in range(n_rows):
            score = 1.0
            for s in range(met_at[i]):
                so_v = so[i, s]
                q_v = q_step[i, s]
                if so_v <= 0.0 or q_v <= 0.0:
                    score = 0.0  # bail-out: frozen at 0, not counted pruned
                    break
                score = score * ((numerator[i, s] / so_v) * decay / q_v)
                if use_theta and score <= theta:
                    pruned += 1  # Def. 4.5 freeze
                    break
            totals_rows[i] = score
        return totals_rows, pruned

    @njit(cache=True)
    def _simrank_rows(meetings, met, decay, num_walks):
        m, n_w = meetings.shape
        scores = np.empty(m, dtype=np.float64)
        for i in range(m):
            total = 0.0
            for w in range(n_w):
                if met[i, w]:
                    total += decay ** meetings[i, w]
            scores[i] = total / num_walks
        return scores

    @register_backend
    class NumbaBackend(NumpyBackend):
        """Jitted per-row kernels (within 1e-9 of the reference)."""

        name = "numba"
        exact = False
        tolerance = 1e-9
        description = "numba-jitted per-row kernels (|score - numpy| <= 1e-9)"

        def batch_walk_scores(self, request: WalkScoreRequest) -> WalkScoreResult:
            meetings = request.meetings
            m = request.positions.size
            rows_pair, rows_walk = np.nonzero(meetings >= 1)
            n_rows = rows_pair.size
            if n_rows == 0:
                return WalkScoreResult(
                    totals=np.zeros(m, dtype=np.float64), walks_met=0
                )
            walks = request.walks
            pos_u = request.pos_u
            positions = request.positions
            met_at = meetings[rows_pair, rows_walk]
            max_k = int(met_at.max())
            walk_u = walks[pos_u][rows_walk, : max_k + 1]
            walk_v = walks[positions[rows_pair], rows_walk][:, : max_k + 1]
            cu = walk_u[:, :max_k]
            cv = walk_v[:, :max_k]
            nu = walk_u[:, 1 : max_k + 1]
            nv = walk_v[:, 1 : max_k + 1]
            w_u = request.step_weights[pos_u, rows_walk][:, :max_k]
            w_v = request.step_weights[positions[rows_pair], rows_walk][:, :max_k]
            numerator = np.ascontiguousarray(
                request.sem_matrix[nu, nv] * w_u * w_v
            )
            step_ids = np.arange(max_k)
            active = step_ids[None, :] < met_at[:, None]
            so_evaluations = 0
            if request.so_lookup is None:
                so_evaluations = int(active.sum())
                so = np.ascontiguousarray(request.so_matrix[cu, cv])
            else:
                so = resolve_so_plane(
                    cu, cv, active,
                    request.sem_matrix.shape[0], request.so_lookup,
                )
            q_u = request.step_q[pos_u, rows_walk][:, :max_k]
            q_v = request.step_q[positions[rows_pair], rows_walk][:, :max_k]
            q_step = np.ascontiguousarray(q_u * q_v)

            totals_rows, pruned = _walk_totals(
                numerator, so, q_step,
                np.ascontiguousarray(met_at.astype(np.int64)),
                float(request.decay),
                0.0 if request.theta is None else float(request.theta),
                request.theta is not None,
            )
            totals = np.bincount(
                rows_pair, weights=totals_rows, minlength=m
            ).astype(np.float64)
            return WalkScoreResult(
                totals=totals,
                walks_met=n_rows,
                so_evaluations=so_evaluations,
                walks_pruned=int(pruned),
            )

        def simrank_scores(self, meetings, met, decay, num_walks):
            return _simrank_rows(
                np.ascontiguousarray(meetings.astype(np.int64)),
                np.ascontiguousarray(met),
                float(decay),
                int(num_walks),
            )
