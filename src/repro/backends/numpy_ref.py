"""The ``numpy`` reference backend — the pre-seam kernels, moved verbatim.

This is the arithmetic every other backend is measured against: the
stacked-array replay of the scalar Algorithm-1 loop that
``MonteCarloSemSim._batch_walk_scores`` carried before the backend seam
existed.  Operation order is load-bearing — the batch path reproduces the
scalar path's arithmetic operation-for-operation, so any change here is a
behaviour change for the whole library.
"""

from __future__ import annotations

import numpy as np

from repro.backends.base import (
    ComputeBackend,
    WalkScoreRequest,
    WalkScoreResult,
    register_backend,
    resolve_so_plane,
)


@register_backend
class NumpyBackend(ComputeBackend):
    """Reference vectorised kernels (bit-identical baseline)."""

    name = "numpy"
    exact = True
    tolerance = 0.0
    description = "reference stacked-array kernels (the equivalence baseline)"

    def batch_walk_scores(self, request: WalkScoreRequest) -> WalkScoreResult:
        meetings = request.meetings
        m = request.positions.size
        totals = np.zeros(m, dtype=np.float64)
        rows_pair, rows_walk = np.nonzero(meetings >= 1)
        n_rows = rows_pair.size
        if n_rows == 0:
            return WalkScoreResult(totals=totals, walks_met=0)
        walks = request.walks
        pos_u = request.pos_u
        positions = request.positions
        max_k = int(meetings.max())
        walk_u = walks[pos_u][rows_walk, : max_k + 1]                   # (R, K+1)
        walk_v = walks[positions[rows_pair], rows_walk][:, : max_k + 1]
        met_at = meetings[rows_pair, rows_walk]                         # (R,)
        step_ids = np.arange(max_k)
        active = step_ids[None, :] < met_at[:, None]                    # (R, K)

        # No pre-masking: steps at or past the meeting are garbage (walk
        # padding is -1, which numpy index-wraps), but every downstream
        # read is masked by *active* before it matters — only the final
        # ``factor`` where() is load-bearing.  Active steps sit strictly
        # before the meeting, where both walks still hold real node ids,
        # so the arithmetic replayed there is bit-identical to the masked
        # form this replaces (and to the scalar path).
        cu = walk_u[:, :max_k]
        cv = walk_v[:, :max_k]
        nu = walk_u[:, 1 : max_k + 1]
        nv = walk_v[:, 1 : max_k + 1]

        # P numerator, replaying the scalar operation order exactly:
        # (sem(nu, nv) * W(nu -> cu)) * W(nv -> cv).  W and Q come from the
        # precomputed per-step tables (identical floats, no lookups).
        w_u = request.step_weights[pos_u, rows_walk][:, :max_k]
        w_v = request.step_weights[positions[rows_pair], rows_walk][:, :max_k]
        numerator = request.sem_matrix[nu, nv] * w_u * w_v

        # SO denominators.  Without a pair_index every value comes straight
        # from the precomputed SO matrix (one fancy-indexing gather, and the
        # same table the scalar path reads).  With a pair_index, deduplicate
        # identical (cu, cv) step pairs and route each through the lookup so
        # the index is consulted exactly as in the scalar path.
        so_evaluations = 0
        if request.so_lookup is None:
            so_evaluations = int(active.sum())
            # full-plane gather: garbage on inactive steps, masked below
            so = request.so_matrix[cu, cv]
        else:
            so = resolve_so_plane(
                cu, cv, active, request.sem_matrix.shape[0], request.so_lookup
            )

        q_u = request.step_q[pos_u, rows_walk][:, :max_k]
        q_v = request.step_q[positions[rows_pair], rows_walk][:, :max_k]
        q_step = q_u * q_v

        # Per-step factor (p_step * c) / q_step, 1 on inactive steps and 0
        # where the scalar path would bail out (so <= 0 or q <= 0).
        with np.errstate(divide="ignore", invalid="ignore"):
            factor = (numerator / so) * request.decay / q_step
        bad = (so <= 0) | (q_step <= 0)
        factor = np.where(active & ~bad, factor, np.where(active, 0.0, 1.0))

        running = np.cumprod(factor, axis=1)                            # (R, K)
        last = running[np.arange(n_rows), met_at - 1]
        walks_pruned = 0
        if request.theta is None:
            totals_rows = last
        else:
            cut = (running <= request.theta) & active
            cut_anywhere = cut.any(axis=1)
            first_cut = cut.argmax(axis=1)
            totals_rows = np.where(
                cut_anywhere, running[np.arange(n_rows), first_cut], last
            )
            # Scalar bookkeeping: a bail-out (so/q <= 0) returns without
            # counting as pruned; a genuine θ freeze does.
            bailed = (bad & active)[np.arange(n_rows), first_cut]
            walks_pruned = int((cut_anywhere & ~bailed).sum())
        # Accumulate per candidate in walk order (bincount adds in element
        # order, matching the scalar loop's summation sequence).
        totals = np.bincount(rows_pair, weights=totals_rows, minlength=m).astype(
            np.float64
        )
        return WalkScoreResult(
            totals=totals,
            walks_met=n_rows,
            so_evaluations=so_evaluations,
            walks_pruned=walks_pruned,
        )

    def simrank_scores(
        self,
        meetings: np.ndarray,
        met: np.ndarray,
        decay: float,
        num_walks: int,
    ) -> np.ndarray:
        contrib = np.where(met, decay ** np.maximum(meetings, 0), 0.0)
        return contrib.sum(axis=1) / num_walks

    def step_masses(
        self,
        weights_u: np.ndarray,
        weights_v: np.ndarray,
        sem_block: np.ndarray,
    ) -> np.ndarray:
        return (np.multiply.outer(weights_u, weights_v) * sem_block).ravel()
