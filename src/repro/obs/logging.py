"""Structured logging for the ``repro.*`` logger hierarchy.

The library logs through named children of the ``repro`` logger
(``repro.api``, ``repro.core.params``, ...).  By default nothing is
configured — library code never hijacks the host application's logging.
:func:`configure_logging` opts in: it installs exactly one (tagged, hence
idempotently replaceable) stream handler on the ``repro`` root, either
human-readable or as JSON lines via :class:`JsonLogFormatter`.

:func:`log_event` is the structured emission helper: the *event* name
becomes both the message and an ``event`` field, and every keyword rides
along as a first-class JSON field (``logging``'s ``extra`` mechanism), so
downstream collectors can filter on ``event == "legacy_kwarg"`` instead of
regex-ing message strings.  When a request trace context is active
(:func:`repro.obs.trace.trace_scope`), every event automatically carries
its ``trace_id``, so one slow query's log lines and trace spans join on
the same id across the router and its shard workers.
"""

from __future__ import annotations

import json
import logging
import sys
from typing import IO

from repro.obs.trace import current_trace_id

__all__ = [
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
    "reset_logging",
]

ROOT_LOGGER_NAME = "repro"

#: Attributes every LogRecord carries; anything else came in via ``extra``.
_STANDARD_RECORD_ATTRS = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}

_HANDLER_TAG = "_repro_obs_handler"


class JsonLogFormatter(logging.Formatter):
    """Format each record as one JSON object per line.

    Core fields: ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``.  Every non-standard record attribute — i.e. everything
    passed through ``extra`` — is merged in at the top level; exception
    info renders under ``exception``.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, object] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _STANDARD_RECORD_ATTRS and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def get_logger(name: str = "") -> logging.Logger:
    """Return a logger inside the ``repro.*`` hierarchy.

    ``get_logger("api")`` and ``get_logger("repro.api")`` are the same
    logger; the empty string names the ``repro`` root itself.
    """
    if not name:
        qualified = ROOT_LOGGER_NAME
    elif name == ROOT_LOGGER_NAME or name.startswith(ROOT_LOGGER_NAME + "."):
        qualified = name
    else:
        qualified = f"{ROOT_LOGGER_NAME}.{name}"
    return logging.getLogger(qualified)


def configure_logging(
    *,
    json_format: bool = True,
    level: int | str = logging.INFO,
    stream: IO[str] | None = None,
) -> logging.Logger:
    """Install the library's stream handler on the ``repro`` root logger.

    Idempotent: a handler installed by a previous call is replaced, never
    stacked.  Returns the configured root logger.  With *json_format*
    (default) records render through :class:`JsonLogFormatter`; otherwise a
    conventional one-line text format is used.  *stream* defaults to
    ``sys.stderr`` so structured logs never mix into command output.
    """
    root = get_logger()
    reset_logging()
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    setattr(handler, _HANDLER_TAG, True)
    if json_format:
        handler.setFormatter(JsonLogFormatter())
    else:
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(levelname)s %(name)s: %(message)s")
        )
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root


def reset_logging() -> None:
    """Remove any handler :func:`configure_logging` installed (testing aid)."""
    root = get_logger()
    for handler in list(root.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            root.removeHandler(handler)
    root.propagate = True


def log_event(
    logger: logging.Logger,
    event: str,
    level: int = logging.INFO,
    **fields: object,
) -> None:
    """Emit one structured event record.

    The *event* name doubles as the human-readable message; *fields*
    become top-level JSON attributes via ``extra``.  Records are cheap
    no-ops unless a handler is listening at *level*.  An active trace
    context contributes a ``trace_id`` field (an explicit keyword wins).
    """
    if logger.isEnabledFor(level):
        if "trace_id" not in fields:
            trace_id = current_trace_id()
            if trace_id is not None:
                fields["trace_id"] = trace_id
        logger.log(level, event, extra={"event": event, **fields})
