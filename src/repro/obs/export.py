"""Renderers over the metrics registry: JSON and Prometheus text exposition.

Two stable output formats for the same registry state:

* :func:`render_json` — the registry's :meth:`~repro.obs.registry.
  MetricsRegistry.as_dict` snapshot serialised with sorted keys, the format
  the CLI's ``--metrics-out`` flag and ``repro metrics dump`` emit and the
  CI smoke job parses;
* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers, escaped label values,
  deterministic (sorted) label ordering, and for histograms the cumulative
  ``_bucket{le=...}`` series ending at ``le="+Inf"`` plus the ``_sum`` and
  ``_count`` series, with ``+Inf``'s cumulative count equal to ``_count``.

Both renderers also accept a mergeable *snapshot* (see
:mod:`repro.obs.aggregate`) instead of a live registry — that is how the
sharded runtime's aggregated view (router + shard-labelled worker series)
reaches ``--metrics-out``, ``repro metrics dump`` and the ``/metrics``
scrape endpoint in exactly the same two formats.
"""

from __future__ import annotations

import json
import math
from typing import Mapping

from repro.obs.aggregate import snapshot_as_dict
from repro.obs.registry import Histogram, MetricsRegistry, get_registry

__all__ = ["render_json", "render_prometheus"]


def render_json(
    registry: MetricsRegistry | None = None,
    indent: int | None = 2,
    *,
    snapshot: Mapping | None = None,
) -> str:
    """Serialise *registry* (default: the process registry) as JSON text.

    Passing *snapshot* renders that aggregated snapshot instead — same
    JSON shape, so consumers cannot tell the difference.
    """
    if snapshot is not None:
        payload = snapshot_as_dict(snapshot)
    else:
        registry = registry if registry is not None else get_registry()
        payload = registry.as_dict()
    return json.dumps(payload, indent=indent, sort_keys=True)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)  # le goes last, after the sorted user labels
    if not pairs:
        return ""
    rendered = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + rendered + "}"


def _format_number(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def _render_histogram_sample(
    lines: list[str],
    name: str,
    labels: dict[str, str],
    cumulative: list[tuple[float, int]],
    total: float,
    count: int,
) -> None:
    for bound, running in cumulative:
        le = _render_labels(labels, extra=("le", _format_number(bound)))
        lines.append(f"{name}_bucket{le} {running}")
    suffix = _render_labels(labels)
    lines.append(f"{name}_sum{suffix} {_format_number(total)}")
    lines.append(f"{name}_count{suffix} {count}")


def render_prometheus(
    registry: MetricsRegistry | None = None,
    *,
    snapshot: Mapping | None = None,
) -> str:
    """Render *registry* (default: the process registry) as exposition text.

    Passing *snapshot* renders that aggregated snapshot instead.
    """
    if snapshot is not None:
        return _render_prometheus_snapshot(snapshot)
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for labels, child in family.samples():
                _render_histogram_sample(
                    lines, family.name, labels,
                    child.cumulative_buckets(), child.sum, child.count,
                )
        else:
            for labels, child in family.samples():
                suffix = _render_labels(labels)
                lines.append(
                    f"{family.name}{suffix} {_format_number(child.value)}"
                )
    return "\n".join(lines) + "\n"


def _render_prometheus_snapshot(snapshot: Mapping) -> str:
    families = snapshot.get("families", {})
    lines: list[str] = []
    for name in sorted(families):
        entry = families[name]
        if entry.get("help"):
            lines.append(f"# HELP {name} {_escape_help(entry['help'])}")
        lines.append(f"# TYPE {name} {entry['kind']}")
        if entry["kind"] == "histogram":
            bounds = [float(b) for b in entry.get("buckets", ())]
            for sample in entry["samples"]:
                cumulative: list[tuple[float, int]] = []
                running = 0
                for bound, count in zip(
                    (*bounds, float("inf")), sample["counts"]
                ):
                    running += count
                    cumulative.append((bound, running))
                _render_histogram_sample(
                    lines, name, sample["labels"],
                    cumulative, sample["sum"], sample["count"],
                )
        else:
            for sample in entry["samples"]:
                suffix = _render_labels(sample["labels"])
                lines.append(f"{name}{suffix} {_format_number(sample['value'])}")
    return "\n".join(lines) + "\n"
