"""Renderers over the metrics registry: JSON and Prometheus text exposition.

Two stable output formats for the same registry state:

* :func:`render_json` — the registry's :meth:`~repro.obs.registry.
  MetricsRegistry.as_dict` snapshot serialised with sorted keys, the format
  the CLI's ``--metrics-out`` flag and ``repro metrics dump`` emit and the
  CI smoke job parses;
* :func:`render_prometheus` — the Prometheus text exposition format
  (version 0.0.4): ``# HELP``/``# TYPE`` headers, escaped label values,
  deterministic (sorted) label ordering, and for histograms the cumulative
  ``_bucket{le=...}`` series ending at ``le="+Inf"`` plus the ``_sum`` and
  ``_count`` series, with ``+Inf``'s cumulative count equal to ``_count``.
"""

from __future__ import annotations

import json
import math

from repro.obs.registry import Histogram, MetricsRegistry, get_registry

__all__ = ["render_json", "render_prometheus"]


def render_json(registry: MetricsRegistry | None = None, indent: int | None = 2) -> str:
    """Serialise *registry* (default: the process registry) as JSON text."""
    registry = registry if registry is not None else get_registry()
    return json.dumps(registry.as_dict(), indent=indent, sort_keys=True)


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label_value(text: str) -> str:
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: dict[str, str], extra: tuple[str, str] | None = None) -> str:
    pairs = [(k, str(v)) for k, v in sorted(labels.items())]
    if extra is not None:
        pairs.append(extra)  # le goes last, after the sorted user labels
    if not pairs:
        return ""
    rendered = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in pairs)
    return "{" + rendered + "}"


def _format_number(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render *registry* (default: the process registry) as exposition text."""
    registry = registry if registry is not None else get_registry()
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, Histogram):
            for labels, child in family.samples():
                for bound, cumulative in child.cumulative_buckets():
                    le = _render_labels(labels, extra=("le", _format_number(bound)))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                suffix = _render_labels(labels)
                lines.append(
                    f"{family.name}_sum{suffix} {_format_number(child.sum)}"
                )
                lines.append(f"{family.name}_count{suffix} {child.count}")
        else:
            for labels, child in family.samples():
                suffix = _render_labels(labels)
                lines.append(
                    f"{family.name}{suffix} {_format_number(child.value)}"
                )
    return "\n".join(lines) + "\n"
