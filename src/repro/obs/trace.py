"""Structured timing spans over the hot preprocessing and query paths.

A *span* is a context manager that measures one named unit of work:

>>> from repro.obs.trace import span
>>> with span("walk_index.build", nodes=100, workers=4) as sp:
...     pass  # the work
>>> sp.wall_seconds >= 0 and sp.cpu_seconds >= 0
True

On exit — **including exit by exception** — a span

* records wall-clock (``perf_counter``) and CPU (``process_time``) time;
* feeds the histogram named after it (``walk_index.build`` observes into
  ``walk_index_build_seconds`` in the process registry), so every spanned
  phase automatically has a latency distribution;
* appends one JSON line to the installed trace writer (opt-in, see
  :func:`set_trace_writer` / :func:`trace_to`) carrying the timings, the
  free-form attributes, the nesting depth and the parent span name.

Nesting is tracked per thread: spans opened inside another span on the
same thread record their depth and parent; worker-pool threads (e.g. the
sharded walk-index build) start their own stacks at depth 0.

Request-scoped trace context
----------------------------
:func:`trace_scope` activates a ``contextvars``-based trace context —
a ``trace_id`` naming one logical request end-to-end and the
``span_id`` of the innermost open span.  While a context is active,
every span drawn inside it (on the same thread, or on any thread/process
that re-activates the same ids) carries ``trace_id``/``span_id``/
``parent_span_id`` in its JSON trace line, and :func:`current_trace_id`
lets structured log records stamp the same id.  The sharded serving
stack uses exactly this: the router stamps a trace id at admission,
re-activates it on the dispatching worker thread, ships
``(trace_id, span_id)`` in every pipe message, and the shard worker
re-roots its spans under the router's span — one slow query becomes one
reconstructable tree across processes.  Outside a scope, span ids are
not even generated, so the preprocessing paths pay nothing.

When recording is paused (:func:`repro.obs.registry.set_enabled`), spans
still run their body and still time themselves, but skip the histogram
observation and the trace line — the measurement window of
``bench_obs_overhead.py``.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import re
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    get_registry,
    is_enabled,
)

__all__ = [
    "Span",
    "span",
    "current_span",
    "set_trace_writer",
    "trace_to",
    "histogram_name_for",
    "trace_scope",
    "current_trace_id",
    "current_span_id",
    "new_trace_id",
]

_stack_local = threading.local()

# (trace_id, span_id) of the active request context, or None.  A
# ContextVar survives contextvars-aware executors; plain threads (the
# worker pool, shard processes) re-activate it explicitly via
# trace_scope(), which is how the ids cross the pipe.
_trace_var: contextvars.ContextVar[tuple[str, str | None] | None] = (
    contextvars.ContextVar("repro_trace_context", default=None)
)

# Process-unique prefix + atomic counter: cheap (no per-request urandom
# syscall) and unique across the router and its forked shard workers.
_ID_PREFIX = os.urandom(4).hex()
_id_counter = itertools.count(1)


def new_trace_id() -> str:
    """A process-unique 16-hex-char trace id (prefix + sequence)."""
    return f"{_ID_PREFIX}{next(_id_counter) & 0xFFFFFFFF:08x}"


def new_span_id() -> str:
    """A process-unique 12-hex-char span id."""
    return f"{_ID_PREFIX[:4]}{next(_id_counter) & 0xFFFFFFFF:08x}"


def current_trace_id() -> str | None:
    """The active request's trace id, or ``None`` outside a scope."""
    context = _trace_var.get()
    return context[0] if context is not None else None


def current_span_id() -> str | None:
    """The innermost active span id in this context, or ``None``."""
    context = _trace_var.get()
    return context[1] if context is not None else None


@contextmanager
def trace_scope(
    trace_id: str | None = None, parent_span_id: str | None = None
) -> Iterator[str]:
    """Activate a trace context; yields the (possibly generated) trace id.

    With no arguments a fresh ``trace_id`` is minted — the admission
    side.  Re-activating with an existing ``(trace_id, parent_span_id)``
    pair — a worker thread picking up a queued request, a shard process
    handling a pipe message — re-roots spans opened inside the scope
    under that parent.
    """
    resolved = trace_id if trace_id is not None else new_trace_id()
    token = _trace_var.set((resolved, parent_span_id))
    try:
        yield resolved
    finally:
        _trace_var.reset(token)

_writer: IO[str] | None = None
_writer_owned = False
_writer_lock = threading.Lock()

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _stack() -> list["Span"]:
    stack = getattr(_stack_local, "spans", None)
    if stack is None:
        stack = []
        _stack_local.spans = stack
    return stack


def histogram_name_for(span_name: str) -> str:
    """The registry histogram a span feeds: ``a.b-c`` -> ``a_b_c_seconds``."""
    return _INVALID_METRIC_CHARS.sub("_", span_name) + "_seconds"


def current_span() -> "Span | None":
    """Return the innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed, optionally traced, unit of work (use via :func:`span`)."""

    __slots__ = (
        "name", "attrs", "labels", "record",
        "wall_seconds", "cpu_seconds", "status", "error",
        "depth", "parent_name",
        "trace_id", "span_id", "parent_span_id",
        "_start_ts", "_wall0", "_cpu0", "_context_token",
    )

    def __init__(
        self,
        name: str,
        attrs: dict[str, object],
        labels: dict[str, str] | None,
        record: bool,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.labels = labels
        self.record = record
        self.wall_seconds: float | None = None
        self.cpu_seconds: float | None = None
        self.status: str | None = None
        self.error: str | None = None
        self.depth = 0
        self.parent_name: str | None = None
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_span_id: str | None = None
        self._context_token = None

    def __enter__(self) -> "Span":
        stack = _stack()
        self.depth = len(stack)
        self.parent_name = stack[-1].name if stack else None
        stack.append(self)
        context = _trace_var.get()
        if context is not None:
            # inside a request scope: join the trace and become the
            # innermost span for anything opened in our dynamic extent
            self.trace_id, self.parent_span_id = context
            self.span_id = new_span_id()
            self._context_token = _trace_var.set((self.trace_id, self.span_id))
        self._start_ts = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.process_time() - self._cpu0
        if self._context_token is not None:
            _trace_var.reset(self._context_token)
            self._context_token = None
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        if is_enabled():
            if self.record:
                self._observe()
            self._write_trace_line()
        return False  # never swallow the exception

    def _observe(self) -> None:
        histogram = get_registry().histogram(
            histogram_name_for(self.name),
            help=f"Wall-clock seconds of {self.name!r} spans.",
            labelnames=sorted(self.labels) if self.labels else (),
            buckets=DEFAULT_TIME_BUCKETS,
        )
        if self.labels:
            histogram.labels(**self.labels).observe(self.wall_seconds)
        else:
            histogram.observe(self.wall_seconds)

    def _write_trace_line(self) -> None:
        writer = _writer
        if writer is None:
            return
        payload: dict[str, object] = {
            "ts": round(self._start_ts, 6),
            "span": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "depth": self.depth,
            "status": self.status,
        }
        if self.parent_name is not None:
            payload["parent"] = self.parent_name
        if self.trace_id is not None:
            payload["trace_id"] = self.trace_id
            payload["span_id"] = self.span_id
            if self.parent_span_id is not None:
                payload["parent_span_id"] = self.parent_span_id
        if self.error is not None:
            payload["error"] = self.error
        if self.labels:
            payload["labels"] = self.labels
        if self.attrs:
            payload["attrs"] = {
                key: value for key, value in self.attrs.items()
            }
        line = json.dumps(payload, sort_keys=True, default=str)
        with _writer_lock:
            if _writer is writer:  # not swapped out underneath us
                writer.write(line + "\n")

    def __repr__(self) -> str:
        timing = (
            f"wall={self.wall_seconds:.6f}s" if self.wall_seconds is not None
            else "open"
        )
        return f"Span({self.name!r}, {timing}, status={self.status})"


def span(
    name: str,
    *,
    labels: dict[str, str] | None = None,
    record: bool = True,
    **attrs: object,
) -> Span:
    """Open a timing span named *name*.

    Parameters
    ----------
    name:
        Dotted phase name (``"walk_index.build"``); the fed histogram is
        :func:`histogram_name_for` of it.
    labels:
        Optional registry labels for the histogram series.  Keep the value
        set small and bounded — labels are time-series cardinality, use
        ``**attrs`` for free-form context instead.
    record:
        ``False`` skips the histogram (the span still times itself and
        still writes a trace line).
    attrs:
        Free-form attributes copied into the JSON trace line only.
    """
    return Span(name, attrs, labels, record)


def set_trace_writer(target: str | Path | IO[str] | None) -> None:
    """Install (or clear, with ``None``) the process JSON-lines trace sink.

    *target* may be a path — opened for append, closed when replaced — or
    any open text file object (kept open; the caller owns it).
    """
    global _writer, _writer_owned
    with _writer_lock:
        if _writer is not None and _writer_owned:
            try:
                _writer.close()
            except OSError:
                pass
        if target is None:
            _writer, _writer_owned = None, False
        elif isinstance(target, (str, Path)):
            _writer = open(target, "a", encoding="utf-8")
            _writer_owned = True
        else:
            _writer, _writer_owned = target, False


@contextmanager
def trace_to(target: str | Path | IO[str]) -> Iterator[None]:
    """Scope a trace writer: installed on entry, restored on exit.

    The previously installed writer (if any) is left untouched and comes
    back when the context closes.
    """
    global _writer, _writer_owned
    own = isinstance(target, (str, Path))
    handle = open(target, "a", encoding="utf-8") if own else target
    with _writer_lock:
        previous, previous_owned = _writer, _writer_owned
        _writer, _writer_owned = handle, own
    try:
        yield
    finally:
        with _writer_lock:
            _writer, _writer_owned = previous, previous_owned
        if own:
            try:
                handle.close()
            except OSError:
                pass
