"""Structured timing spans over the hot preprocessing and query paths.

A *span* is a context manager that measures one named unit of work:

>>> from repro.obs.trace import span
>>> with span("walk_index.build", nodes=100, workers=4) as sp:
...     pass  # the work
>>> sp.wall_seconds >= 0 and sp.cpu_seconds >= 0
True

On exit — **including exit by exception** — a span

* records wall-clock (``perf_counter``) and CPU (``process_time``) time;
* feeds the histogram named after it (``walk_index.build`` observes into
  ``walk_index_build_seconds`` in the process registry), so every spanned
  phase automatically has a latency distribution;
* appends one JSON line to the installed trace writer (opt-in, see
  :func:`set_trace_writer` / :func:`trace_to`) carrying the timings, the
  free-form attributes, the nesting depth and the parent span name.

Nesting is tracked per thread: spans opened inside another span on the
same thread record their depth and parent; worker-pool threads (e.g. the
sharded walk-index build) start their own stacks at depth 0.

When recording is paused (:func:`repro.obs.registry.set_enabled`), spans
still run their body and still time themselves, but skip the histogram
observation and the trace line — the measurement window of
``bench_obs_overhead.py``.
"""

from __future__ import annotations

import json
import re
import threading
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Iterator

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    get_registry,
    is_enabled,
)

__all__ = [
    "Span",
    "span",
    "current_span",
    "set_trace_writer",
    "trace_to",
    "histogram_name_for",
]

_stack_local = threading.local()

_writer: IO[str] | None = None
_writer_owned = False
_writer_lock = threading.Lock()

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def _stack() -> list["Span"]:
    stack = getattr(_stack_local, "spans", None)
    if stack is None:
        stack = []
        _stack_local.spans = stack
    return stack


def histogram_name_for(span_name: str) -> str:
    """The registry histogram a span feeds: ``a.b-c`` -> ``a_b_c_seconds``."""
    return _INVALID_METRIC_CHARS.sub("_", span_name) + "_seconds"


def current_span() -> "Span | None":
    """Return the innermost open span on this thread, if any."""
    stack = _stack()
    return stack[-1] if stack else None


class Span:
    """One timed, optionally traced, unit of work (use via :func:`span`)."""

    __slots__ = (
        "name", "attrs", "labels", "record",
        "wall_seconds", "cpu_seconds", "status", "error",
        "depth", "parent_name",
        "_start_ts", "_wall0", "_cpu0",
    )

    def __init__(
        self,
        name: str,
        attrs: dict[str, object],
        labels: dict[str, str] | None,
        record: bool,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.labels = labels
        self.record = record
        self.wall_seconds: float | None = None
        self.cpu_seconds: float | None = None
        self.status: str | None = None
        self.error: str | None = None
        self.depth = 0
        self.parent_name: str | None = None

    def __enter__(self) -> "Span":
        stack = _stack()
        self.depth = len(stack)
        self.parent_name = stack[-1].name if stack else None
        stack.append(self)
        self._start_ts = time.time()
        self._wall0 = time.perf_counter()
        self._cpu0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_seconds = time.perf_counter() - self._wall0
        self.cpu_seconds = time.process_time() - self._cpu0
        stack = _stack()
        if stack and stack[-1] is self:
            stack.pop()
        if exc_type is None:
            self.status = "ok"
        else:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        if is_enabled():
            if self.record:
                self._observe()
            self._write_trace_line()
        return False  # never swallow the exception

    def _observe(self) -> None:
        histogram = get_registry().histogram(
            histogram_name_for(self.name),
            help=f"Wall-clock seconds of {self.name!r} spans.",
            labelnames=sorted(self.labels) if self.labels else (),
            buckets=DEFAULT_TIME_BUCKETS,
        )
        if self.labels:
            histogram.labels(**self.labels).observe(self.wall_seconds)
        else:
            histogram.observe(self.wall_seconds)

    def _write_trace_line(self) -> None:
        writer = _writer
        if writer is None:
            return
        payload: dict[str, object] = {
            "ts": round(self._start_ts, 6),
            "span": self.name,
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "depth": self.depth,
            "status": self.status,
        }
        if self.parent_name is not None:
            payload["parent"] = self.parent_name
        if self.error is not None:
            payload["error"] = self.error
        if self.labels:
            payload["labels"] = self.labels
        if self.attrs:
            payload["attrs"] = {
                key: value for key, value in self.attrs.items()
            }
        line = json.dumps(payload, sort_keys=True, default=str)
        with _writer_lock:
            if _writer is writer:  # not swapped out underneath us
                writer.write(line + "\n")

    def __repr__(self) -> str:
        timing = (
            f"wall={self.wall_seconds:.6f}s" if self.wall_seconds is not None
            else "open"
        )
        return f"Span({self.name!r}, {timing}, status={self.status})"


def span(
    name: str,
    *,
    labels: dict[str, str] | None = None,
    record: bool = True,
    **attrs: object,
) -> Span:
    """Open a timing span named *name*.

    Parameters
    ----------
    name:
        Dotted phase name (``"walk_index.build"``); the fed histogram is
        :func:`histogram_name_for` of it.
    labels:
        Optional registry labels for the histogram series.  Keep the value
        set small and bounded — labels are time-series cardinality, use
        ``**attrs`` for free-form context instead.
    record:
        ``False`` skips the histogram (the span still times itself and
        still writes a trace line).
    attrs:
        Free-form attributes copied into the JSON trace line only.
    """
    return Span(name, attrs, labels, record)


def set_trace_writer(target: str | Path | IO[str] | None) -> None:
    """Install (or clear, with ``None``) the process JSON-lines trace sink.

    *target* may be a path — opened for append, closed when replaced — or
    any open text file object (kept open; the caller owns it).
    """
    global _writer, _writer_owned
    with _writer_lock:
        if _writer is not None and _writer_owned:
            try:
                _writer.close()
            except OSError:
                pass
        if target is None:
            _writer, _writer_owned = None, False
        elif isinstance(target, (str, Path)):
            _writer = open(target, "a", encoding="utf-8")
            _writer_owned = True
        else:
            _writer, _writer_owned = target, False


@contextmanager
def trace_to(target: str | Path | IO[str]) -> Iterator[None]:
    """Scope a trace writer: installed on entry, restored on exit.

    The previously installed writer (if any) is left untouched and comes
    back when the context closes.
    """
    global _writer, _writer_owned
    own = isinstance(target, (str, Path))
    handle = open(target, "a", encoding="utf-8") if own else target
    with _writer_lock:
        previous, previous_owned = _writer, _writer_owned
        _writer, _writer_owned = handle, own
    try:
        yield
    finally:
        with _writer_lock:
            _writer, _writer_owned = previous, previous_owned
        if own:
            try:
                handle.close()
            except OSError:
                pass
