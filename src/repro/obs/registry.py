"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

The model follows the Prometheus client conventions, reduced to what the
serving stack needs and implemented on the standard library alone:

* a **family** is a named metric (``store_cache_hit_total``) of one type,
  registered once per process with a fixed set of *label names*
  (``("method", "mode")``);
* a **child** is one labelled time series inside a family, resolved with
  :meth:`_Family.labels` and cached, so hot paths pay one dict lookup at
  setup time and a plain guarded add per event;
* the **registry** owns the families; :func:`get_registry` returns the
  process-wide instance every instrumented module registers into.

Counters are monotonic (``inc`` rejects negative amounts), gauges move
freely, histograms use fixed upper bounds chosen at registration (bucket
``i`` counts observations ``<= bounds[i]``; everything above the last bound
lands in the implicit ``+Inf`` bucket).

Thread-safety guarantee
-----------------------
Each registry owns **one** :class:`threading.RLock`, shared by every
family and every child registered into it.  All mutation — counter
increments, gauge moves, histogram observations, ``clear_values`` — and
every read that must be internally consistent (a histogram's
bucket/sum/count triple) serialises on that single lock, so concurrent
walk-index shards and serving workers can record into the same families
with no lost updates and snapshots never observe a half-applied
histogram observation.  The lock is reentrant, which lets higher layers
(e.g. :class:`~repro.core.montecarlo.EstimatorStats`) mirror several
series while holding their own guard.  One lock per registry is a
deliberate trade: uncontended acquisition costs the same as a per-child
lock (held to the ≤ 3% ceiling by ``benchmarks/bench_obs_overhead.py``),
and cross-series updates become atomic with respect to exports.

:func:`set_enabled` / :func:`disabled` pause *recording* globally —
instrumented call sites check :func:`is_enabled` before observing, which is
what lets ``benchmarks/bench_obs_overhead.py`` measure the instrumentation
itself.
"""

from __future__ import annotations

import bisect
import re
import threading
from contextlib import contextmanager
from typing import Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "snapshot_delta",
    "set_enabled",
    "is_enabled",
    "disabled",
]

#: Default histogram bounds for durations in seconds — spans five decades,
#: from batched-query microseconds to cold preprocessing builds.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

_NAME_PATTERN = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
_LABEL_PATTERN = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")

_enabled = True
_enabled_lock = threading.Lock()


def set_enabled(flag: bool) -> bool:
    """Globally enable/disable metric recording; returns the previous state."""
    global _enabled
    with _enabled_lock:
        previous = _enabled
        _enabled = bool(flag)
    return previous


def is_enabled() -> bool:
    """Return whether instrumented call sites should record right now."""
    return _enabled


@contextmanager
def disabled() -> Iterator[None]:
    """Context manager that pauses metric/span recording inside its body."""
    previous = set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def _validate_labels(
    labelnames: Sequence[str], labels: Mapping[str, object]
) -> tuple[str, ...]:
    if set(labels) != set(labelnames):
        raise ValueError(
            f"labels {sorted(labels)} do not match the declared label names "
            f"{sorted(labelnames)}"
        )
    return tuple(str(labels[name]) for name in labelnames)


class _CounterChild:
    """One labelled counter series; monotonic."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock | None = None) -> None:
        self._lock = lock if lock is not None else threading.RLock()
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add *amount* (must be >= 0) to the series."""
        if amount < 0:
            raise ValueError(f"counters can only grow, got increment {amount!r}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value


class _GaugeChild:
    """One labelled gauge series; moves freely."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock | None = None) -> None:
        self._lock = lock if lock is not None else threading.RLock()
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        return self._value


class _HistogramChild:
    """One labelled histogram series over the family's fixed bounds."""

    __slots__ = ("_lock", "_bounds", "_bucket_counts", "_sum", "_count")

    def __init__(
        self, bounds: tuple[float, ...], lock: threading.RLock | None = None
    ) -> None:
        self._lock = lock if lock is not None else threading.RLock()
        self._bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        """Record one observation (``value <= bounds[i]`` lands in bucket i)."""
        index = bisect.bisect_left(self._bounds, value)
        with self._lock:
            self._bucket_counts[index] += 1
            self._sum += value
            self._count += 1

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch of observations under one lock acquisition.

        Equivalent to calling :meth:`observe` per value; the hot serving
        path records a whole micro-batch of queue waits at once, so the
        lock round-trip amortises across the batch.
        """
        if not values:
            return
        bounds = self._bounds
        bisect_left = bisect.bisect_left
        with self._lock:
            counts = self._bucket_counts
            total = 0.0
            for value in values:
                counts[bisect_left(bounds, value)] += 1
                total += value
            self._sum += total
            self._count += len(values)

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Return ``(upper_bound, cumulative_count)`` pairs, ``+Inf`` last."""
        with self._lock:
            counts = list(self._bucket_counts)
        total = 0
        out: list[tuple[float, int]] = []
        for bound, count in zip((*self._bounds, float("inf")), counts):
            total += count
            out.append((bound, total))
        return out


class _Family:
    """Base of one named metric with a fixed label-name set.

    *lock* is the owning registry's single mutation lock; a family
    constructed standalone (outside a registry, e.g. in tests) gets a
    private reentrant lock with identical semantics.
    """

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        lock: threading.RLock | None = None,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = tuple(labelnames)
        for label in self.labelnames:
            if not _LABEL_PATTERN.match(label):
                raise ValueError(f"invalid label name {label!r} on metric {name!r}")
        self._lock = lock if lock is not None else threading.RLock()
        self._children: dict[tuple[str, ...], object] = {}
        if not self.labelnames:
            # Label-free families materialise their single series up front,
            # so exports always show the family at zero (metric-name drift
            # is caught even before the first event).
            self._children[()] = self._new_child()

    def _new_child(self):
        raise NotImplementedError

    def labels(self, **labels: object):
        """Return (creating if needed) the child for one label combination."""
        key = _validate_labels(self.labelnames, labels)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._new_child())
        return child

    @property
    def _default(self):
        if self.labelnames:
            raise ValueError(
                f"metric {self.name!r} declares labels {self.labelnames}; "
                f"resolve a series with .labels(...) first"
            )
        return self._children[()]

    def samples(self) -> list[tuple[dict[str, str], object]]:
        """Snapshot ``(labels, child)`` pairs in insertion order."""
        with self._lock:
            items = list(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), child) for key, child in items
        ]


class Counter(_Family):
    """A monotonically increasing metric family."""

    kind = "counter"

    def _new_child(self) -> _CounterChild:
        return _CounterChild(self._lock)

    def inc(self, amount: float = 1.0) -> None:
        """Increment the label-free series."""
        self._default.inc(amount)

    def value(self, **labels: object) -> float:
        """Current value of one series (the label-free one by default)."""
        child = self.labels(**labels) if labels or self.labelnames else self._default
        return child.value


class Gauge(_Family):
    """A metric family that can go up and down."""

    kind = "gauge"

    def _new_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock)

    def set(self, value: float) -> None:
        self._default.set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default.inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default.dec(amount)

    def value(self, **labels: object) -> float:
        child = self.labels(**labels) if labels or self.labelnames else self._default
        return child.value


class Histogram(_Family):
    """A fixed-bucket histogram family."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
        lock: threading.RLock | None = None,
    ) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds:
            raise ValueError(f"histogram {name!r} needs at least one bucket bound")
        if any(b >= c for b, c in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r} bucket bounds must be strictly increasing"
            )
        self.buckets = bounds
        super().__init__(name, help, labelnames, lock=lock)

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.buckets, self._lock)

    def observe(self, value: float) -> None:
        """Record into the label-free series."""
        self._default.observe(value)

    def observe_many(self, values: Sequence[float]) -> None:
        """Record a batch into the label-free series (one lock round-trip)."""
        self._default.observe_many(values)

    def count(self, **labels: object) -> int:
        child = self.labels(**labels) if labels or self.labelnames else self._default
        return child.count

    def sum(self, **labels: object) -> float:
        child = self.labels(**labels) if labels or self.labelnames else self._default
        return child.sum


class MetricsRegistry:
    """A named collection of metric families.

    ``counter``/``gauge``/``histogram`` are get-or-create: re-registering an
    existing name returns the existing family after checking that the type
    and label names agree (a mismatch raises ``ValueError`` — silent
    redefinition is exactly the drift this layer exists to catch).

    One reentrant lock per registry guards everything: family
    registration, child creation, and every value mutation in every
    child (see the module docstring for the full guarantee).
    """

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._families: dict[str, _Family] = {}

    def _get_or_create(self, cls, name: str, help: str, labelnames, **kwargs):
        if not _NAME_PATTERN.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if not isinstance(existing, cls) or type(existing) is not cls:
                    raise ValueError(
                        f"metric {name!r} is already registered as a "
                        f"{existing.kind}, not a {cls.kind}"
                    )
                if tuple(labelnames) != existing.labelnames:
                    raise ValueError(
                        f"metric {name!r} is already registered with labels "
                        f"{existing.labelnames}, not {tuple(labelnames)}"
                    )
                return existing
            family = cls(name, help, labelnames, lock=self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Counter:
        """Register (or fetch) a counter family."""
        return self._get_or_create(Counter, name, help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> Gauge:
        """Register (or fetch) a gauge family."""
        return self._get_or_create(Gauge, name, help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_TIME_BUCKETS,
    ) -> Histogram:
        """Register (or fetch) a fixed-bucket histogram family."""
        return self._get_or_create(
            Histogram, name, help, labelnames, buckets=buckets
        )

    def families(self) -> list[_Family]:
        """All registered families, sorted by name."""
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    def get(self, name: str) -> _Family | None:
        """Return the family registered under *name*, or ``None``."""
        with self._lock:
            return self._families.get(name)

    def as_dict(self) -> dict:
        """JSON-ready snapshot of every family and series."""
        out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
        for family in self.families():
            samples = []
            if isinstance(family, Histogram):
                for labels, child in family.samples():
                    samples.append({
                        "labels": labels,
                        "buckets": {
                            ("+Inf" if bound == float("inf") else repr(bound)): count
                            for bound, count in child.cumulative_buckets()
                        },
                        "sum": child.sum,
                        "count": child.count,
                    })
                section = out["histograms"]
            else:
                for labels, child in family.samples():
                    samples.append({"labels": labels, "value": child.value})
                section = out["gauges" if isinstance(family, Gauge) else "counters"]
            section[family.name] = {
                "help": family.help,
                "labelnames": list(family.labelnames),
                "samples": samples,
            }
        return out

    def snapshot(self) -> dict:
        """Flat numeric snapshot, suitable for :func:`snapshot_delta` diffs.

        Keys are ``name{label="value",...}`` strings; counters map to their
        value, histograms contribute ``_count``/``_sum`` entries, gauges
        record their instantaneous value.
        """
        flat: dict[str, dict[str, float]] = {
            "counters": {}, "gauges": {}, "histograms": {}
        }
        for family in self.families():
            for labels, child in family.samples():
                rendered = ",".join(
                    f'{k}="{v}"' for k, v in sorted(labels.items())
                )
                key = f"{family.name}{{{rendered}}}" if rendered else family.name
                if isinstance(family, Histogram):
                    flat["histograms"][f"{key}_count"] = child.count
                    flat["histograms"][f"{key}_sum"] = child.sum
                elif isinstance(family, Gauge):
                    flat["gauges"][key] = child.value
                else:
                    flat["counters"][key] = child.value
        return flat

    def clear_values(self) -> None:
        """Zero every series in place (testing aid).

        Families stay registered — module-level handles keep pointing at
        live children — but all counts, sums and gauge values return to 0.
        """
        for family in self.families():
            for _, child in family.samples():
                with child._lock:
                    if isinstance(child, _HistogramChild):
                        child._bucket_counts = [0] * len(child._bucket_counts)
                        child._sum = 0.0
                        child._count = 0
                    else:
                        child._value = 0.0

    def __repr__(self) -> str:
        return f"MetricsRegistry(families={len(self._families)})"


def snapshot_delta(before: Mapping, after: Mapping) -> dict:
    """Diff two :meth:`MetricsRegistry.snapshot` results.

    Counters and histogram ``_count``/``_sum`` entries report their growth
    (zero-growth entries are dropped); gauges report their latest value
    (a gauge delta is meaningless — the last write wins).
    """
    delta: dict[str, dict[str, float]] = {}
    for section in ("counters", "histograms"):
        grown = {}
        for key, value in after.get(section, {}).items():
            growth = value - before.get(section, {}).get(key, 0)
            if growth:
                grown[key] = growth
        if grown:
            delta[section] = grown
    gauges = {
        key: value
        for key, value in after.get("gauges", {}).items()
        if value != before.get("gauges", {}).get(key, 0)
    }
    if gauges:
        delta["gauges"] = gauges
    return delta


#: The process-wide registry every instrumented module registers into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """Return the process-wide default registry."""
    return REGISTRY
