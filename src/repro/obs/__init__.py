"""``repro.obs`` — the serving-grade instrumentation layer.

Production SimRank serving lives and dies by the preprocessing/query-time
trade-off the paper's Fig. 4 measures; this package makes those axes
observable in-process, with zero dependencies beyond the standard library:

:mod:`repro.obs.registry`
    a process-wide metrics registry — thread-safe, label-aware counters,
    gauges and fixed-bucket histograms (``method``/``measure``/``phase``
    style labels, bounded cardinality);
:mod:`repro.obs.aggregate`
    mergeable registry snapshots — the exact (bucket-wise) fold that
    aggregates shard-worker registries into the router's view;
:mod:`repro.obs.export`
    JSON and Prometheus text-exposition renderers over the registry or
    an aggregated snapshot;
:mod:`repro.obs.http`
    a stdlib HTTP scrape endpoint (``/metrics``, ``/health``) for live
    serving processes;
:mod:`repro.obs.trace`
    ``span("walk_index.build", **attrs)`` timing contexts that record
    wall/CPU time, nest per thread, feed ``<name>_seconds`` histograms and
    optionally stream JSON-lines trace records;
:mod:`repro.obs.logging`
    structured (JSON) logging under the ``repro.*`` logger hierarchy.

Everything is opt-out: the registry always accumulates (a counter add is
nanoseconds), while :func:`set_enabled` / :func:`disabled` pause metric and
span recording entirely for overhead-sensitive measurement windows (see
``benchmarks/bench_obs_overhead.py``).
"""

from repro.obs.aggregate import (
    SnapshotError,
    collect_snapshot,
    empty_snapshot,
    fold_snapshot,
    merge_snapshots,
    snapshot_as_dict,
    snapshot_diff,
)
from repro.obs.export import render_json, render_prometheus
from repro.obs.http import MetricsServer
from repro.obs.logging import (
    JsonLogFormatter,
    configure_logging,
    get_logger,
    log_event,
    reset_logging,
)
from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disabled,
    get_registry,
    is_enabled,
    set_enabled,
    snapshot_delta,
)
from repro.obs.trace import (
    Span,
    current_span,
    current_span_id,
    current_trace_id,
    new_trace_id,
    set_trace_writer,
    span,
    trace_scope,
    trace_to,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "get_registry",
    "snapshot_delta",
    "set_enabled",
    "is_enabled",
    "disabled",
    "render_json",
    "render_prometheus",
    "collect_snapshot",
    "SnapshotError",
    "empty_snapshot",
    "snapshot_diff",
    "fold_snapshot",
    "merge_snapshots",
    "snapshot_as_dict",
    "MetricsServer",
    "Span",
    "span",
    "current_span",
    "current_span_id",
    "current_trace_id",
    "new_trace_id",
    "trace_scope",
    "set_trace_writer",
    "trace_to",
    "JsonLogFormatter",
    "configure_logging",
    "get_logger",
    "log_event",
    "reset_logging",
]
