"""Mergeable registry snapshots — the cross-process aggregation algebra.

A *snapshot* is a plain-dict, pickle/JSON-safe capture of one
:class:`~repro.obs.registry.MetricsRegistry` at a point in time:

.. code-block:: python

    {
        "version": 1,
        "ts": 1723111111.0,          # capture wall time
        "pid": 4242,                 # capturing process
        "families": {
            "kernel_seconds": {
                "kind": "histogram",
                "help": "...",
                "labelnames": ["backend", "kernel"],
                "buckets": [0.0001, ...],          # upper bounds, no +Inf
                "samples": [
                    {"labels": {"backend": "numpy", "kernel": "batch_walk_scores"},
                     "counts": [3, 1, ..., 0],     # RAW per-bucket, last = +Inf
                     "sum": 0.0123, "count": 4},
                ],
            },
            ...
        },
    }

Counter/gauge samples carry ``{"labels": ..., "value": ...}`` instead
(gauge samples additionally carry the capture ``ts`` once folded, so
"latest write wins" survives multi-source merges).

The algebra this module provides, used by
:class:`~repro.sched.sharded.ShardedRuntime` to fold shard-worker
registries into the router's view:

* :func:`collect_snapshot` — capture a registry (histograms keep their
  **raw** bucket counts, which is what makes merging exact);
* :func:`snapshot_diff` — ``after - before`` for counters and histogram
  buckets (a shrinking value means the source process restarted, and the
  ``after`` state is taken whole); gauges report their latest value;
* :func:`fold_snapshot` — merge one snapshot into an accumulator in
  place, optionally stamping extra labels (``{"shard": "0"}``) on every
  folded sample.  Counters and histogram buckets **add** (bucket layouts
  are fixed per family, so the merge is exact, not approximate); gauges
  keep the value with the newest capture timestamp;
* :func:`merge_snapshots` — the pure n-ary form;
* :func:`snapshot_as_dict` — re-shape a snapshot into the exact
  ``MetricsRegistry.as_dict()`` JSON layout (cumulative buckets, ``+Inf``
  keys), so aggregated dumps stay parseable by every existing consumer
  (``scripts/check_metrics.py``, the CI smoke jobs).

Unlike a live registry — whose families carry *fixed* label-name sets —
a snapshot family may hold samples with heterogeneous labels: the
router's own ``kernel_seconds{backend,kernel}`` series coexist with
folded worker series carrying an extra ``shard`` label.  That is why
aggregation happens at the snapshot level instead of re-registering
shard-labelled families into the live registry (which would ``ValueError``
on the labelname mismatch — by design).
"""

from __future__ import annotations

import copy
import os
import time
from typing import Iterable, Mapping

from repro.obs.registry import (
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)

__all__ = [
    "SnapshotError",
    "collect_snapshot",
    "empty_snapshot",
    "snapshot_diff",
    "fold_snapshot",
    "merge_snapshots",
    "snapshot_as_dict",
]

SNAPSHOT_VERSION = 1


class SnapshotError(ValueError):
    """Two snapshots disagree structurally (kind or bucket layout)."""


def empty_snapshot(ts: float | None = None) -> dict:
    """A snapshot with no families — the identity element of the fold."""
    return {
        "version": SNAPSHOT_VERSION,
        "ts": time.time() if ts is None else float(ts),
        "pid": os.getpid(),
        "families": {},
    }


def collect_snapshot(
    registry: MetricsRegistry | None = None, *, ts: float | None = None
) -> dict:
    """Capture *registry* (default: the process registry) as a snapshot.

    Histogram samples keep their **raw** per-bucket counts (last slot is
    the implicit ``+Inf`` bucket) — cumulative counts do not add across
    processes, raw counts do.
    """
    registry = registry if registry is not None else get_registry()
    snapshot = empty_snapshot(ts)
    families = snapshot["families"]
    for family in registry.families():
        entry: dict = {
            "kind": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
            "samples": [],
        }
        if isinstance(family, Histogram):
            entry["buckets"] = [float(b) for b in family.buckets]
            for labels, child in family.samples():
                with child._lock:
                    counts = list(child._bucket_counts)
                    total = child._sum
                    count = child._count
                entry["samples"].append({
                    "labels": dict(labels),
                    "counts": counts,
                    "sum": total,
                    "count": count,
                })
        else:
            for labels, child in family.samples():
                entry["samples"].append(
                    {"labels": dict(labels), "value": child.value}
                )
        families[family.name] = entry
    return snapshot


def _sample_key(labels: Mapping[str, str]) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _check_compatible(name: str, target: dict, source: dict) -> None:
    if target["kind"] != source["kind"]:
        raise SnapshotError(
            f"family {name!r} is a {target['kind']} in one snapshot and a "
            f"{source['kind']} in the other"
        )
    if target["kind"] == "histogram" and list(target.get("buckets", ())) != list(
        source.get("buckets", ())
    ):
        raise SnapshotError(
            f"histogram {name!r} has different bucket layouts across "
            "snapshots — merging bucket-wise would be lossy, refusing"
        )


def snapshot_diff(before: Mapping, after: Mapping, *, prune: bool = False) -> dict:
    """``after - before`` as a new snapshot (the delta a puller folds).

    Counters and histogram buckets subtract; a value that *shrank* means
    the source process restarted and re-counted from zero, so the
    ``after`` state is taken whole (never a negative delta).  Gauges take
    the ``after`` value — a gauge delta is meaningless.  Families or
    samples absent from *before* pass through unchanged.

    With ``prune=True`` the delta drops samples that carry no new
    information: zero-delta counters and histograms, and gauge samples
    whose value is unchanged since *before*.  Families left empty are
    dropped too.  This is how a forked shard worker avoids re-reporting
    registry state it inherited from the router at fork time (which would
    double-count parent samples and stamp a second ``shard`` label onto
    series the router already labelled).
    """
    delta = {
        "version": SNAPSHOT_VERSION,
        "ts": after.get("ts", time.time()),
        "pid": after.get("pid", os.getpid()),
        "families": {},
    }
    before_families = before.get("families", {})
    for name, entry in after.get("families", {}).items():
        prior = before_families.get(name)
        if prior is not None:
            _check_compatible(name, prior, entry)
        new_entry = {k: v for k, v in entry.items() if k != "samples"}
        new_entry["samples"] = []
        prior_samples = {}
        if prior is not None:
            prior_samples = {
                _sample_key(s["labels"]): s for s in prior["samples"]
            }
        for sample in entry["samples"]:
            old = prior_samples.get(_sample_key(sample["labels"]))
            if entry["kind"] == "histogram":
                new_sample = dict(sample, counts=list(sample["counts"]))
                if old is not None:
                    counts = [
                        n - o for n, o in zip(sample["counts"], old["counts"])
                    ]
                    if min(counts, default=0) >= 0 and sample["count"] >= old["count"]:
                        new_sample["counts"] = counts
                        new_sample["sum"] = sample["sum"] - old["sum"]
                        new_sample["count"] = sample["count"] - old["count"]
                    # else: counter reset — keep the after state whole
                if prune and new_sample["count"] == 0 and not any(
                    new_sample["counts"]
                ):
                    continue
            elif entry["kind"] == "counter":
                new_sample = dict(sample)
                if old is not None and sample["value"] >= old["value"]:
                    new_sample["value"] = sample["value"] - old["value"]
                if prune and new_sample["value"] == 0:
                    continue
            else:  # gauge: latest value, stamped with the capture time
                if prune and old is not None and sample["value"] == old["value"]:
                    continue
                new_sample = dict(sample)
                new_sample.setdefault("ts", delta["ts"])
            new_entry["samples"].append(new_sample)
        if prune and not new_entry["samples"]:
            continue
        delta["families"][name] = new_entry
    return delta


def fold_snapshot(
    target: dict,
    source: Mapping,
    extra_labels: Mapping[str, str] | None = None,
) -> dict:
    """Merge *source* into *target* in place; returns *target*.

    *extra_labels* (e.g. ``{"shard": "0"}``) are stamped onto every
    folded sample — colliding with a label the sample already carries is
    an error, not a silent overwrite.  Counters and histogram
    buckets/sums/counts add; gauge conflicts keep the value whose
    snapshot ``ts`` is newest.
    """
    extra = {str(k): str(v) for k, v in (extra_labels or {}).items()}
    source_ts = float(source.get("ts", 0.0))
    target_families = target.setdefault("families", {})
    for name, entry in source.get("families", {}).items():
        existing = target_families.get(name)
        if existing is None:
            existing = {k: v for k, v in entry.items() if k != "samples"}
            labelnames = list(entry.get("labelnames", ()))
            for label in extra:
                if label not in labelnames:
                    labelnames.append(label)
            existing["labelnames"] = labelnames
            existing["samples"] = []
            target_families[name] = existing
        else:
            _check_compatible(name, existing, entry)
            for label in extra:
                if label not in existing["labelnames"]:
                    existing["labelnames"].append(label)
        by_key = {
            _sample_key(s["labels"]): s for s in existing["samples"]
        }
        for sample in entry["samples"]:
            labels = dict(sample["labels"])
            for label, value in extra.items():
                if label in labels and labels[label] != value:
                    raise SnapshotError(
                        f"cannot stamp label {label}={value!r} on a "
                        f"{name!r} sample already labelled "
                        f"{label}={labels[label]!r}"
                    )
                labels[label] = value
            key = _sample_key(labels)
            current = by_key.get(key)
            if current is None:
                merged = copy.deepcopy(dict(sample, labels=labels))
                if entry["kind"] == "gauge":
                    merged.setdefault("ts", source_ts)
                existing["samples"].append(merged)
                by_key[key] = merged
            elif entry["kind"] == "histogram":
                current["counts"] = [
                    a + b for a, b in zip(current["counts"], sample["counts"])
                ]
                current["sum"] += sample["sum"]
                current["count"] += sample["count"]
            elif entry["kind"] == "counter":
                current["value"] += sample["value"]
            else:  # gauge: newest capture wins
                sample_ts = float(sample.get("ts", source_ts))
                if sample_ts >= float(current.get("ts", 0.0)):
                    current["value"] = sample["value"]
                    current["ts"] = sample_ts
    target["ts"] = max(float(target.get("ts", 0.0)), source_ts)
    return target


def merge_snapshots(
    base: Mapping | None,
    parts: Iterable[tuple[Mapping, Mapping[str, str] | None]] = (),
) -> dict:
    """Pure n-ary fold: deep-copy *base*, fold each ``(snapshot, extra)``."""
    out = copy.deepcopy(dict(base)) if base is not None else empty_snapshot()
    for snapshot, extra_labels in parts:
        fold_snapshot(out, snapshot, extra_labels)
    return out


def snapshot_as_dict(snapshot: Mapping) -> dict:
    """Re-shape *snapshot* into the ``MetricsRegistry.as_dict()`` layout.

    Same three sections (``counters``/``gauges``/``histograms``), same
    cumulative-bucket keys (``repr(bound)`` / ``"+Inf"``), so an
    aggregated dump is indistinguishable in shape from a single-process
    one and every existing JSON consumer keeps working.
    """
    out: dict[str, dict] = {"counters": {}, "gauges": {}, "histograms": {}}
    for name in sorted(snapshot.get("families", {})):
        entry = snapshot["families"][name]
        kind = entry["kind"]
        samples = []
        if kind == "histogram":
            bounds = [float(b) for b in entry.get("buckets", ())]
            for sample in entry["samples"]:
                cumulative: dict[str, int] = {}
                running = 0
                for bound, count in zip(
                    (*bounds, float("inf")), sample["counts"]
                ):
                    running += count
                    key = "+Inf" if bound == float("inf") else repr(bound)
                    cumulative[key] = running
                samples.append({
                    "labels": dict(sample["labels"]),
                    "buckets": cumulative,
                    "sum": sample["sum"],
                    "count": sample["count"],
                })
            section = out["histograms"]
        else:
            for sample in entry["samples"]:
                samples.append({
                    "labels": dict(sample["labels"]),
                    "value": sample["value"],
                })
            section = out["gauges" if kind == "gauge" else "counters"]
        section[name] = {
            "help": entry.get("help", ""),
            "labelnames": list(entry.get("labelnames", ())),
            "samples": samples,
        }
    return out
