"""Live metrics exposition over stdlib HTTP — the scrape endpoint.

:class:`MetricsServer` runs a :class:`http.server.ThreadingHTTPServer`
on a daemon thread and serves two read-only endpoints:

``GET /metrics``
    Prometheus text exposition (version 0.0.4) of whatever the
    installed *render* callback produces — for ``repro serve`` that is
    the **aggregated** view: the router's registry plus every shard
    worker's folded, ``shard``-labelled series.  ``?format=json``
    returns the same state in the ``--metrics-out`` JSON shape instead.
``GET /health``
    The serving health snapshot as JSON — the same payload the stdin
    protocol's ``HEALTH`` line prints, without touching the protocol
    stream.

The server binds ``127.0.0.1`` by default (an operational plane, not a
public API) and accepts port ``0`` for an ephemeral port — read the
resolved one back from :attr:`MetricsServer.port`, which is how the CI
scrape-smoke driver and the tests avoid port collisions.

Provider errors never kill the serving process: a callback that raises
answers ``500`` with the error text and the next scrape tries again.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable
from urllib.parse import parse_qs, urlparse

from repro.obs.logging import get_logger, log_event

__all__ = ["MetricsServer", "PROMETHEUS_CONTENT_TYPE"]

_LOG = get_logger("obs.http")

#: The exposition-format content type Prometheus scrapers expect.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Serve ``/metrics`` and ``/health`` from background daemon threads.

    Parameters
    ----------
    render:
        ``render(fmt) -> str`` with ``fmt`` in ``{"prom", "json"}`` —
        produces the metrics body.  Called per scrape, so a sharded
        runtime can pull fresh worker deltas lazily.
    health:
        Optional ``() -> dict`` producing the ``/health`` JSON payload;
        absent, ``/health`` answers 404.
    host / port:
        Bind address; port ``0`` picks an ephemeral port (see
        :attr:`port`).
    """

    def __init__(
        self,
        *,
        render: Callable[[str], str],
        health: Callable[[], dict] | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._render = render
        self._health = health
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
                outer._handle(self)

            def log_message(self, *_args) -> None:
                pass  # scrapes are per-interval noise; stay silent

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (the resolved one when constructed with 0)."""
        return self._server.server_address[1]

    @property
    def host(self) -> str:
        return self._server.server_address[0]

    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        parsed = urlparse(request.path)
        try:
            if parsed.path == "/metrics":
                fmt = parse_qs(parsed.query).get("format", ["prom"])[0]
                if fmt not in ("prom", "json"):
                    self._answer(
                        request, 400, "text/plain; charset=utf-8",
                        f"unknown format {fmt!r}; use 'prom' or 'json'\n",
                    )
                    return
                body = self._render(fmt)
                content_type = (
                    "application/json" if fmt == "json"
                    else PROMETHEUS_CONTENT_TYPE
                )
                self._answer(request, 200, content_type, body)
            elif parsed.path == "/health" and self._health is not None:
                body = json.dumps(self._health(), sort_keys=True, default=str)
                self._answer(request, 200, "application/json", body + "\n")
            else:
                self._answer(
                    request, 404, "text/plain; charset=utf-8",
                    "not found; endpoints: /metrics /health\n",
                )
        except Exception as exc:  # noqa: BLE001 — a scrape must not kill serving
            log_event(_LOG, "obs.scrape_failed", path=parsed.path, error=str(exc))
            try:
                self._answer(
                    request, 500, "text/plain; charset=utf-8",
                    f"internal error: {exc}\n",
                )
            except OSError:  # pragma: no cover — scraper hung up mid-error
                pass

    @staticmethod
    def _answer(
        request: BaseHTTPRequestHandler, status: int, content_type: str, body: str
    ) -> None:
        payload = body.encode("utf-8")
        request.send_response(status)
        request.send_header("Content-Type", content_type)
        request.send_header("Content-Length", str(len(payload)))
        request.end_headers()
        request.wfile.write(payload)

    def start(self) -> "MetricsServer":
        """Start serving on a daemon thread (idempotent)."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name=f"repro-metrics-http-{self.port}",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        """Stop accepting scrapes and release the socket."""
        thread = self._thread
        if thread is not None:
            self._thread = None
            self._server.shutdown()
            thread.join(timeout=5.0)
        self._server.server_close()

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *_exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "serving" if self._thread is not None else "stopped"
        return f"MetricsServer({self.host}:{self.port}, {state})"
