"""Concept taxonomies: rooted DAGs of ``is-a`` edges.

A :class:`Taxonomy` stores the ontological subgraph of a HIN (Section 2.1):
concepts linked to their hypernyms.  Multiple parents are allowed (the model
is a DAG, not necessarily a tree), cycles are rejected, and ancestor sets are
memoised because the semantic measures query them constantly.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import NodeNotFoundError, TaxonomyError

Concept = Hashable


class Taxonomy:
    """A DAG of concepts where edges point from a concept to its hypernym.

    Example
    -------
    >>> t = Taxonomy()
    >>> t.add_concept("Country")
    >>> t.add_concept("Country in America", parents=["Country"])
    >>> t.add_concept("USA", parents=["Country in America"])
    >>> sorted(t.ancestors("USA"), key=str)
    ['Country', 'Country in America', 'USA']
    """

    def __init__(self) -> None:
        self._parents: dict[Concept, tuple[Concept, ...]] = {}
        self._children: dict[Concept, list[Concept]] = {}
        self._ancestor_cache: dict[Concept, frozenset[Concept]] = {}
        self._descendant_count_cache: dict[Concept, int] | None = None
        self._depth_cache: dict[Concept, int] | None = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_concept(self, concept: Concept, parents: Iterable[Concept] = ()) -> None:
        """Add *concept* with the given hypernyms (created if missing).

        Adding the same concept twice merges the parent sets.  A cycle check
        runs on every insertion so the structure is a DAG at all times.
        """
        parent_tuple = tuple(parents)
        for parent in parent_tuple:
            if parent not in self._parents:
                self._parents[parent] = ()
                self._children[parent] = []
        if concept not in self._parents:
            self._parents[concept] = ()
            self._children[concept] = []
        merged = list(self._parents[concept])
        for parent in parent_tuple:
            if parent == concept:
                raise TaxonomyError(f"concept {concept!r} cannot be its own parent")
            if parent not in merged:
                merged.append(parent)
                self._children[parent].append(concept)
        self._parents[concept] = tuple(merged)
        self._invalidate_caches()
        if self._reaches_via_parents(concept, concept):
            raise TaxonomyError(f"adding {concept!r} would create a cycle")

    @classmethod
    def from_edges(cls, edges: Iterable[tuple[Concept, Concept]]) -> "Taxonomy":
        """Build a taxonomy from ``(child, parent)`` pairs."""
        taxonomy = cls()
        for child, parent in edges:
            taxonomy.add_concept(child, parents=[parent])
        return taxonomy

    @classmethod
    def from_hin(cls, graph, edge_label: str = "is-a") -> "Taxonomy":
        """Extract the taxonomy induced by all *edge_label* edges of a HIN.

        Nodes not touched by any ``is-a`` edge are still registered as
        isolated concepts, so every graph node has a (possibly trivial)
        taxonomy entry — the paper assumes objects are aligned with the
        ontology.
        """
        taxonomy = cls()
        for node in graph.nodes():
            taxonomy.add_concept(node)
        for child, parent, _weight in graph.edges_with_label(edge_label):
            taxonomy.add_concept(child, parents=[parent])
        return taxonomy

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, concept: Concept) -> bool:
        return concept in self._parents

    def __len__(self) -> int:
        return len(self._parents)

    def __repr__(self) -> str:
        return f"Taxonomy(concepts={len(self)}, roots={len(self.roots())})"

    def concepts(self) -> Iterator[Concept]:
        """Iterate concepts in insertion order."""
        return iter(self._parents)

    def parents(self, concept: Concept) -> tuple[Concept, ...]:
        """Return the direct hypernyms of *concept*."""
        self._require(concept)
        return self._parents[concept]

    def children(self, concept: Concept) -> tuple[Concept, ...]:
        """Return the direct hyponyms of *concept*."""
        self._require(concept)
        return tuple(self._children[concept])

    def roots(self) -> list[Concept]:
        """Return all concepts with no hypernym."""
        return [concept for concept, parents in self._parents.items() if not parents]

    def leaves(self) -> list[Concept]:
        """Return all concepts with no hyponym."""
        return [concept for concept, kids in self._children.items() if not kids]

    def is_tree(self) -> bool:
        """Return whether every concept has at most one parent and one root."""
        single_parent = all(len(parents) <= 1 for parents in self._parents.values())
        return single_parent and len(self.roots()) == 1

    def ancestors(self, concept: Concept) -> frozenset[Concept]:
        """Return the ancestor set of *concept*, *including itself*.

        Including the concept itself matches the LCA convention used by Lin:
        ``LCA(u, u) == u``.
        """
        self._require(concept)
        cached = self._ancestor_cache.get(concept)
        if cached is not None:
            return cached
        result: set[Concept] = {concept}
        stack = list(self._parents[concept])
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self._parents[current])
        frozen = frozenset(result)
        self._ancestor_cache[concept] = frozen
        return frozen

    def common_ancestors(self, a: Concept, b: Concept) -> frozenset[Concept]:
        """Return all shared ancestors of *a* and *b* (possibly empty)."""
        return self.ancestors(a) & self.ancestors(b)

    def depth(self, concept: Concept) -> int:
        """Return the minimum number of ``is-a`` hops from *concept* to a root."""
        if self._depth_cache is None:
            self._depth_cache = self._compute_depths()
        self._require(concept)
        return self._depth_cache[concept]

    def max_depth(self) -> int:
        """Return the depth of the deepest concept (0 for a root-only taxonomy)."""
        if self._depth_cache is None:
            self._depth_cache = self._compute_depths()
        return max(self._depth_cache.values(), default=0)

    def descendant_counts(self) -> dict[Concept, int]:
        """Return ``hypo(c)`` for every concept: |strict descendants of c|.

        This is the quantity in Seco's intrinsic IC formula.  Computed once
        in reverse-topological order and cached.
        """
        if self._descendant_count_cache is None:
            order = self.topological_order()
            descendants: dict[Concept, set[Concept]] = {c: set() for c in self._parents}
            # topological_order lists parents before children; walk backwards
            # so a child's closure is complete before its parents consume it.
            for concept in reversed(order):
                closure = descendants[concept]
                for parent in self._parents[concept]:
                    descendants[parent].add(concept)
                    descendants[parent].update(closure)
            self._descendant_count_cache = {
                concept: len(closure) for concept, closure in descendants.items()
            }
        return dict(self._descendant_count_cache)

    def topological_order(self) -> list[Concept]:
        """Return concepts ordered parents-first (roots at the front)."""
        in_progress: set[Concept] = set()
        done: set[Concept] = set()
        order: list[Concept] = []

        def visit(start: Concept) -> None:
            stack: list[tuple[Concept, bool]] = [(start, False)]
            while stack:
                concept, expanded = stack.pop()
                if expanded:
                    in_progress.discard(concept)
                    done.add(concept)
                    order.append(concept)
                    continue
                if concept in done:
                    continue
                if concept in in_progress:
                    raise TaxonomyError("taxonomy contains a cycle")
                in_progress.add(concept)
                stack.append((concept, True))
                for parent in self._parents[concept]:
                    if parent not in done:
                        stack.append((parent, False))

        for concept in self._parents:
            if concept not in done:
                visit(concept)
        # `order` currently lists each concept after its parents already.
        return order

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _compute_depths(self) -> dict[Concept, int]:
        depths: dict[Concept, int] = {}
        for concept in self.topological_order():
            parents = self._parents[concept]
            if not parents:
                depths[concept] = 0
            else:
                depths[concept] = 1 + min(depths[parent] for parent in parents)
        return depths

    def _reaches_via_parents(self, start: Concept, goal: Concept) -> bool:
        """Return whether *goal* is a strict ancestor of *start*."""
        frontier = list(self._parents[start])
        seen: set[Concept] = set()
        while frontier:
            current = frontier.pop()
            if current == goal:
                return True
            if current in seen:
                continue
            seen.add(current)
            frontier.extend(self._parents[current])
        return False

    def _invalidate_caches(self) -> None:
        self._ancestor_cache.clear()
        self._descendant_count_cache = None
        self._depth_cache = None

    def _require(self, concept: Concept) -> None:
        if concept not in self._parents:
            raise NodeNotFoundError(concept)
