"""Information Content (IC) estimators.

The paper quantifies the IC of a node as ``-log(P[v])`` — the rarer a
concept, the more informative it is — and *requires* the values used inside
Lin to lie in ``(0, 1]`` (Section 2.2).  It adapts the intrinsic formula of
Seco et al. [33] to guarantee that range; we reproduce that adaptation here:

    ``IC(c) = 1 - log(hypo(c) + 1) / log(N + 1)``

where ``hypo(c)`` is the number of strict descendants of ``c`` and ``N`` the
total number of concepts.  Leaves score exactly 1; the root of an
``N``-concept taxonomy scores ``1 - log(N)/log(N+1) > 0`` — strictly inside
the required range, unlike Seco's original ``log N`` denominator which sends
the root to 0.

Two alternatives are provided: a corpus-frequency estimator (counts propagate
to hypernyms, then ``-log P`` is normalised into ``(0, 1]``) and an explicit
table (used to reproduce Table 1 of the paper verbatim).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.errors import ConfigurationError, TaxonomyError
from repro.taxonomy.taxonomy import Concept, Taxonomy

#: Lower clamp guaranteeing IC values stay strictly positive.
MIN_IC = 1e-9


def seco_information_content(taxonomy: Taxonomy) -> dict[Concept, float]:
    """Return the adapted-Seco intrinsic IC for every concept.

    Runs in linear time in the size of the taxonomy (after the one-off
    descendant-count pass), exactly as the paper claims for its adaptation.

    >>> t = Taxonomy.from_edges([("USA", "Country"), ("France", "Country")])
    >>> ic = seco_information_content(t)
    >>> ic["USA"] == 1.0 and 0 < ic["Country"] < 1
    True
    """
    total = len(taxonomy)
    if total == 0:
        return {}
    if total == 1:
        return {concept: 1.0 for concept in taxonomy.concepts()}
    denominator = math.log(total + 1)
    counts = taxonomy.descendant_counts()
    return {
        concept: max(MIN_IC, 1.0 - math.log(hypo + 1) / denominator)
        for concept, hypo in counts.items()
    }


def corpus_information_content(
    taxonomy: Taxonomy,
    occurrence_counts: Mapping[Concept, float],
    smoothing: float = 1.0,
) -> dict[Concept, float]:
    """Return corpus-based IC: ``-log P[v]`` normalised into ``(0, 1]``.

    *occurrence_counts* gives raw observation counts per concept (missing
    concepts count as 0).  Counts propagate upward: observing a concept is
    also an observation of each of its hypernyms, which is the standard
    Resnik-style corpus estimate.  *smoothing* is an add-k prior that keeps
    unobserved concepts from getting infinite IC.

    The normalisation divides all values by the maximum IC, so the rarest
    concept scores exactly 1 and every concept scores > 0 — satisfying the
    range the paper requires.
    """
    if smoothing <= 0:
        raise ConfigurationError(f"smoothing must be > 0, got {smoothing!r}")
    if len(taxonomy) == 0:
        return {}
    propagated: dict[Concept, float] = {
        concept: smoothing + float(occurrence_counts.get(concept, 0.0))
        for concept in taxonomy.concepts()
    }
    # Children before parents, so each concept's mass is final before its
    # hypernyms accumulate it.
    for concept in reversed(taxonomy.topological_order()):
        mass = propagated[concept]
        for parent in taxonomy.parents(concept):
            propagated[parent] += mass
    total = sum(
        propagated[root] for root in taxonomy.roots()
    )
    raw = {
        concept: -math.log(propagated[concept] / total) if propagated[concept] < total else MIN_IC
        for concept in taxonomy.concepts()
    }
    peak = max(raw.values())
    if peak <= 0:
        # Degenerate: a single concept holding all mass.
        return {concept: 1.0 for concept in raw}
    return {concept: max(MIN_IC, value / peak) for concept, value in raw.items()}


def explicit_information_content(
    taxonomy: Taxonomy,
    table: Mapping[Concept, float],
) -> dict[Concept, float]:
    """Validate and return a hand-specified IC table.

    Used to replay the paper's worked example (Table 1) exactly.  Every
    taxonomy concept must be covered and every value must lie in ``(0, 1]``.
    """
    missing = [concept for concept in taxonomy.concepts() if concept not in table]
    if missing:
        raise TaxonomyError(f"IC table is missing concepts, e.g. {missing[0]!r}")
    result: dict[Concept, float] = {}
    for concept in taxonomy.concepts():
        value = float(table[concept])
        if not 0 < value <= 1:
            raise ConfigurationError(
                f"IC value for {concept!r} must lie in (0, 1], got {value!r}"
            )
        result[concept] = value
    return result
