"""Taxonomy substrate: concept hierarchies, Information Content, LCA.

The paper's semantic measure of choice (Lin) is defined over a concept
taxonomy via Information Content and lowest common ancestors; this subpackage
implements all three ingredients from scratch.
"""

from repro.taxonomy.taxonomy import Taxonomy
from repro.taxonomy.ic import (
    corpus_information_content,
    explicit_information_content,
    seco_information_content,
)
from repro.taxonomy.lca import TreeLCA, most_informative_common_ancestor

__all__ = [
    "Taxonomy",
    "seco_information_content",
    "corpus_information_content",
    "explicit_information_content",
    "TreeLCA",
    "most_informative_common_ancestor",
]
