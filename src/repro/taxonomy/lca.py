"""Lowest common ancestors.

Lin's measure needs ``LCA(u, v)`` in the taxonomy.  For general DAG
taxonomies the appropriate notion is the *most informative common ancestor*
(the shared ancestor with the highest IC) — for a tree this coincides with
the ordinary LCA under any monotone IC.

For strict trees we additionally provide :class:`TreeLCA`, a classic
Euler-tour + sparse-table RMQ structure (Harel & Tarjan [11], as cited by the
paper for its constant-time Lin computations): O(n log n) preprocessing,
O(1) per query.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import NodeNotFoundError, TaxonomyError
from repro.taxonomy.taxonomy import Concept, Taxonomy


def most_informative_common_ancestor(
    taxonomy: Taxonomy,
    ic: Mapping[Concept, float],
    a: Concept,
    b: Concept,
) -> Concept | None:
    """Return the common ancestor of *a* and *b* with maximum IC.

    Returns ``None`` when the concepts share no ancestor (disconnected
    taxonomy fragments).  Ties break deterministically by insertion order.
    """
    shared = taxonomy.common_ancestors(a, b)
    if not shared:
        return None
    # Ties break by depth (deeper = more specific) and then by a stable
    # string key, so results do not depend on set iteration order.
    return max(shared, key=lambda c: (ic[c], taxonomy.depth(c), str(c)))


class TreeLCA:
    """Constant-time LCA queries on a *tree* taxonomy.

    Builds the Euler tour of the tree and a sparse table over tour depths, so
    each query is two table lookups.  The paper relies on this construction
    ([11]) to make single-pair Lin computations O(1) after preprocessing.

    Raises :class:`TaxonomyError` if the taxonomy is not a single-rooted tree.
    """

    def __init__(self, taxonomy: Taxonomy) -> None:
        if not taxonomy.is_tree():
            raise TaxonomyError("TreeLCA requires a single-rooted tree taxonomy")
        self._taxonomy = taxonomy
        root = taxonomy.roots()[0]

        # Iterative Euler tour over child edges.  We re-append a node to the
        # tour every time control returns to it from a child.
        tour: list[Concept] = []
        depths: list[int] = []
        first_visit: dict[Concept, int] = {}
        frames: list[tuple[Concept, int, list[Concept]]] = [(root, 0, list(taxonomy.children(root)))]
        tour.append(root)
        depths.append(0)
        first_visit[root] = 0
        while frames:
            node, depth, remaining = frames[-1]
            if remaining:
                child = remaining.pop(0)
                tour.append(child)
                depths.append(depth + 1)
                first_visit.setdefault(child, len(tour) - 1)
                frames.append((child, depth + 1, list(taxonomy.children(child))))
            else:
                frames.pop()
                if frames:
                    parent_node, parent_depth, _ = frames[-1]
                    tour.append(parent_node)
                    depths.append(parent_depth)

        self._tour = tour
        self._first = first_visit
        self._table = self._build_sparse_table(depths)
        self._depths = depths

    @staticmethod
    def _build_sparse_table(depths: list[int]) -> list[list[int]]:
        """Sparse table of argmin-depth indices over the Euler tour."""
        m = len(depths)
        levels = max(1, m.bit_length())
        table: list[list[int]] = [list(range(m))]
        length = 1
        for _ in range(1, levels):
            previous = table[-1]
            next_length = length * 2
            if next_length > m:
                break
            row = []
            for i in range(m - next_length + 1):
                left = previous[i]
                right = previous[i + length]
                row.append(left if depths[left] <= depths[right] else right)
            table.append(row)
            length = next_length
        return table

    def query(self, a: Concept, b: Concept) -> Concept:
        """Return ``LCA(a, b)`` in O(1)."""
        try:
            i, j = self._first[a], self._first[b]
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        if i > j:
            i, j = j, i
        span = j - i + 1
        level = span.bit_length() - 1
        left = self._table[level][i]
        right = self._table[level][j - (1 << level) + 1]
        winner = left if self._depths[left] <= self._depths[right] else right
        return self._tour[winner]
