"""Similarity-based clustering (the Introduction's motivating application).

The paper motivates node similarity as "a fundamental component in numerous
network analysis algorithms, such as link prediction and clustering".  This
module provides the clustering side: a k-medoids partitioner driven by any
similarity oracle, plus the Adjusted-Rand-style agreement metrics used to
score a clustering against planted categories.

k-medoids (PAM-style, seeded) is chosen because it consumes *similarities*
directly — no embedding or metric space needed, which is exactly the regime
SimRank-family measures live in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import Node
from repro.utils.rng import ensure_rng

ScoreOracle = Callable[[Node, Node], float]


@dataclass
class ClusteringResult:
    """Cluster assignment plus the medoids that induced it."""

    assignment: dict[Node, int]
    medoids: list[Node]
    iterations: int

    @property
    def num_clusters(self) -> int:
        """Number of clusters (== the requested k)."""
        return len(self.medoids)


def similarity_kmedoids(
    items: Sequence[Node],
    oracle: ScoreOracle,
    k: int,
    max_iterations: int = 20,
    seed: int | np.random.Generator | None = None,
) -> ClusteringResult:
    """Partition *items* into *k* clusters around similarity medoids.

    Classic alternating scheme: assign every item to its most similar
    medoid, then recentre each cluster on the member with the highest total
    intra-cluster similarity.  Deterministic for a fixed seed.
    """
    items = list(items)
    if k < 1 or k > len(items):
        raise ConfigurationError(
            f"k must lie in [1, {len(items)}], got {k!r}"
        )
    rng = ensure_rng(seed)

    # Cache the (symmetric) similarity matrix once; oracles are the
    # expensive part of this computation.
    n = len(items)
    matrix = np.ones((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            value = oracle(items[i], items[j])
            matrix[i, j] = value
            matrix[j, i] = value

    medoid_ids = list(map(int, rng.choice(n, size=k, replace=False)))
    assignment = np.zeros(n, dtype=np.int64)
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # Assignment step: most similar medoid (stable tie-break by index).
        sims_to_medoids = matrix[:, medoid_ids]
        new_assignment = sims_to_medoids.argmax(axis=1)
        # Update step: per cluster, the member maximising intra-similarity.
        new_medoids = list(medoid_ids)
        for cluster in range(k):
            members = np.flatnonzero(new_assignment == cluster)
            if members.size == 0:
                continue
            intra = matrix[np.ix_(members, members)].sum(axis=1)
            new_medoids[cluster] = int(members[int(intra.argmax())])
        if new_medoids == medoid_ids and np.array_equal(new_assignment, assignment):
            break
        medoid_ids = new_medoids
        assignment = new_assignment
    return ClusteringResult(
        assignment={items[i]: int(assignment[i]) for i in range(n)},
        medoids=[items[m] for m in medoid_ids],
        iterations=iterations,
    )


def adjusted_rand_index(
    predicted: Mapping[Node, int],
    truth: Mapping[Node, Hashable],
) -> float:
    """Return the Adjusted Rand Index between two labelings.

    1.0 = identical partitions, ~0 = chance agreement.  Only nodes present
    in both mappings are scored.
    """
    common = [node for node in predicted if node in truth]
    if len(common) < 2:
        return 0.0
    predicted_labels = {label: i for i, label in enumerate(
        dict.fromkeys(predicted[node] for node in common)
    )}
    truth_labels = {label: i for i, label in enumerate(
        dict.fromkeys(truth[node] for node in common)
    )}
    contingency = np.zeros((len(predicted_labels), len(truth_labels)))
    for node in common:
        contingency[
            predicted_labels[predicted[node]], truth_labels[truth[node]]
        ] += 1

    def comb2(x: np.ndarray) -> np.ndarray:
        return x * (x - 1) / 2.0

    sum_cells = comb2(contingency).sum()
    sum_rows = comb2(contingency.sum(axis=1)).sum()
    sum_cols = comb2(contingency.sum(axis=0)).sum()
    total = comb2(np.array([len(common)]))[0]
    expected = sum_rows * sum_cols / total if total else 0.0
    maximum = 0.5 * (sum_rows + sum_cols)
    if maximum == expected:
        return 0.0
    return float((sum_cells - expected) / (maximum - expected))


def cluster_purity(
    predicted: Mapping[Node, int],
    truth: Mapping[Node, Hashable],
) -> float:
    """Return purity: the fraction of nodes in their cluster's majority class."""
    by_cluster: dict[int, list[Hashable]] = {}
    common = [node for node in predicted if node in truth]
    if not common:
        return 0.0
    for node in common:
        by_cluster.setdefault(predicted[node], []).append(truth[node])
    correct = 0
    for members in by_cluster.values():
        counts: dict[Hashable, int] = {}
        for label in members:
            counts[label] = counts.get(label, 0) + 1
        correct += max(counts.values())
    return correct / len(common)
