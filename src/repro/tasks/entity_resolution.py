"""Entity resolution by top-k similarity search (Figure 5b).

The paper mines candidate duplicate entities with Levenshtein string
distance (30 pairs: 24 term pairs + 6 author pairs on AMiner), then checks
— for each duplicate pair — whether a top-k similarity search from one
entity retrieves the other, reporting precision@k.

Both pieces are here: the Levenshtein miner (for name tables) and the
top-k evaluation harness (which also works directly on a dataset's planted
``extras["duplicates"]`` ground truth).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Sequence

from repro.core.topk import top_k_similar
from repro.hin.graph import Node
from repro.semantics.base import SemanticMeasure
from repro.tasks.metrics import precision_at_k
from repro.utils.levenshtein import normalized_levenshtein

ScoreOracle = Callable[[Node, Node], float]


def mine_duplicates_by_levenshtein(
    names: Mapping[Node, str],
    max_distance: float = 0.2,
) -> list[tuple[Node, Node]]:
    """Return node pairs whose display names are within *max_distance*.

    Distance is the length-normalised Levenshtein distance; the quadratic
    scan matches the paper's small candidate sets (tens of pairs mined
    from entity name tables).
    """
    nodes = list(names)
    pairs: list[tuple[Node, Node]] = []
    for i, a in enumerate(nodes):
        for b in nodes[i + 1:]:
            if normalized_levenshtein(names[a], names[b]) <= max_distance:
                pairs.append((a, b))
    return pairs


@dataclass
class EntityResolutionResult:
    """Precision@k of one measure on the duplicate-pair ground truth."""

    method: str
    precision_at_k: dict[int, float] = field(default_factory=dict)
    queries: int = 0


def evaluate_entity_resolution(
    duplicates: Sequence[tuple[Node, Node]],
    candidates: Sequence[Node],
    oracle: ScoreOracle,
    ks: Sequence[int] = (5, 10, 20, 40),
    method: str = "",
    measure: SemanticMeasure | None = None,
) -> EntityResolutionResult:
    """Evaluate *oracle* on duplicate detection via top-k search."""
    ks = sorted(ks)
    top = max(ks)
    hits: dict[int, list[bool]] = {k: [] for k in ks}
    for original, duplicate in duplicates:
        ranked = top_k_similar(
            original, candidates, top, oracle, measure=measure
        )
        ranked_nodes = [node for node, _ in ranked]
        for k in ks:
            hits[k].append(duplicate in ranked_nodes[:k])
    return EntityResolutionResult(
        method=method,
        precision_at_k={k: precision_at_k(flags) for k, flags in hits.items()},
        queries=len(duplicates),
    )
