"""Ranking-quality metrics: AP/MAP, NDCG, and ranking AUC.

The paper scores link prediction and entity resolution with hit-rate /
precision@k; downstream users of a similarity library usually also want
the standard ranking metrics, so they live here with the same oracle-based
calling convention as the task harnesses.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.hin.graph import Node

ScoreOracle = Callable[[Node, Node], float]


def average_precision(
    ranked: Sequence[Node],
    relevant: Iterable[Node],
) -> float:
    """Return AP of a ranked list against a relevant set.

    ``AP = (1/|relevant|) * Σ_k precision@k · [item_k relevant]`` over the
    supplied ranking; relevant items missing from the ranking contribute 0.
    """
    relevant_set = set(relevant)
    if not relevant_set:
        return 0.0
    hits = 0
    total = 0.0
    for position, node in enumerate(ranked, start=1):
        if node in relevant_set:
            hits += 1
            total += hits / position
    return total / len(relevant_set)


def mean_average_precision(
    queries: Sequence[tuple[Sequence[Node], Iterable[Node]]],
) -> float:
    """MAP over ``(ranking, relevant_set)`` pairs."""
    if not queries:
        return 0.0
    return sum(average_precision(r, rel) for r, rel in queries) / len(queries)


def ndcg_at_k(
    ranked: Sequence[Node],
    gains: dict[Node, float],
    k: int,
) -> float:
    """Normalised discounted cumulative gain at *k*.

    *gains* maps nodes to non-negative relevance grades (missing = 0).
    Returns 0 when no positive gain exists.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k!r}")

    def dcg(order: Sequence[Node]) -> float:
        return sum(
            gains.get(node, 0.0) / math.log2(position + 1)
            for position, node in enumerate(order[:k], start=1)
        )

    ideal_order = sorted(gains, key=lambda node: -gains[node])
    ideal = dcg(ideal_order)
    if ideal <= 0:
        return 0.0
    return dcg(ranked) / ideal


def ranking_auc(
    query: Node,
    positives: Sequence[Node],
    negatives: Sequence[Node],
    oracle: ScoreOracle,
) -> float:
    """AUC: probability a random positive outscores a random negative.

    Ties count half, the standard Mann-Whitney convention.  This is the
    usual threshold-free link-prediction criterion complementing the
    paper's hit-rate@k.
    """
    if not positives or not negatives:
        raise ConfigurationError("positives and negatives must be non-empty")
    positive_scores = [oracle(query, node) for node in positives]
    negative_scores = [oracle(query, node) for node in negatives]
    wins = 0.0
    for p in positive_scores:
        for n in negative_scores:
            if p > n:
                wins += 1.0
            elif p == n:
                wins += 0.5
    return wins / (len(positive_scores) * len(negative_scores))


def link_prediction_auc(
    removed: Sequence[tuple[Node, Node]],
    candidates: Sequence[Node],
    oracle: ScoreOracle,
    negatives_per_query: int = 20,
    seed: int | None = 0,
) -> float:
    """Mean AUC over removed links vs sampled non-neighbour negatives.

    For each removed edge ``(u, v)``, the positive is ``v`` and the
    negatives are sampled from *candidates* (excluding ``u`` and ``v``).
    """
    import numpy as np

    from repro.utils.rng import ensure_rng

    if not removed:
        return 0.0
    rng = ensure_rng(seed)
    aucs = []
    pool = list(candidates)
    for u, v in removed:
        negatives = []
        attempts = 0
        while len(negatives) < negatives_per_query and attempts < 50 * negatives_per_query:
            attempts += 1
            candidate = pool[int(rng.integers(len(pool)))]
            if candidate not in (u, v) and candidate not in negatives:
                negatives.append(candidate)
        if negatives:
            aucs.append(ranking_auc(u, [v], negatives, oracle))
    return float(np.mean(aucs)) if aucs else 0.0
