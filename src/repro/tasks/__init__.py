"""Evaluation tasks of Section 5.3 and the accuracy metrics of Section 5.2."""

from repro.tasks.metrics import (
    ApproximationErrorReport,
    approximation_error_report,
    error_statistics,
    pearson_correlation,
    precision_at_k,
)
from repro.tasks.relatedness_task import RelatednessResult, evaluate_relatedness
from repro.tasks.link_prediction import (
    LinkPredictionResult,
    evaluate_link_prediction,
    remove_random_links,
)
from repro.tasks.entity_resolution import (
    EntityResolutionResult,
    evaluate_entity_resolution,
    mine_duplicates_by_levenshtein,
)
from repro.tasks.clustering import (
    ClusteringResult,
    adjusted_rand_index,
    cluster_purity,
    similarity_kmedoids,
)
from repro.tasks.ranking_metrics import (
    average_precision,
    link_prediction_auc,
    mean_average_precision,
    ndcg_at_k,
    ranking_auc,
)

__all__ = [
    "pearson_correlation",
    "precision_at_k",
    "error_statistics",
    "ApproximationErrorReport",
    "approximation_error_report",
    "RelatednessResult",
    "evaluate_relatedness",
    "LinkPredictionResult",
    "evaluate_link_prediction",
    "remove_random_links",
    "EntityResolutionResult",
    "evaluate_entity_resolution",
    "mine_duplicates_by_levenshtein",
    "ClusteringResult",
    "similarity_kmedoids",
    "adjusted_rand_index",
    "cluster_purity",
    "average_precision",
    "mean_average_precision",
    "ndcg_at_k",
    "ranking_auc",
    "link_prediction_auc",
]
