"""Link prediction by top-k similarity search (Figure 5a).

Protocol, per the paper: remove a set of object-layer links, then — for one
endpoint of each removed link — run a top-k similarity search over the
object nodes and count a *hit* when the other endpoint appears in the
result.  The hit-rate@k curve over several k values is the figure's y-axis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.core.topk import top_k_similar
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure
from repro.tasks.metrics import precision_at_k
from repro.utils.rng import ensure_rng

ScoreOracle = Callable[[Node, Node], float]


def remove_random_links(
    graph: HIN,
    count: int,
    label: str,
    seed: int | np.random.Generator | None = None,
) -> tuple[HIN, list[tuple[Node, Node]]]:
    """Return a copy of *graph* with *count* random *label* links removed.

    Symmetric links are removed in both directions and reported once.  Each
    removed endpoint keeps at least one remaining edge, so the prediction
    task is never trivially impossible.
    """
    candidates = [
        (source, target)
        for source, target, _, edge_label in graph.edges()
        if edge_label == label and str(source) < str(target)
    ]
    if count > len(candidates):
        raise ConfigurationError(
            f"cannot remove {count} links: only {len(candidates)} candidates"
        )
    rng = ensure_rng(seed)
    pruned = graph.copy()
    removed: list[tuple[Node, Node]] = []
    order = rng.permutation(len(candidates))
    for idx in map(int, order):
        if len(removed) == count:
            break
        source, target = candidates[idx]
        if pruned.out_degree(source) <= 1 or pruned.out_degree(target) <= 1:
            continue
        pruned.remove_edge(source, target)
        if pruned.has_edge(target, source):
            pruned.remove_edge(target, source)
        removed.append((source, target))
    return pruned, removed


@dataclass
class LinkPredictionResult:
    """Hit-rates of one measure over the requested k values."""

    method: str
    hit_rate_at_k: dict[int, float] = field(default_factory=dict)
    queries: int = 0


def evaluate_link_prediction(
    removed: Sequence[tuple[Node, Node]],
    candidates: Sequence[Node],
    oracle: ScoreOracle,
    ks: Sequence[int] = (5, 10, 20, 40),
    method: str = "",
    measure: SemanticMeasure | None = None,
) -> LinkPredictionResult:
    """Evaluate *oracle* on the removed links via top-k search.

    When *measure* is provided the search exploits the Prop. 2.5 semantic
    bound (only sound for SemSim-family oracles).
    """
    ks = sorted(ks)
    top = max(ks)
    hits: dict[int, list[bool]] = {k: [] for k in ks}
    for source, target in removed:
        ranked = top_k_similar(
            source, candidates, top, oracle, measure=measure
        )
        ranked_nodes = [node for node, _ in ranked]
        for k in ks:
            hits[k].append(target in ranked_nodes[:k])
    return LinkPredictionResult(
        method=method,
        hit_rate_at_k={k: precision_at_k(flags) for k, flags in hits.items()},
        queries=len(removed),
    )
