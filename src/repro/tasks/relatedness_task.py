"""Term-relatedness evaluation (Table 5).

Given WordsSim-style judgements and a similarity oracle, computes the
Pearson correlation between the oracle's scores and the gold scores —
the paper's accuracy criterion for this task.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.datasets.wordsim import WordPairJudgement
from repro.hin.graph import Node
from repro.tasks.metrics import pearson_correlation

ScoreOracle = Callable[[Node, Node], float]


@dataclass
class RelatednessResult:
    """Pearson r / p of one measure on one relatedness benchmark."""

    method: str
    pearson_r: float
    p_value: float
    pairs: int


def evaluate_relatedness(
    judgements: Iterable[WordPairJudgement],
    oracle: ScoreOracle,
    method: str = "",
) -> RelatednessResult:
    """Score *oracle* against the gold judgements."""
    gold: list[float] = []
    predicted: list[float] = []
    for judgement in judgements:
        gold.append(judgement.score)
        predicted.append(oracle(judgement.a, judgement.b))
    r, p = pearson_correlation(gold, predicted)
    return RelatednessResult(method=method, pearson_r=r, p_value=p, pairs=len(gold))
