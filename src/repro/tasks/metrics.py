"""Metrics: Pearson correlation, precision@k, approximation-error reports.

These back Tables 4/5 and Figure 5.  The approximation-error report mirrors
the paper's Table 4 rows exactly: Pearson's r against the iterative ground
truth, mean/max estimator variance across repeated runs, and mean/max
relative and absolute errors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy import stats

from repro.errors import ConfigurationError


def pearson_correlation(x: Sequence[float], y: Sequence[float]) -> tuple[float, float]:
    """Return ``(r, p_value)`` for two paired samples.

    Degenerate inputs (length < 2 or zero variance) return ``(0.0, 1.0)``
    instead of raising, so benchmark loops stay robust.
    """
    xs = np.asarray(x, dtype=np.float64)
    ys = np.asarray(y, dtype=np.float64)
    if xs.size != ys.size:
        raise ConfigurationError(f"length mismatch: {xs.size} vs {ys.size}")
    if xs.size < 2 or np.std(xs) == 0 or np.std(ys) == 0:
        return 0.0, 1.0
    r, p = stats.pearsonr(xs, ys)
    return float(r), float(p)


def precision_at_k(hits: Sequence[bool]) -> float:
    """Fraction of queries whose target appeared in the top-k result."""
    flags = list(hits)
    if not flags:
        return 0.0
    return sum(flags) / len(flags)


def error_statistics(
    truth: Sequence[float], estimate: Sequence[float]
) -> dict[str, float]:
    """Mean/max relative and absolute errors of *estimate* against *truth*.

    Relative errors are computed only over pairs with positive ground
    truth, matching the paper's convention.
    """
    t = np.asarray(truth, dtype=np.float64)
    e = np.asarray(estimate, dtype=np.float64)
    if t.size != e.size:
        raise ConfigurationError(f"length mismatch: {t.size} vs {e.size}")
    absolute = np.abs(t - e)
    positive = t > 0
    relative = absolute[positive] / t[positive] if positive.any() else np.zeros(1)
    return {
        "mean_abs_err": float(absolute.mean()) if absolute.size else 0.0,
        "max_abs_err": float(absolute.max()) if absolute.size else 0.0,
        "mean_rel_err": float(relative.mean()),
        "max_rel_err": float(relative.max()),
    }


@dataclass
class ApproximationErrorReport:
    """One Table-4 block: accuracy of an approximation vs the ground truth."""

    pearson_r: float
    mean_variance: float
    max_variance: float
    mean_rel_err: float
    max_rel_err: float
    mean_abs_err: float
    max_abs_err: float
    runs: int
    pairs: int

    def rows(self) -> list[tuple[str, float]]:
        """Return the report as ordered (label, value) rows for printing."""
        return [
            ("Pearson's r", self.pearson_r),
            ("Mean var", self.mean_variance),
            ("Max var", self.max_variance),
            ("Mean rel. err", self.mean_rel_err),
            ("Max rel. err", self.max_rel_err),
            ("Mean abs. err", self.mean_abs_err),
            ("Max abs. err", self.max_abs_err),
        ]


def approximation_error_report(
    truth: Sequence[float],
    runs: Sequence[Sequence[float]],
) -> ApproximationErrorReport:
    """Aggregate repeated estimation runs into a Table-4 report.

    *truth* holds the iterative ground-truth score per pair; *runs* holds
    one estimate per pair for each repetition (walk index rebuilt between
    repetitions, as in the paper's 100-run protocol).
    """
    truth_arr = np.asarray(truth, dtype=np.float64)
    run_matrix = np.asarray(runs, dtype=np.float64)  # (num_runs, num_pairs)
    if run_matrix.ndim != 2 or run_matrix.shape[1] != truth_arr.size:
        raise ConfigurationError(
            f"runs shape {run_matrix.shape} does not match {truth_arr.size} pairs"
        )
    mean_estimate = run_matrix.mean(axis=0)
    variance = run_matrix.var(axis=0)
    errors = error_statistics(truth_arr, mean_estimate)
    r, _ = pearson_correlation(truth_arr, mean_estimate)
    return ApproximationErrorReport(
        pearson_r=r,
        mean_variance=float(variance.mean()),
        max_variance=float(variance.max()),
        mean_rel_err=errors["mean_rel_err"],
        max_rel_err=errors["max_rel_err"],
        mean_abs_err=errors["mean_abs_err"],
        max_abs_err=errors["max_abs_err"],
        runs=run_matrix.shape[0],
        pairs=truth_arr.size,
    )
