"""Small shared utilities: seeded RNG helpers, string distance, validation."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.levenshtein import levenshtein, normalized_levenshtein
from repro.utils.validation import (
    check_fraction,
    check_positive,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "levenshtein",
    "normalized_levenshtein",
    "check_fraction",
    "check_positive",
    "check_probability",
]
