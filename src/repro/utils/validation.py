"""Tiny argument validators shared across the library.

These raise :class:`repro.errors.ConfigurationError` with a consistent
message format, so user-facing parameter errors look the same everywhere.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError


def check_positive(name: str, value: float) -> float:
    """Validate that *value* is a finite number > 0 and return it."""
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"{name} must be a finite number > 0, got {value!r}")
    return value


def check_fraction(name: str, value: float) -> float:
    """Validate that *value* lies in the open interval (0, 1) and return it."""
    if not math.isfinite(value) or not 0 < value < 1:
        raise ConfigurationError(f"{name} must lie in (0, 1), got {value!r}")
    return value


def check_probability(name: str, value: float) -> float:
    """Validate that *value* lies in the closed interval [0, 1] and return it."""
    if not math.isfinite(value) or not 0 <= value <= 1:
        raise ConfigurationError(f"{name} must lie in [0, 1], got {value!r}")
    return value
