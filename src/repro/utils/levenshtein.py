"""Levenshtein (edit) distance.

The entity-resolution experiment (Section 5.3) mines candidate duplicate
entities with string edit distance; this is the only string algorithm the
paper depends on, implemented here with the standard two-row DP.
"""

from __future__ import annotations


def levenshtein(a: str, b: str) -> int:
    """Return the edit distance between *a* and *b*.

    Insertions, deletions and substitutions all cost 1.

    >>> levenshtein("data structures", "data structure")
    1
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    # Keep the shorter string in the inner dimension to minimise memory.
    if len(b) < len(a):
        a, b = b, a
    previous = list(range(len(a) + 1))
    current = [0] * (len(a) + 1)
    for j, cb in enumerate(b, start=1):
        current[0] = j
        for i, ca in enumerate(a, start=1):
            cost = 0 if ca == cb else 1
            current[i] = min(
                previous[i] + 1,       # deletion
                current[i - 1] + 1,    # insertion
                previous[i - 1] + cost,  # substitution
            )
        previous, current = current, previous
    return previous[len(a)]


def normalized_levenshtein(a: str, b: str) -> float:
    """Return the edit distance scaled into ``[0, 1]`` by the longer length.

    ``0.0`` means identical strings; ``1.0`` means nothing in common.  Two
    empty strings are identical by convention.
    """
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return levenshtein(a, b) / longest
