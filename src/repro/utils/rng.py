"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, an
existing :class:`numpy.random.Generator`, or ``None`` (fresh entropy).  This
module centralises the conversion so behaviour is uniform everywhere.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for *seed*.

    ``None`` produces a generator seeded from OS entropy; an ``int`` produces
    a reproducible generator; an existing generator is returned unchanged so
    callers can thread one RNG through a pipeline.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Derive *count* statistically independent child generators.

    Useful when a computation fans out into parallel-ish parts (e.g. one walk
    set per node) and each part must be reproducible independently of how many
    draws the others consumed.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seed_seq = seed.bit_generator.seed_seq
    else:
        seed_seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seed_seq.spawn(count)]
