"""Breadth-first shortest paths over a HIN (edges taken as undirected).

Used by the dataset generators (structural-proximity gold signals) and the
Relatedness baseline.  Distances are hop counts; weights are ignored.
"""

from __future__ import annotations

from collections import deque
from repro.hin.graph import HIN, Node


def bfs_distances(
    graph: HIN,
    source: Node,
    max_depth: int | None = None,
) -> dict[Node, int]:
    """Return hop distances from *source* to every reachable node.

    Edges are traversed in both directions.  *max_depth* bounds the search
    radius (inclusive); ``None`` explores the whole component.
    """
    distances: dict[Node, int] = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if max_depth is not None and depth >= max_depth:
            continue
        for neighbour in graph.out_neighbors(current):
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                queue.append(neighbour)
        for neighbour in graph.in_neighbors(current):
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                queue.append(neighbour)
    return distances


def shortest_path_length(
    graph: HIN,
    source: Node,
    target: Node,
    max_depth: int | None = None,
) -> int | None:
    """Return the undirected hop distance, or ``None`` if unreachable."""
    if source == target:
        return 0
    distances = bfs_distances(graph, source, max_depth=max_depth)
    return distances.get(target)
