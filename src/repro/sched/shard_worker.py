"""One shard's half of the scatter-gather protocol.

A shard worker owns the candidate-side slice of the walk index for one
contiguous node range ``[lo, hi)`` (see :mod:`repro.store.sharding`) and
answers four operations over a duplex pipe: ``batch`` (scores for
candidate positions it owns), ``topk`` (its range's exact local top-k),
``health`` and ``stats`` (a mergeable snapshot of the worker process's
metrics registry — see :mod:`repro.obs.aggregate` — which the router
folds under a ``shard`` label so ``/metrics`` shows the whole process
tree).  A forked worker inherits the router's registry *values* at fork
time, so :func:`shard_worker_main` captures a baseline snapshot first
and ``stats`` replies carry the pruned since-startup delta: only what
this worker actually did, never re-reports of parent samples (which
would double-count and collide with the router's own ``shard`` labels).  :func:`shard_worker_main` is the process entry point —
it opens the shard artifact **by path** inside the child, so nothing
unpicklable crosses the fork/spawn boundary — and
:func:`serve_connection` is the loop itself, also runnable on a plain
thread, which is how the identity tests drive the very same code
in-process and deterministically.

Bit-identity
------------
:class:`ShardEngine` replays :class:`~repro.core.montecarlo`'s batch
arithmetic *verbatim* on the shard's rows: the same identity /
semantic-gate masks on global positions, the same stacked first-meeting
comparison, the same :class:`~repro.backends.WalkScoreRequest` kernel
call.  Per-candidate scores never depend on which other candidates share
the batch (each row's factor chain and reduction read only that row), so
scattering a batch across shards and gathering the pieces reproduces the
unsharded floats exactly — the property suite in
``tests/properties/test_shard_identity.py`` holds this to ``==``.

Source rows
-----------
The shard stores only its own node range, but a query's *source* ``u``
can be any node.  The walk tensor and step tables are therefore
allocated with a few spare **slot rows** past the shard's range; the
router ships ``(walks[u], W[u], Q[u])`` read from the parent artifact's
mmap, the worker parks them in a slot (one per worker thread) and points
the kernel's ``pos_u`` at it.  Because a slot row's contents change from
request to request, the kernel request carries the source's **global**
position as its ``source_key`` — the content identity backends key their
source-row caches on (the blocked backend's u-side key plane would
otherwise serve one source's plane for another).  Shipped rows are cached
in a :class:`SourceRowLRU` that the router mirrors move-for-move, so
repeated hot-source requests cost no pipe bytes after the first.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from collections import OrderedDict
from contextlib import nullcontext
from pathlib import Path

import numpy as np

from repro.backends import WalkScoreRequest, kernel_timer, resolve_backend
from repro.core.montecarlo import AccuracyGauges, EstimatorStats
from repro.core.topk import top_k_similar
from repro.hin.io import hin_from_dict
from repro.obs.aggregate import collect_snapshot, snapshot_diff
from repro.obs.trace import span, trace_scope
from repro.semantics.cache import MatrixMeasure
from repro.store.artifacts import StoreError, read_artifact

OP_BATCH = "batch"
OP_TOPK = "topk"
OP_HEALTH = "health"
OP_STATS = "stats"
OP_SHUTDOWN = "shutdown"

#: The ops a ``shard.handle`` span may carry as its ``op`` label — anything
#: else is folded to ``other`` so a bad message cannot explode cardinality.
_SPAN_OPS = frozenset({OP_BATCH, OP_TOPK, OP_HEALTH, OP_STATS})

#: Source-row cache entries kept per shard connection (router mirrors this).
DEFAULT_SOURCE_CACHE = 64


class SourceRowLRU:
    """Deterministic LRU mirrored on both ends of a shard connection.

    The router and the worker run the *same* ``admit()`` sequence (the
    pipe serialises requests), so "does the worker already hold the rows
    for source ``u``?" is answerable router-side without a round trip.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = max(1, int(capacity))
        self._entries: OrderedDict = OrderedDict()

    def admit(self, key, value=None):
        """Touch *key*; insert *value* when absent.

        Returns ``(was_present, stored_value)`` — eviction of the least
        recently used entry happens on insert, identically on both
        mirrors.
        """
        if key in self._entries:
            self._entries.move_to_end(key)
            return True, self._entries[key]
        self._entries[key] = value
        if len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
        return False, value

    def __len__(self) -> int:
        return len(self._entries)


class ShardEngine:
    """Scoring over one node range of a sharded MC walk index.

    Replays the estimator's batch arithmetic on the shard's slice; every
    public method takes **global** node positions and answers only for
    candidates inside ``[lo, hi)``.
    """

    def __init__(
        self,
        *,
        shard_index: int,
        lo: int,
        hi: int,
        walks: np.ndarray,
        step_weights: np.ndarray | None,
        step_q: np.ndarray | None,
        sem_matrix: np.ndarray | None,
        so_matrix: np.ndarray | None,
        nodes: list,
        decay: float,
        theta: float | None,
        num_walks: int,
        slots: int,
        backend=None,
        backend_config=None,
        source_cache: int = DEFAULT_SOURCE_CACHE,
    ) -> None:
        self.shard_index = shard_index
        self.lo = lo
        self.hi = hi
        self.count = hi - lo
        self.slots = max(1, int(slots))
        self.decay = decay
        self.theta = theta
        self.num_walks = num_walks
        self.backend = resolve_backend(backend, backend_config)
        self.nodes = nodes
        self.position = {node: index for index, node in enumerate(nodes)}
        self.source_rows = SourceRowLRU(source_cache)
        self.semantic = sem_matrix is not None
        self.stats = EstimatorStats(
            method="mc",
            estimator="semsim-shard" if self.semantic else "simrank-shard",
        )
        self._accuracy = AccuracyGauges(
            "semsim-shard" if self.semantic else "simrank-shard"
        )
        #: Registry snapshot taken before this worker did any work of its
        #: own (set by :func:`shard_worker_main`); ``stats`` replies carry
        #: the pruned delta against it so fork-inherited samples are never
        #: re-reported.  ``None`` means "reply with the full snapshot".
        self.stats_baseline: dict | None = None
        # The kernel wants source and candidate rows in ONE tensor: rows
        # [0, count) are the shard's slice, rows [count, count + slots)
        # are per-thread parking spots for shipped source rows.
        self._walks = self._with_slots(walks)
        self._step_weights = self._with_slots(step_weights)
        self._step_q = self._with_slots(step_q)
        self._sem_matrix = sem_matrix
        self._so_matrix = so_matrix
        self._measure = (
            MatrixMeasure(nodes, sem_matrix) if sem_matrix is not None else None
        )

    def _with_slots(self, source: np.ndarray | None) -> np.ndarray | None:
        if source is None:
            return None
        extended = np.empty(
            (self.count + self.slots,) + source.shape[1:], dtype=source.dtype
        )
        extended[: self.count] = source
        return extended

    @classmethod
    def open(
        cls,
        path: "str | Path",
        *,
        backend=None,
        backend_config=None,
        slots: int = 1,
        source_cache: int = DEFAULT_SOURCE_CACHE,
    ) -> "ShardEngine":
        """Open a shard artifact written by ``write_shard_artifacts``."""
        artifact = read_artifact(Path(path))
        shard = artifact.manifest.get("shard")
        if not isinstance(shard, dict):
            raise StoreError(
                f"artifact at {path} carries no shard metadata — build one "
                "with `repro index shard`"
            )
        params = artifact.meta.get("params", {})
        graph = hin_from_dict(artifact.documents["graph"])
        return cls(
            shard_index=int(shard["index"]),
            lo=int(shard["lo"]),
            hi=int(shard["hi"]),
            walks=artifact.arrays["walks"],
            step_weights=artifact.arrays.get("step_weights"),
            step_q=artifact.arrays.get("step_q"),
            sem_matrix=artifact.arrays.get("sem_matrix"),
            so_matrix=artifact.arrays.get("so_matrix"),
            nodes=list(graph.nodes()),
            decay=float(params["decay"]),
            theta=None if params.get("theta") is None else float(params["theta"]),
            num_walks=int(params["num_walks"]),
            slots=slots,
            backend=backend,
            backend_config=backend_config,
            source_cache=source_cache,
        )

    # ------------------------------------------------------------------
    # Source-row handling
    # ------------------------------------------------------------------
    def owns(self, position: int) -> bool:
        return self.lo <= position < self.hi

    def _resolve_source(self, pos_u: int, u_rows, slot: int) -> int:
        """Row index of the source inside the extended tensors."""
        if self.owns(pos_u):
            return pos_u - self.lo
        if u_rows is None:
            raise StoreError(
                f"shard {self.shard_index} received source position {pos_u} "
                "outside its range with no shipped rows and no cache entry"
            )
        row = self.count + slot
        walk_row, weight_row, q_row = u_rows
        self._walks[row] = walk_row
        if self._step_weights is not None:
            self._step_weights[row] = weight_row
            self._step_q[row] = q_row
        return row

    # ------------------------------------------------------------------
    # Scoring — the estimator's batch arithmetic, verbatim
    # ------------------------------------------------------------------
    def _first_meetings(
        self, local_u: int, local_positions: np.ndarray
    ) -> np.ndarray:
        # WalkIndex.first_meetings_batch on the extended tensor: one
        # stacked comparison, start offset never counts as a meeting.
        walks_q = self._walks[local_u]
        walks_c = self._walks[local_positions]
        same = (walks_c == walks_q[None, :, :]) & (walks_c >= 0) & (
            walks_q[None, :, :] >= 0
        )
        same[:, :, 0] = False
        met_anywhere = same.any(axis=2)
        first = same.argmax(axis=2)
        return np.where(met_anywhere, first, -1).astype(np.int64)

    def score_positions(
        self,
        pos_u: int,
        positions: np.ndarray,
        u_rows=None,
        slot: int = 0,
    ) -> np.ndarray:
        """Scores for global candidate *positions*, all within this range."""
        positions = np.asarray(positions, dtype=np.int64)
        m = positions.size
        self.stats.add(batch_queries=1, batch_pairs=m)
        if m == 0:
            return np.empty(0, dtype=np.float64)
        self.stats.add(vectorized_pairs=m, queries=m)
        if self.semantic:
            return self._score_semsim(pos_u, positions, u_rows, slot)
        return self._score_simrank(pos_u, positions, u_rows, slot)

    def _score_semsim(self, pos_u, positions, u_rows, slot) -> np.ndarray:
        scores = np.zeros(positions.size, dtype=np.float64)
        identity = positions == pos_u
        scores[identity] = 1.0
        sem_row = self._sem_matrix[pos_u, positions]
        if self.theta is not None:
            gated = (sem_row <= self.theta) & ~identity
            self.stats.add(sem_gate_hits=int(gated.sum()))
        else:
            gated = np.zeros(positions.size, dtype=bool)
        active = ~identity & ~gated
        active_idx = np.flatnonzero(active)
        if active_idx.size == 0:
            return scores
        self.stats.add(walks_examined=int(active_idx.size) * self.num_walks)
        local_u = self._resolve_source(pos_u, u_rows, slot)
        local_positions = positions[active_idx] - self.lo
        meetings = self._first_meetings(local_u, local_positions)
        request = WalkScoreRequest(
            walks=self._walks,
            pos_u=local_u,
            positions=local_positions,
            meetings=meetings,
            sem_matrix=self._sem_matrix,
            step_weights=self._step_weights,
            step_q=self._step_q,
            decay=self.decay,
            theta=self.theta,
            so_matrix=self._so_matrix,
            so_lookup=None,
            # Slot rows are rewritten in place per source, so local_u does
            # NOT identify the row's contents — the global position does:
            # backends that cache source-row derivations key on it.
            source_key=pos_u,
        )
        with kernel_timer(self.backend.name, "batch_walk_scores"):
            result = self.backend.batch_walk_scores(request)
        self.stats.add(
            walks_met=result.walks_met,
            so_evaluations=result.so_evaluations,
            walks_pruned=result.walks_pruned,
        )
        self._accuracy.update(
            self.num_walks, result.walks_met, int(active_idx.size)
        )
        scores[active_idx] = sem_row[active_idx] * result.totals / self.num_walks
        return scores

    def _score_simrank(self, pos_u, positions, u_rows, slot) -> np.ndarray:
        local_u = self._resolve_source(pos_u, u_rows, slot)
        meetings = self._first_meetings(local_u, positions - self.lo)
        identity = positions == pos_u
        met = meetings >= 0
        met[identity] = False
        self.stats.add(
            walks_examined=int((~identity).sum()) * self.num_walks,
            walks_met=int(met.sum()),
        )
        self._accuracy.update(self.num_walks, int(met.sum()), int(positions.size))
        with kernel_timer(self.backend.name, "simrank_scores"):
            scores = self.backend.simrank_scores(
                meetings, met, self.decay, self.num_walks
            )
        scores[identity] = 1.0
        return scores

    # ------------------------------------------------------------------
    # Local top-k — QueryEngine.top_k restricted to this shard's range
    # ------------------------------------------------------------------
    def top_k_positions(
        self,
        pos_u: int,
        k: int,
        positions: np.ndarray | None = None,
        u_rows=None,
        slot: int = 0,
        use_semantic_bound: bool = True,
        batch_size: int = 256,
    ) -> list[tuple[int, float]]:
        """Exact local top-k as ``(global_position, score)`` pairs.

        Runs :func:`~repro.core.topk.top_k_similar` with the same bound
        construction and the same ``(value, str(node))`` comparator as
        the unsharded engine — the merge in
        :class:`~repro.sched.sharded.ShardedRuntime` relies on the local
        lists being exact under that total order.
        """
        if positions is None:
            positions = np.arange(self.lo, self.hi, dtype=np.int64)
        else:
            positions = np.asarray(positions, dtype=np.int64)
        query = self.nodes[pos_u]
        candidates = [self.nodes[int(position)] for position in positions]
        sem_bounds = None
        if use_semantic_bound and self._measure is not None:
            sem_bounds = dict(
                zip(candidates, self._measure.similarities(query, candidates))
            )

        def batch_score(u_node, block):
            block_positions = np.fromiter(
                (self.position[node] for node in block),
                dtype=np.int64,
                count=len(block),
            )
            return self.score_positions(
                pos_u, block_positions, u_rows=u_rows, slot=slot
            )

        ranked = top_k_similar(
            query,
            candidates,
            k,
            measure=self._measure,
            use_semantic_bound=use_semantic_bound,
            batch_score=batch_score,
            batch_size=batch_size,
            sem_bounds=sem_bounds,
        )
        return [(self.position[node], float(value)) for node, value in ranked]

    def health(self) -> dict:
        return {
            "shard": self.shard_index,
            "lo": self.lo,
            "hi": self.hi,
            "nodes": self.count,
            "semantic": self.semantic,
            "backend": self.backend.name,
            "cached_sources": len(self.source_rows),
        }


# ---------------------------------------------------------------------------
# The worker loop (thread- or process-hosted)
# ---------------------------------------------------------------------------

def _admit_source(engine: ShardEngine, message: dict) -> None:
    """Reader-side cache bookkeeping — must run in pipe order.

    The router mirrors this exact admit sequence, which is what lets it
    skip shipping rows the worker already caches.
    """
    pos_u = message.get("pos_u")
    if pos_u is None or engine.owns(pos_u):
        return
    _, stored = engine.source_rows.admit(pos_u, message.get("u_rows"))
    message["u_rows"] = stored


def _trace_context(message: dict):
    """The router-assigned trace context for *message*, or a no-op.

    Each pipe message optionally carries ``trace = {trace_id,
    parent_span_id}``; joining it re-roots every span and log record this
    request produces worker-side under the router's dispatch span, so one
    ``trace_id`` stitches the whole scatter back together.
    """
    trace = message.get("trace")
    if isinstance(trace, dict) and trace.get("trace_id"):
        return trace_scope(trace["trace_id"], trace.get("parent_span_id"))
    return nullcontext()


def _handle(engine: ShardEngine, message: dict, slot: int) -> dict:
    reply: dict = {"id": message.get("id")}
    op = message.get("op")
    started = time.perf_counter() if message.get("timings") else None
    try:
        with _trace_context(message), span(
            "shard.handle",
            labels={"op": op if op in _SPAN_OPS else "other"},
            shard=engine.shard_index,
        ):
            if op == OP_BATCH:
                reply["values"] = engine.score_positions(
                    message["pos_u"],
                    message["positions"],
                    u_rows=message.get("u_rows"),
                    slot=slot,
                )
            elif op == OP_TOPK:
                reply["results"] = engine.top_k_positions(
                    message["pos_u"],
                    message["k"],
                    positions=message.get("positions"),
                    u_rows=message.get("u_rows"),
                    slot=slot,
                    use_semantic_bound=message.get("use_semantic_bound", True),
                    batch_size=message.get("batch_size") or 256,
                )
            elif op == OP_HEALTH:
                reply["health"] = engine.health()
            elif op == OP_STATS:
                # pid lets the router detect a thread-hosted worker that
                # shares its registry (folding that snapshot would count
                # the router's own samples twice)
                snapshot = collect_snapshot()
                baseline = engine.stats_baseline
                if baseline is not None:
                    # report only what this worker did: registry state
                    # inherited from the router at fork time must not be
                    # re-counted under a shard label
                    snapshot = snapshot_diff(baseline, snapshot, prune=True)
                reply["snapshot"] = snapshot
                reply["pid"] = os.getpid()
            else:
                raise StoreError(f"unknown shard operation {op!r}")
    except Exception as exc:  # answered, never crashes the worker loop
        reply["error"] = str(exc)
        reply["kind"] = type(exc).__name__
    if started is not None:
        reply["worker_us"] = (time.perf_counter() - started) * 1e6
    return reply


def serve_connection(engine: ShardEngine, conn, workers: int = 1) -> None:
    """Answer shard operations on *conn* until shutdown or pipe EOF.

    *workers* threads drain a local task queue (numpy releases the GIL,
    so intra-shard overlap is real work, not queueing theatre); replies
    are serialised by a send lock and matched by request id router-side,
    so completion order is free to differ from arrival order.
    """
    workers = max(1, int(workers))
    tasks: queue.Queue = queue.Queue()
    send_lock = threading.Lock()

    def _send(reply: dict) -> None:
        with send_lock:
            try:
                conn.send(reply)
            except (OSError, ValueError, BrokenPipeError):
                pass  # router went away; nothing left to answer to

    def _run(slot: int) -> None:
        while True:
            message = tasks.get()
            if message is None:
                return
            _send(_handle(engine, message, slot))

    threads = [
        threading.Thread(
            target=_run, args=(slot,), name=f"shard-{engine.shard_index}-w{slot}",
            daemon=True,
        )
        for slot in range(workers)
    ]
    for thread in threads:
        thread.start()
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if not isinstance(message, dict) or message.get("op") == OP_SHUTDOWN:
                break
            _admit_source(engine, message)
            tasks.put(message)
    finally:
        for _ in threads:
            tasks.put(None)
        for thread in threads:
            thread.join()
        try:
            conn.close()
        except OSError:
            pass


def shard_worker_main(path, conn, config: dict | None = None) -> None:
    """Process entry point: open the shard by path, handshake, serve.

    SIGINT/SIGTERM are ignored — shutdown is coordinated by the router
    over the pipe (or by pipe EOF when the router dies), which is what
    lets a supervisor's SIGTERM to the process group drain cleanly
    instead of killing shards mid-request.
    """
    config = dict(config or {})
    # Fork-inherited registry values belong to the router's story, not
    # this worker's; everything from here on (including the shard-open
    # I/O below) is this worker's own work and diffs against this.
    baseline = collect_snapshot()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, signal.SIG_IGN)
        except (ValueError, OSError):  # pragma: no cover - non-main thread
            pass
    try:
        engine = ShardEngine.open(
            path,
            backend=config.get("backend"),
            backend_config=config.get("backend_config"),
            slots=config.get("workers", 1),
            source_cache=config.get("source_cache", DEFAULT_SOURCE_CACHE),
        )
    except Exception as exc:
        try:
            conn.send({"op": "ready", "error": str(exc), "kind": type(exc).__name__})
        finally:
            conn.close()
        return
    engine.stats_baseline = baseline
    conn.send({"op": "ready", **engine.health()})
    serve_connection(engine, conn, workers=config.get("workers", 1))
