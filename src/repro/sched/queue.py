"""Bounded FIFO request queue with admission control and micro-batch pops.

:class:`AdmissionQueue` is where overload becomes deterministic: a
request submitted while the queue holds ``watermark`` entries is refused
with :class:`~repro.sched.errors.Overloaded` *at submission time* —
nothing is admitted that the runtime does not intend to answer.  Once
admitted, a request leaves the queue exactly one way: inside a
micro-batch handed to a worker (requests whose deadline lapsed while
queued are still handed over, so the dispatcher can answer them with
``DeadlineExceeded`` — the queue never silently discards).

``take()`` implements the dynamic micro-batching wait: the first waiting
worker becomes the batch leader, pops what is there, and — when the batch
is still below ``max_batch`` and a coalescing window (``max_wait``) is
configured — lingers briefly for followers to arrive.  A full batch, an
expired window, or a closing queue all end the wait.

Time enters only through the injected *clock* (deadlines, wait windows)
so tests can drive it virtually; the condition-variable sleeps themselves
are real-time, which is why deterministic tests run with ``max_wait=0``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable

from repro.obs.registry import is_enabled
from repro.sched.errors import Overloaded, RuntimeClosed
from repro.sched.metrics import QUEUE_DEPTH, REJECTED
from repro.sched.request import ScheduledRequest

_REJECT_OVERLOADED = REJECTED.labels(reason="overloaded")
_REJECT_CLOSED = REJECTED.labels(reason="closed")


class AdmissionQueue:
    """Bounded FIFO of :class:`ScheduledRequest` with leader-batch pops."""

    def __init__(
        self,
        watermark: int,
        clock: Callable[[], float],
    ) -> None:
        if watermark < 1:
            raise ValueError(f"watermark must be >= 1, got {watermark!r}")
        self.watermark = watermark
        self._clock = clock
        self._items: deque[ScheduledRequest] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._closed = False

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def offer(self, request: ScheduledRequest) -> None:
        """Admit *request* or raise (:class:`Overloaded`/:class:`RuntimeClosed`).

        Admission is all-or-nothing under the lock: either the request is
        in the queue when this returns (and will be dispatched), or the
        caller gets the rejection and the queue is untouched.

        The ``sched_queue_depth`` gauge is sampled at batch pops, not per
        offer — the admit path is the per-request hot path and stays free
        of registry traffic.
        """
        with self._not_empty:
            if self._closed:
                if is_enabled():
                    _REJECT_CLOSED.inc()
                raise RuntimeClosed()
            depth = len(self._items)
            if depth >= self.watermark:
                if is_enabled():
                    _REJECT_OVERLOADED.inc()
                raise Overloaded(depth, self.watermark)
            self._items.append(request)
            self._not_empty.notify()

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    def take(
        self,
        max_batch: int,
        max_wait: float,
        poll: float = 0.1,
    ) -> list[ScheduledRequest] | None:
        """Pop the next micro-batch (blocking), or ``None`` when drained.

        Blocks until at least one request is available, then — if the
        queue holds fewer than *max_batch* and *max_wait* > 0 — waits up
        to *max_wait* seconds (measured on the injected clock) for more
        requests to coalesce before popping up to *max_batch* of them in
        FIFO order.  Returns ``None`` only when the queue is closed *and*
        empty: the drain contract is that every admitted request is
        handed to some worker before the workers are told to exit.
        """
        with self._not_empty:
            while not self._items:
                if self._closed:
                    return None
                self._not_empty.wait(poll)
            if max_wait > 0 and len(self._items) < max_batch:
                window_end = self._clock() + max_wait
                while len(self._items) < max_batch and not self._closed:
                    remaining = window_end - self._clock()
                    if remaining <= 0:
                        break
                    self._not_empty.wait(min(remaining, poll))
            count = min(max_batch, len(self._items))
            batch = [self._items.popleft() for _ in range(count)]
            if is_enabled():
                QUEUE_DEPTH.set(len(self._items))
            if self._items:
                # more work remains: pass the baton to another waiter
                self._not_empty.notify()
            return batch

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop admitting; waiting workers drain what remains, then exit."""
        with self._not_empty:
            self._closed = True
            self._not_empty.notify_all()

    def drain_now(self) -> list[ScheduledRequest]:
        """Remove and return everything queued (the no-drain close path)."""
        with self._not_empty:
            remaining = list(self._items)
            self._items.clear()
            if is_enabled():
                QUEUE_DEPTH.set(0)
            return remaining

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        return len(self._items)

    def __repr__(self) -> str:
        status = "closed" if self._closed else "open"
        return (
            f"AdmissionQueue({status}, depth={len(self._items)}, "
            f"watermark={self.watermark})"
        )
