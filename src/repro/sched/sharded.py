"""Multi-process sharded serving: scatter-gather over node-range shards.

:class:`ShardedRuntime` extends :class:`~repro.sched.runtime.ServingRuntime`
— same admission queue, same coalescer, same worker threads, same
future-based API — but the dispatch step routes through one worker
**process** per shard instead of one in-process engine:

* a single-pair request goes to the shard owning the *candidate*'s node
  range (coalesced same-source groups scatter their candidate set, so
  the PR 5 micro-batching win and the multi-process win compose);
* ``BATCH`` scatters candidates by owning range and gathers the pieces
  back into submission order — bit-identical to the unsharded call
  because per-candidate scores never depend on their batch-mates;
* ``TOPK`` asks every shard for its exact local top-k (same
  ``(value, str(node))`` comparator as :func:`~repro.core.topk.top_k_similar`)
  and re-selects the global k from the union under that same total
  order — provably identical to the unsharded scan, property-tested in
  ``tests/properties/test_shard_identity.py``.

Fault isolation is per shard: every shard gets its own
:class:`~repro.serve.CircuitBreaker`; a worker that errors, misses the
``shard_timeout`` liveness bound, or dies trips only its breaker (a
request that merely exhausts its *own* deadline budget mid-gather does
not — that says nothing about the shard's health), and the
quarantined range is answered **degraded** from the fallback
:class:`~repro.serve.IndexManager` stack (the ``service`` the runtime
wraps) while every other range keeps serving at full fidelity.  When the
breaker half-opens, the next request restarts the worker process as the
probe.

The worker seam mirrors PR 5's thread-factory seam one level up:
``worker_factory(path, config)`` defaults to
:class:`ProcessShardWorker` (one forked process per shard, talking over
a duplex pipe) and tests swap in :class:`ThreadShardWorker` to run the
identical worker loop on in-process threads, deterministically.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from copy import deepcopy
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.obs.aggregate import (
    SnapshotError,
    collect_snapshot,
    empty_snapshot,
    fold_snapshot,
    snapshot_diff,
)
from repro.obs.logging import get_logger, log_event
from repro.obs.registry import is_enabled
from repro.obs.trace import current_span_id, current_trace_id
from repro.sched.metrics import (
    COALESCED,
    MERGE_LATENCY,
    SCATTER_FANOUT,
    SHARD_QUARANTINED,
    SHARD_REQUESTS,
    SHARD_WORKERS,
    STATS_PULLS,
)
from repro.sched.request import KIND_BATCH, KIND_SCORE, KIND_TOPK, DispatchGroup
from repro.sched.runtime import ServingRuntime, _deliver
from repro.sched.shard_worker import (
    DEFAULT_SOURCE_CACHE,
    OP_BATCH,
    OP_SHUTDOWN,
    OP_STATS,
    OP_TOPK,
    SourceRowLRU,
    shard_worker_main,
)
from repro.serve.breaker import CircuitBreaker, CircuitState
from repro.serve.errors import MutationRejectedError
from repro.serve.service import BatchResponse, QueryResponse, QueryService, TopKResponse
from repro.store.artifacts import StoreError, read_artifact
from repro.store.sharding import ShardPlan

_LOG = get_logger("sched.sharded")

#: How long ``start()`` waits for a shard worker's ready handshake.
START_TIMEOUT = 60.0

#: Per-shard wait for deadline-less requests — a hung worker must trip
#: the breaker eventually, not pin a router thread forever.
DEFAULT_SHARD_TIMEOUT = 30.0


class ShardFailure(RuntimeError):
    """One shard could not answer (transport down, worker error, timeout).

    Router-internal: it feeds the shard's circuit breaker and the request
    falls back to the unsharded service — callers of the runtime never
    see this exception.
    """


# ---------------------------------------------------------------------------
# Worker transports (the process-factory seam)
# ---------------------------------------------------------------------------

class ProcessShardWorker:
    """One shard served from a forked worker process over a duplex pipe.

    The child receives only the artifact *path* and a plain config dict —
    it opens the shard itself, so the transport is spawn-safe and the
    mmap'd replicated matrices share page cache across workers.
    """

    def __init__(self, path, config: dict) -> None:
        context = multiprocessing.get_context()
        self.conn, child = context.Pipe(duplex=True)
        self.process = context.Process(
            target=shard_worker_main,
            args=(str(path), child, dict(config)),
            name=f"repro-shard-{config.get('shard', '?')}",
            daemon=True,
        )
        self.process.start()
        child.close()  # the child's end lives in the child now

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            self.conn.send({"op": OP_SHUTDOWN})
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.process.join(timeout)
        if self.process.is_alive():  # pragma: no cover — stuck worker
            self.process.terminate()
            self.process.join(1.0)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class ThreadShardWorker:
    """The identical worker loop on an in-process thread — the test seam.

    Runs :func:`shard_worker_main` unchanged (its signal setup no-ops off
    the main thread), so identity and resilience tests exercise the very
    code the forked workers run, without process-spawn nondeterminism.
    """

    def __init__(self, path, config: dict) -> None:
        self.conn, child = multiprocessing.Pipe(duplex=True)
        self.thread = threading.Thread(
            target=shard_worker_main,
            args=(str(path), child, dict(config)),
            name=f"repro-shard-{config.get('shard', '?')}-thread",
            daemon=True,
        )
        self.thread.start()

    @property
    def alive(self) -> bool:
        return self.thread.is_alive()

    def shutdown(self, timeout: float = 5.0) -> None:
        try:
            self.conn.send({"op": OP_SHUTDOWN})
        except (OSError, ValueError, BrokenPipeError):
            pass
        self.thread.join(timeout)
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


#: ``worker_factory(path, config) -> worker`` — the multi-process seam.
WorkerFactory = Callable[[object, dict], object]


class ShardClient:
    """Router-side endpoint of one shard: pipe, pending futures, mirror.

    Request/reply matching is by id (a reader thread resolves futures as
    replies arrive, in whatever order the worker finishes them); the
    :class:`SourceRowLRU` mirror replays the worker's cache bookkeeping
    so hot-source rows ship at most once per cache residency.
    """

    def __init__(
        self,
        index: int,
        lo: int,
        hi: int,
        path,
        config: dict,
        factory: WorkerFactory,
    ) -> None:
        self.index = index
        self.lo = lo
        self.hi = hi
        self.path = path
        self._config = dict(config, shard=index)
        self._factory = factory
        self._lock = threading.Lock()
        self._pending: dict[int, Future] = {}
        self._cache = SourceRowLRU(config.get("source_cache", DEFAULT_SOURCE_CACHE))
        self._next_id = 0
        self._worker = None
        self._dead = True
        self.ready: dict = {}

    @property
    def running(self) -> bool:
        worker = self._worker
        return worker is not None and not self._dead and worker.alive

    def start(self) -> None:
        """(Re)spawn the worker and wait for its ready handshake."""
        with self._lock:
            if self.running:
                return
            self._fail_pending(ShardFailure(f"shard {self.index} restarting"))
            self._cache = SourceRowLRU(
                self._config.get("source_cache", DEFAULT_SOURCE_CACHE)
            )
            worker = self._factory(self.path, self._config)
            try:
                if not worker.conn.poll(START_TIMEOUT):
                    raise ShardFailure(
                        f"shard {self.index} worker sent no ready handshake "
                        f"within {START_TIMEOUT}s"
                    )
                ready = worker.conn.recv()
            except (EOFError, OSError, ShardFailure) as exc:
                worker.shutdown(timeout=1.0)
                raise ShardFailure(
                    f"shard {self.index} worker failed to start: {exc}"
                ) from exc
            if ready.get("error"):
                worker.shutdown(timeout=1.0)
                raise ShardFailure(
                    f"shard {self.index} worker failed to open its artifact: "
                    f"{ready['error']}"
                )
            self.ready = ready
            self._worker = worker
            self._dead = False
            threading.Thread(
                target=self._read_loop,
                args=(worker,),
                name=f"shard-{self.index}-reader",
                daemon=True,
            ).start()

    def _read_loop(self, worker) -> None:
        while True:
            try:
                reply = worker.conn.recv()
            except (EOFError, OSError):
                break
            with self._lock:
                future = self._pending.pop(reply.get("id"), None)
            if future is not None:
                _deliver(future, reply)
        with self._lock:
            if self._worker is worker:
                self._dead = True
            self._fail_pending(
                ShardFailure(f"shard {self.index} connection closed")
            )

    def _fail_pending(self, exc: Exception) -> None:
        pending, self._pending = self._pending, {}
        for future in pending.values():
            _deliver(future, exc=exc)

    def submit(
        self, op: str, pos_u: int, u_rows_fn, **fields
    ) -> Future:
        """Send one operation; the returned future resolves to the reply."""
        with self._lock:
            if self._worker is None or self._dead:
                raise ShardFailure(f"shard {self.index} worker is not running")
            self._next_id += 1
            message = {"op": op, "id": self._next_id, "pos_u": pos_u, **fields}
            if not self.lo <= pos_u < self.hi:
                present, _ = self._cache.admit(pos_u, True)
                if not present:
                    message["u_rows"] = u_rows_fn(pos_u)
            future: Future = Future()
            self._pending[message["id"]] = future
            try:
                self._worker.conn.send(message)
            except (OSError, ValueError, BrokenPipeError) as exc:
                self._pending.pop(message["id"], None)
                self._dead = True
                raise ShardFailure(
                    f"shard {self.index} pipe send failed: {exc}"
                ) from exc
            return future

    def close(self, timeout: float = 5.0) -> None:
        with self._lock:
            worker, self._worker = self._worker, None
            self._dead = True
            self._fail_pending(ShardFailure(f"shard {self.index} closed"))
        if worker is not None:
            worker.shutdown(timeout)


# ---------------------------------------------------------------------------
# The runtime
# ---------------------------------------------------------------------------

class ShardedRuntime(ServingRuntime):
    """Scatter-gather serving over node-range shard worker processes.

    Parameters beyond :class:`ServingRuntime`'s (whose ``workers`` here
    are the *router* threads doing scatter-gather):

    shard_paths:
        The shard artifacts of one ``write_shard_artifacts`` run, in plan
        order.
    parent_path:
        The unsharded parent artifact — source rows (``walks[u]`` and
        step tables) are read from its mmap and shipped to shards.
        Defaults to the path recorded in the shard manifests.
    workers_per_shard:
        Worker threads inside each shard process.
    worker_factory:
        ``(path, config) -> worker`` seam; defaults to
        :class:`ProcessShardWorker`.
    breaker_factory:
        ``(shard_index) -> CircuitBreaker`` for per-shard quarantine.
    shard_timeout:
        Per-shard gather wait (seconds) for requests without a deadline;
        requests with a deadline wait only for their remaining budget.
    stats_interval:
        Seconds between background pulls of each worker's metrics
        registry snapshot (folded under a ``shard`` label into
        :meth:`merged_snapshot`).  ``None`` disables the puller thread
        *and* the implicit pulls on :meth:`health` and drain — the
        deterministic-test mode, where a fault-double worker must not be
        waited on.

    The wrapped *service* is the **fallback stack**: quarantined ranges
    are answered from ``service.manager`` (full PR 4 machinery — retry,
    its own breaker, iterative degradation) and flagged ``degraded``.
    """

    def __init__(
        self,
        service: QueryService,
        shard_paths: Sequence,
        *,
        parent_path=None,
        workers: int = 4,
        workers_per_shard: int = 1,
        max_batch: int = 32,
        max_wait_us: float = 0.0,
        queue_depth: int = 1024,
        clock: Callable[[], float] | None = None,
        autostart: bool = True,
        thread_factory=None,
        worker_factory: WorkerFactory | None = None,
        breaker_factory: Callable[[int], CircuitBreaker] | None = None,
        backend=None,
        backend_config=None,
        source_cache: int = DEFAULT_SOURCE_CACHE,
        shard_timeout: float | None = DEFAULT_SHARD_TIMEOUT,
        stats_interval: float | None = 10.0,
        timings: bool = False,
    ) -> None:
        if not shard_paths:
            raise StoreError("ShardedRuntime needs at least one shard path")
        super().__init__(
            service,
            workers=workers,
            max_batch=max_batch,
            max_wait_us=max_wait_us,
            queue_depth=queue_depth,
            clock=clock,
            autostart=False,
            thread_factory=thread_factory,
            timings=timings,
        )
        self.workers_per_shard = max(1, int(workers_per_shard))
        self._shard_timeout = shard_timeout
        self._stats_interval = stats_interval
        self._stats_lock = threading.Lock()
        self._worker_baseline: dict[int, dict] = {}
        self._worker_acc = empty_snapshot(ts=0.0)
        self._stats_stop = threading.Event()
        self._stats_thread: threading.Thread | None = None

        head = read_artifact(Path(shard_paths[0]))
        self._plan = ShardPlan.from_manifest(head.manifest)
        if self._plan.num_shards != len(shard_paths):
            raise StoreError(
                f"plan in {shard_paths[0]} names {self._plan.num_shards} "
                f"shards but {len(shard_paths)} paths were given"
            )
        if parent_path is None:
            parent_path = head.manifest["shard"].get("parent")
        if parent_path is None:
            raise StoreError(
                "shard manifests record no parent artifact path — pass "
                "parent_path explicitly"
            )
        parent = read_artifact(Path(parent_path))
        self._method = str(parent.meta.get("params", {}).get("method", "mc"))
        self._parent_walks = parent.arrays["walks"]
        self._parent_sw = parent.arrays.get("step_weights")
        self._parent_sq = parent.arrays.get("step_q")
        from repro.store.engine_io import graph_from_artifact

        graph = graph_from_artifact(parent)
        self._nodes = list(graph.nodes())
        self._node_position = {node: i for i, node in enumerate(self._nodes)}
        if len(self._nodes) != self._plan.num_nodes:
            raise StoreError(
                f"parent graph has {len(self._nodes)} nodes but the shard "
                f"plan covers {self._plan.num_nodes}"
            )
        self._range_starts = np.fromiter(
            (lo for lo, _ in self._plan.boundaries),
            dtype=np.int64,
            count=self._plan.num_shards,
        )

        config = {
            "workers": self.workers_per_shard,
            "source_cache": source_cache,
            "backend": backend,
            "backend_config": backend_config,
        }
        factory = worker_factory if worker_factory is not None else ProcessShardWorker
        self._clients = [
            ShardClient(index, lo, hi, path, config, factory)
            for index, ((lo, hi), path) in enumerate(
                zip(self._plan.boundaries, shard_paths)
            )
        ]
        if breaker_factory is None:
            breaker_factory = lambda index: CircuitBreaker(  # noqa: E731
                name=f"shard-{index}", clock=self._clock,
            )
        self._breakers = [breaker_factory(i) for i in range(len(self._clients))]
        self._shard_cells: dict[tuple[int, str], object] = {}
        self._quarantine_gauges = [
            SHARD_QUARANTINED.labels(shard=str(i))
            for i in range(len(self._clients))
        ]
        self._clients_closed = False
        self._mutations_rejected = 0
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def plan(self) -> ShardPlan:
        return self._plan

    def start(self) -> None:
        """Spawn shard workers (failures quarantine, they don't abort),
        then the router pool."""
        for client in self._clients:
            if client.running:
                continue
            breaker = self._breakers[client.index]
            try:
                client.start()
                SHARD_WORKERS.labels(shard=str(client.index)).set(
                    float(self.workers_per_shard)
                )
            except ShardFailure as exc:
                # served degraded from the fallback until a probe revives it
                breaker.record_failure()
                self._sync_quarantine(client.index)
                log_event(
                    _LOG, "shard.start_failed",
                    shard=client.index, error=str(exc),
                )
        super().start()
        if (
            self._stats_interval is not None
            and self._stats_thread is None
            and not self.closed
        ):
            self._stats_stop.clear()
            self._stats_thread = threading.Thread(
                target=self._stats_loop,
                name="repro-shard-stats",
                daemon=True,
            )
            self._stats_thread.start()

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        stats_thread = self._stats_thread
        if stats_thread is not None:
            self._stats_thread = None
            self._stats_stop.set()
            stats_thread.join(timeout=5.0)
        joined = super().close(drain=drain, timeout=timeout)
        if not self._clients_closed:
            # final pull AFTER the drain (every kernel has run) and BEFORE
            # the clients close — the shutdown dump sees complete workers
            if drain and self._stats_interval is not None:
                try:
                    self.pull_worker_stats(timeout=1.0)
                except Exception as exc:  # noqa: BLE001 — shutdown must finish
                    log_event(_LOG, "shard.stats_pull_failed", error=str(exc))
            self._clients_closed = True
            for client in self._clients:
                client.close()
                SHARD_WORKERS.labels(shard=str(client.index)).set(0.0)
        return joined

    def health(self) -> dict:
        if self._stats_interval is not None and not self._clients_closed:
            try:
                self.pull_worker_stats(timeout=1.0)
            except Exception as exc:  # noqa: BLE001 — health must answer
                log_event(_LOG, "shard.stats_pull_failed", error=str(exc))
        payload = super().health()
        payload["shards"] = [
            {
                "shard": client.index,
                "range": [client.lo, client.hi],
                "running": client.running,
                "quarantined": self._breakers[client.index].state
                is not CircuitState.CLOSED,
                "circuit": self._breakers[client.index].state.value,
            }
            for client in self._clients
        ]
        payload["workers_per_shard"] = self.workers_per_shard
        with self._stats_lock:
            payload["metrics_aggregation"] = {
                "interval_s": self._stats_interval,
                "shards_polled": len(self._worker_baseline),
            }
        head_epoch = self._head_epoch()
        payload["mutations"] = {
            "supported": False,
            "rejected": self._mutations_rejected,
            "head_epoch": head_epoch,
            "shard_epoch": 0,
            "epoch_mismatch": head_epoch != 0,
        }
        return payload

    # ------------------------------------------------------------------
    # Live mutations — unsupported on sharded stacks
    # ------------------------------------------------------------------
    def _head_epoch(self) -> int:
        state = self.service.manager._state
        if state is None or state.engine is None:
            return 0
        return int(getattr(state.engine.walk_index, "epoch", 0))

    def apply_mutations(self, mutations) -> dict:
        """Reject live mutations: shard workers pin immutable snapshots.

        Each shard process mmaps a walk-tensor artifact written at epoch 0
        and cannot be repaired in place.  Mutating only the head engine
        would let the fallback stack answer from a newer epoch than the
        shards — the mismatch this method refuses is the one ``health()``
        surfaces under ``mutations.epoch_mismatch``.
        """
        self._mutations_rejected += 1
        head_epoch = self._head_epoch()
        raise MutationRejectedError(
            "sharded runtime cannot apply live mutations: shard workers "
            "serve immutable walk-tensor snapshots pinned at epoch 0 — "
            "rebuild and re-shard the index instead",
            head_epoch=head_epoch,
            shard_epoch=0,
        )

    # ------------------------------------------------------------------
    # Cross-process metrics aggregation
    # ------------------------------------------------------------------
    def _stats_loop(self) -> None:
        while not self._stats_stop.wait(self._stats_interval):
            try:
                self.pull_worker_stats()
            except Exception as exc:  # noqa: BLE001 — the puller must survive
                log_event(_LOG, "shard.stats_pull_failed", error=str(exc))

    def pull_worker_stats(self, timeout: float = 5.0) -> int:
        """Pull one round of worker registry snapshots; fold the deltas.

        Each healthy worker answers a ``stats`` op with a full
        :func:`~repro.obs.aggregate.collect_snapshot`; the router keeps a
        per-shard baseline, folds only the since-last-pull *delta* into
        its accumulator under a ``shard`` label (so a restarted worker's
        counters re-add instead of double-counting — reset detection in
        :func:`~repro.obs.aggregate.snapshot_diff` handles the rest), and
        returns how many shards folded this round.  Pull failures are
        counted in ``shard_stats_pulls_total`` but never feed the shard
        breakers: a slow stats reply says nothing about query health.
        """
        in_flight: list[tuple[ShardClient, Future]] = []
        for client in self._clients:
            if not client.running:
                continue
            if self._breakers[client.index].state is not CircuitState.CLOSED:
                continue
            try:
                # pos_u = client.lo is always in-range: no source rows
                # ship and the LRU mirrors stay untouched
                in_flight.append(
                    (client, client.submit(OP_STATS, client.lo, None))
                )
            except ShardFailure:
                if is_enabled():
                    STATS_PULLS.labels(outcome="error").inc()
        folded = 0
        router_pid = os.getpid()
        for client, future in in_flight:
            try:
                reply = future.result(timeout)
            except FutureTimeout:
                if is_enabled():
                    STATS_PULLS.labels(outcome="timeout").inc()
                continue
            except ShardFailure:
                if is_enabled():
                    STATS_PULLS.labels(outcome="error").inc()
                continue
            snapshot = reply.get("snapshot")
            if reply.get("error") or not isinstance(snapshot, dict):
                if is_enabled():
                    STATS_PULLS.labels(outcome="error").inc()
                continue
            with self._stats_lock:
                baseline = self._worker_baseline.get(client.index)
                self._worker_baseline[client.index] = snapshot
                if reply.get("pid") == router_pid:
                    # thread-hosted worker (test seam) sharing this
                    # process's registry: its samples are already in the
                    # router's own snapshot — folding would double-count
                    outcome = "skipped"
                else:
                    delta = (
                        snapshot_diff(baseline, snapshot)
                        if baseline is not None else snapshot
                    )
                    # fold into a copy first: fold_snapshot mutates in
                    # place, and a malformed delta must not leave the
                    # accumulator half-updated
                    try:
                        acc = fold_snapshot(
                            deepcopy(self._worker_acc),
                            delta,
                            {"shard": str(client.index)},
                        )
                    except SnapshotError as exc:
                        log_event(
                            _LOG, "shard.stats_fold_failed",
                            shard=client.index, error=str(exc),
                        )
                        outcome = "error"
                    else:
                        self._worker_acc = acc
                        folded += 1
                        outcome = "ok"
            if is_enabled():
                STATS_PULLS.labels(outcome=outcome).inc()
        return folded

    def merged_snapshot(self, pull: bool = True) -> dict:
        """The whole process tree's metrics as one mergeable snapshot.

        The router's own registry plus every worker's accumulated,
        ``shard``-labelled series — what ``repro metrics dump``, the
        ``--metrics-out`` shutdown dump and the ``/metrics`` scrape
        endpoint render for a sharded runtime.  *pull* fetches fresh
        worker deltas first (skip it to read the accumulator as-is).
        """
        if pull and not self._clients_closed:
            try:
                self.pull_worker_stats()
            except Exception as exc:  # noqa: BLE001 — render what we have
                log_event(_LOG, "shard.stats_pull_failed", error=str(exc))
        merged = collect_snapshot()
        with self._stats_lock:
            workers = deepcopy(self._worker_acc)
        fold_snapshot(merged, workers)
        return merged

    # ------------------------------------------------------------------
    # Shard bookkeeping
    # ------------------------------------------------------------------
    def _count_shard(self, index: int, outcome: str) -> None:
        if not is_enabled():
            return
        cell = self._shard_cells.get((index, outcome))
        if cell is None:
            cell = SHARD_REQUESTS.labels(shard=str(index), outcome=outcome)
            self._shard_cells[(index, outcome)] = cell
        cell.inc()

    def _sync_quarantine(self, index: int) -> None:
        if is_enabled():
            state = self._breakers[index].state
            self._quarantine_gauges[index].set(
                0.0 if state is CircuitState.CLOSED else 1.0
            )

    def _shard_ready(self, index: int) -> bool:
        """Breaker + liveness gate; a half-open probe restarts the worker."""
        breaker = self._breakers[index]
        if not breaker.allow():
            self._count_shard(index, "quarantined")
            self._sync_quarantine(index)
            return False
        client = self._clients[index]
        if not client.running:
            try:
                client.start()
                SHARD_WORKERS.labels(shard=str(index)).set(
                    float(self.workers_per_shard)
                )
            except ShardFailure as exc:
                self._shard_failed(index, "error", exc)
                return False
        return True

    def _shard_failed(self, index: int, outcome: str, exc: Exception) -> None:
        self._breakers[index].record_failure()
        self._count_shard(index, outcome)
        self._sync_quarantine(index)
        log_event(
            _LOG, "shard.failed",
            shard=index, outcome=outcome, error=str(exc),
        )

    def _shard_succeeded(self, index: int) -> None:
        self._breakers[index].record_success()
        self._count_shard(index, "ok")
        self._sync_quarantine(index)

    def _source_rows(self, pos_u: int):
        """Materialise the source's rows off the parent artifact's mmap."""
        walks_row = np.asarray(self._parent_walks[pos_u])
        if self._parent_sw is None:
            return (walks_row, None, None)
        return (
            walks_row,
            np.asarray(self._parent_sw[pos_u]),
            np.asarray(self._parent_sq[pos_u]),
        )

    def _gather(self, index: int, future: Future, deadline: float | None):
        """Wait for one shard's reply within the request's budget.

        Two different timeouts can expire here and only one says anything
        about the shard's health: missing the ``shard_timeout`` *liveness*
        bound feeds the shard's circuit breaker, while exhausting the
        request's own deadline budget does not — the shard never got its
        full liveness window, so a burst of tight-deadline requests must
        not quarantine healthy shards.
        """
        timeout = self._shard_timeout
        budget_bound = False
        if deadline is not None:
            budget = max(0.0, deadline - self._clock())
            if timeout is None or budget < timeout:
                timeout = budget
                budget_bound = True
        try:
            reply = future.result(timeout)
        except FutureTimeout as exc:
            if budget_bound:
                self._count_shard(index, "deadline")
                raise ShardFailure(
                    f"shard {index} reply outlived the request's deadline "
                    "budget"
                ) from exc
            self._shard_failed(index, "timeout", exc)
            raise ShardFailure(f"shard {index} missed its deadline") from exc
        except ShardFailure as exc:
            self._shard_failed(index, "error", exc)
            raise
        if reply.get("error"):
            exc = ShardFailure(
                f"shard {index} answered {reply.get('kind')}: {reply['error']}"
            )
            self._shard_failed(index, "error", exc)
            raise exc
        self._shard_succeeded(index)
        return reply

    # ------------------------------------------------------------------
    # Dispatch overrides — scatter, gather, merge
    # ------------------------------------------------------------------
    def _execute_group(self, group: DispatchGroup) -> None:
        pos_u = self._node_position.get(group.u)
        if pos_u is None:
            exc = NodeNotFoundError(group.u)
            for request in group.requests:
                self._finish_error(request, exc)
            return
        if group.kind == KIND_SCORE:
            self._execute_score_group_sharded(group, pos_u)
        elif group.kind == KIND_BATCH:
            self._execute_batch_sharded(group.requests[0], pos_u)
        elif group.kind == KIND_TOPK:
            self._execute_topk_sharded(group.requests[0], pos_u)
        else:  # pragma: no cover — submission API cannot build other kinds
            raise ValueError(f"unknown request kind {group.kind!r}")

    def _message_extras(self) -> dict:
        """Per-scatter message fields: trace context + timings request.

        Computed once per scatter (all its shard messages belong to one
        trace tree rooted at the dispatch span this thread is inside).
        """
        extras: dict = {}
        trace_id = current_trace_id()
        if trace_id is not None:
            extras["trace"] = {
                "trace_id": trace_id,
                "parent_span_id": current_span_id(),
            }
        if self.timings:
            extras["timings"] = True
        return extras

    def _scatter_scores(
        self, pos_u: int, positions: np.ndarray, deadline: float | None
    ):
        """Scores for *positions*, routed by owner, fallback for failures.

        Returns ``(values, degraded_mask, fallback_acquisition, timing)``
        where the mask marks candidates answered by the fallback stack
        and *timing* is the ``--timings`` latency breakdown (``None``
        when timings are off).
        """
        owners = np.searchsorted(self._range_starts, positions, side="right") - 1
        values = np.empty(positions.size, dtype=np.float64)
        degraded = np.zeros(positions.size, dtype=bool)
        merge_started = self._clock()
        extras = self._message_extras()
        in_flight: list[tuple[int, np.ndarray, Future]] = []
        failed: list[tuple[int, np.ndarray]] = []
        shard_ids = np.unique(owners)
        if is_enabled():
            SCATTER_FANOUT.observe(float(shard_ids.size))
        for shard_id in shard_ids:
            shard_id = int(shard_id)
            member_idx = np.flatnonzero(owners == shard_id)
            if not self._shard_ready(shard_id):
                failed.append((shard_id, member_idx))
                continue
            try:
                future = self._clients[shard_id].submit(
                    OP_BATCH, pos_u, self._source_rows,
                    positions=positions[member_idx], **extras,
                )
            except ShardFailure as exc:
                self._shard_failed(shard_id, "error", exc)
                failed.append((shard_id, member_idx))
                continue
            in_flight.append((shard_id, member_idx, future))
        kernel_us = 0.0
        for shard_id, member_idx, future in in_flight:
            try:
                reply = self._gather(shard_id, future, deadline)
            except ShardFailure:
                failed.append((shard_id, member_idx))
                continue
            values[member_idx] = reply["values"]
            kernel_us = max(kernel_us, float(reply.get("worker_us", 0.0)))
        gather_ended = self._clock()
        acquisition = None
        if failed:
            acquisition = self.service.manager.acquire(deadline=deadline)
            engine = acquisition.engine
            for shard_id, member_idx in failed:
                nodes = [self._nodes[int(p)] for p in positions[member_idx]]
                values[member_idx] = engine.score_batch(
                    self._nodes[pos_u], nodes
                )
                degraded[member_idx] = True
        if is_enabled():
            MERGE_LATENCY.observe(max(0.0, self._clock() - merge_started))
        timing = None
        if self.timings:
            timing = {
                "scatter_us": max(0.0, (gather_ended - merge_started) * 1e6),
                "kernel_us": kernel_us,
                "merge_us": max(0.0, (self._clock() - gather_ended) * 1e6),
            }
        return values, degraded, acquisition, timing

    def _execute_score_group_sharded(self, group: DispatchGroup, pos_u: int) -> None:
        live = []
        positions = []
        for request in group.requests:
            pos_v = self._node_position.get(request.v)
            if pos_v is None:
                self._finish_error(request, NodeNotFoundError(request.v))
            else:
                live.append(request)
                positions.append(pos_v)
        if not live:
            return
        if len(live) > 1 and is_enabled():
            COALESCED.inc(len(live))
        deadline = min(
            (r.deadline for r in live if r.deadline is not None), default=None
        )
        values, degraded, acquisition, timing = self._scatter_scores(
            pos_u, np.asarray(positions, dtype=np.int64), deadline
        )
        end = self._clock()
        trace_id = group.requests[0].trace_id
        for i, request in enumerate(live):
            elapsed_ms = self._finalize(request, end, bool(degraded[i]))
            if elapsed_ms is None:
                continue
            _deliver(request.future, self._annotate(QueryResponse(
                request.u, request.v, float(values[i]), bool(degraded[i]),
                acquisition.retries if degraded[i] and acquisition else 0,
                acquisition.engine.method if degraded[i] and acquisition
                else self._method,
                elapsed_ms,
                tier=acquisition.tier if degraded[i] and acquisition
                else None,
            ), request, trace_id, **(timing or {})))

    def _execute_batch_sharded(self, request, pos_u: int) -> None:
        positions = []
        for candidate in request.candidates:
            pos_v = self._node_position.get(candidate)
            if pos_v is None:
                self._finish_error(request, NodeNotFoundError(candidate))
                return
            positions.append(pos_v)
        values, degraded, acquisition, timing = self._scatter_scores(
            pos_u, np.asarray(positions, dtype=np.int64), request.deadline
        )
        any_degraded = bool(degraded.any())
        end = self._clock()
        elapsed_ms = self._finalize(request, end, any_degraded)
        if elapsed_ms is None:
            return
        _deliver(request.future, self._annotate(BatchResponse(
            u=request.u, candidates=request.candidates, values=values,
            degraded=any_degraded,
            retries=acquisition.retries if acquisition else 0,
            method=acquisition.engine.method
            if acquisition and any_degraded else self._method,
            elapsed_ms=elapsed_ms,
            tier=acquisition.tier if acquisition and any_degraded else None,
        ), request, **(timing or {})))

    def _execute_topk_sharded(self, request, pos_u: int) -> None:
        if request.candidates is not None:
            positions = []
            for candidate in request.candidates:
                pos_v = self._node_position.get(candidate)
                if pos_v is None:
                    self._finish_error(request, NodeNotFoundError(candidate))
                    return
                positions.append(pos_v)
            positions = np.asarray(positions, dtype=np.int64)
            owners = np.searchsorted(
                self._range_starts, positions, side="right"
            ) - 1
            targets = [
                (int(shard_id), positions[np.flatnonzero(owners == shard_id)])
                for shard_id in np.unique(owners)
            ]
        else:
            targets = [(index, None) for index in range(len(self._clients))]

        merge_started = self._clock()
        if is_enabled():
            SCATTER_FANOUT.observe(float(len(targets)))
        fields: dict = {"k": request.k, **self._message_extras()}
        if request.batch_size is not None:
            fields["batch_size"] = request.batch_size
        in_flight = []
        failed = []
        for shard_id, shard_positions in targets:
            if not self._shard_ready(shard_id):
                failed.append((shard_id, shard_positions))
                continue
            shard_fields = dict(fields)
            if shard_positions is not None:
                shard_fields["positions"] = shard_positions
            try:
                future = self._clients[shard_id].submit(
                    OP_TOPK, pos_u, self._source_rows, **shard_fields
                )
            except ShardFailure as exc:
                self._shard_failed(shard_id, "error", exc)
                failed.append((shard_id, shard_positions))
                continue
            in_flight.append((shard_id, shard_positions, future))

        # (value, str(node), node) — the exact total order the unsharded
        # heap selects under; re-selecting the global k from exact local
        # top-k lists is therefore bit-identical to the unsharded scan.
        entries: list[tuple[float, str, object]] = []
        kernel_us = 0.0
        for shard_id, shard_positions, future in in_flight:
            try:
                reply = self._gather(shard_id, future, request.deadline)
            except ShardFailure:
                failed.append((shard_id, shard_positions))
                continue
            for position, value in reply["results"]:
                node = self._nodes[int(position)]
                entries.append((float(value), str(node), node))
            kernel_us = max(kernel_us, float(reply.get("worker_us", 0.0)))
        gather_ended = self._clock()

        acquisition = None
        any_degraded = bool(failed)
        if failed:
            acquisition = self.service.manager.acquire(deadline=request.deadline)
            engine = acquisition.engine
            for shard_id, shard_positions in failed:
                if shard_positions is None:
                    lo, hi = self._plan.boundaries[shard_id]
                    candidates = self._nodes[lo:hi]
                else:
                    candidates = [self._nodes[int(p)] for p in shard_positions]
                kwargs = {}
                if request.batch_size is not None:
                    kwargs["batch_size"] = request.batch_size
                for node, value in engine.top_k(
                    self._nodes[pos_u], request.k, candidates=candidates,
                    **kwargs,
                ):
                    entries.append((float(value), str(node), node))

        top = heapq.nlargest(request.k, entries)
        top.sort(key=lambda entry: (-entry[0], entry[1]))
        results = tuple((node, value) for value, _, node in top)
        if is_enabled():
            MERGE_LATENCY.observe(max(0.0, self._clock() - merge_started))
        end = self._clock()
        timing = None
        if self.timings:
            timing = {
                "scatter_us": max(0.0, (gather_ended - merge_started) * 1e6),
                "kernel_us": kernel_us,
                "merge_us": max(0.0, (end - gather_ended) * 1e6),
            }
        elapsed_ms = self._finalize(request, end, any_degraded)
        if elapsed_ms is None:
            return
        _deliver(request.future, self._annotate(TopKResponse(
            u=request.u, k=request.k, results=results,
            degraded=any_degraded,
            retries=acquisition.retries if acquisition else 0,
            method=acquisition.engine.method
            if acquisition and any_degraded else self._method,
            elapsed_ms=elapsed_ms,
            tier=acquisition.tier if acquisition and any_degraded else None,
        ), request, **(timing or {})))

    def __repr__(self) -> str:
        status = "closed" if self.closed else (
            "running" if self._pool.started else "cold"
        )
        quarantined = sum(
            1 for breaker in self._breakers
            if breaker.state is not CircuitState.CLOSED
        )
        return (
            f"ShardedRuntime({status}, shards={len(self._clients)}, "
            f"workers_per_shard={self.workers_per_shard}, "
            f"quarantined={quarantined})"
        )
