"""The scheduler's metric families, registered once for the package.

Kept in one module (mirroring :mod:`repro.serve.metrics`) so the queue,
coalescer, worker pool and runtime share children instead of
re-registering, and so ``docs/serving.md`` has one source of truth.

Logical request outcomes still land in the serving layer's
``serve_requests_total`` — the scheduler adds the queueing view on top:
how deep the queue is, how long requests waited, how large the dispatched
micro-batches were, how much merging the coalescer achieved, and how busy
the workers are.
"""

from __future__ import annotations

from repro.obs.registry import DEFAULT_TIME_BUCKETS, get_registry

_REGISTRY = get_registry()

QUEUE_DEPTH = _REGISTRY.gauge(
    "sched_queue_depth",
    help="Requests currently admitted and waiting for dispatch.",
)
QUEUE_WAIT = _REGISTRY.histogram(
    "sched_queue_wait_seconds",
    help="Time each request spent between admission and dispatch.",
    buckets=DEFAULT_TIME_BUCKETS,
)
BATCH_SIZE = _REGISTRY.histogram(
    "sched_batch_size",
    help="Logical requests per dispatched micro-batch.",
    buckets=(1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0),
)
REJECTED = _REGISTRY.counter(
    "sched_rejected_total",
    help="Requests refused by admission control, by reason "
    "(overloaded, closed) — expired-in-queue requests are counted "
    "under sched_expired_total instead.",
    labelnames=("reason",),
)
EXPIRED = _REGISTRY.counter(
    "sched_expired_total",
    help="Admitted requests dropped at dispatch because their deadline "
    "had already passed; each one is answered with DeadlineExceeded, "
    "never silently discarded.",
)
COALESCED = _REGISTRY.counter(
    "sched_coalesced_requests_total",
    help="Single-pair requests merged into a shared same-source "
    "score_batch call (requests dispatched alone are not counted).",
)
WORKERS = _REGISTRY.gauge(
    "sched_workers",
    help="Worker threads the runtime was started with.",
)
WORKERS_BUSY = _REGISTRY.gauge(
    "sched_workers_busy",
    help="Workers currently executing a micro-batch.",
)
WORKER_BUSY_SECONDS = _REGISTRY.counter(
    "sched_worker_busy_seconds_total",
    help="Cumulative seconds workers spent executing micro-batches; "
    "divide by (sched_workers x wall time) for utilization.",
)

# ---------------------------------------------------------------------------
# Multi-process sharding (ShardedRuntime) — the scatter-gather view.
# ---------------------------------------------------------------------------

SHARD_REQUESTS = _REGISTRY.counter(
    "shard_requests_total",
    help="Per-shard operations issued by the router, by outcome "
    "(ok, error, timeout, deadline, quarantined — timeout is a miss of "
    "the shard_timeout liveness bound and feeds the shard's breaker; "
    "deadline means the request's own budget ran out mid-gather, which "
    "does not; quarantined means the shard was skipped and its key "
    "range answered from the fallback engine).",
    labelnames=("shard", "outcome"),
)
SCATTER_FANOUT = _REGISTRY.histogram(
    "shard_scatter_fanout",
    help="Shards touched per scatter-gathered logical request.",
    buckets=(1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 32.0),
)
MERGE_LATENCY = _REGISTRY.histogram(
    "shard_merge_seconds",
    help="Router-side gather+merge time per scatter (from first send "
    "to the merged result, excluding queue wait).",
    buckets=DEFAULT_TIME_BUCKETS,
)
SHARD_WORKERS = _REGISTRY.gauge(
    "shard_workers",
    help="Worker threads serving one shard process, by shard.",
    labelnames=("shard",),
)
STATS_PULLS = _REGISTRY.counter(
    "shard_stats_pulls_total",
    help="Worker-registry snapshot pulls by the router, by outcome "
    "(ok, skipped, error, timeout).  Pull failures never feed the shard "
    "breakers — a slow stats reply says nothing about query health; "
    "skipped means the worker shares the router's process registry "
    "(thread-hosted test seam), whose samples are already counted.",
    labelnames=("outcome",),
)
SHARD_QUARANTINED = _REGISTRY.gauge(
    "shard_quarantined",
    help="1 while the shard's circuit is refusing traffic and its key "
    "range is served degraded from the fallback engine, else 0.",
    labelnames=("shard",),
)
