"""The concurrent serving runtime: queue -> coalescer -> worker pool.

:class:`ServingRuntime` is the scheduling layer between a transport (the
``repro serve`` line protocol, a test harness, a future RPC front) and
the resilient :class:`~repro.serve.QueryService` stack:

* **admission control** — submissions past the queue-depth watermark are
  rejected immediately with :class:`~repro.sched.errors.Overloaded`
  (counted in ``serve_requests_total{outcome="rejected"}``); admitted
  requests whose deadline lapses while queued are answered with
  :class:`~repro.serve.DeadlineExceeded` at dispatch — every admitted
  request gets exactly one answer, never a silent drop;
* **dynamic micro-batching** — a worker popping the queue lingers up to
  ``max_wait_us`` for the batch to fill to ``max_batch``; same-source
  single-pair requests in the batch are merged into **one**
  ``score_batch`` call (bit-identical to scalar ``score`` — the PR 1
  guarantee this scheduler is built on), and cross-source requests ride
  the same micro-batch through the vectorised paths back to back;
* **workers** — plain threads by default (the numpy gathers under
  ``score_batch`` release the GIL) behind the
  :class:`~repro.sched.pool.WorkerPool` factory seam.

Resilience still comes from PR 4: every micro-batch group goes through
``manager.acquire()`` (retries, circuit breaker, degraded fallback), and
every logical response carries the ``degraded`` flag and retry count of
the acquisition that answered it.

The submission API is future-based (``submit_score`` et al. return
:class:`concurrent.futures.Future` resolving to the same
``QueryResponse``/``BatchResponse``/``TopKResponse`` objects
:class:`QueryService` returns); ``score``/``batch``/``top_k`` are the
blocking conveniences.  Scores are **bit-identical** to calling the
engine sequentially, whatever the interleaving — property-tested in
``tests/properties/test_coalescer_identity.py``.
"""

from __future__ import annotations

import time
from concurrent.futures import Future, InvalidStateError
from typing import Callable, Sequence

from repro.errors import NodeNotFoundError
from repro.hin.graph import Node
from repro.obs.logging import get_logger, log_event
from repro.obs.registry import is_enabled
from repro.obs.trace import new_trace_id, span, trace_scope
from repro.sched.errors import Overloaded, RuntimeClosed
from repro.sched.metrics import (
    BATCH_SIZE,
    COALESCED,
    EXPIRED,
    QUEUE_WAIT,
    WORKER_BUSY_SECONDS,
    WORKERS_BUSY,
)
from repro.sched.pool import ThreadFactory, WorkerPool
from repro.sched.queue import AdmissionQueue
from repro.sched.request import (
    KIND_BATCH,
    KIND_SCORE,
    KIND_TOPK,
    DispatchGroup,
    ScheduledRequest,
    plan_groups,
)
from repro.serve.errors import DeadlineExceeded
from repro.serve.metrics import DEGRADED_QUERIES, SERVE_REQUESTS
from repro.serve.service import (
    BatchResponse,
    QueryResponse,
    QueryService,
    TopKResponse,
)

_LOG = get_logger("sched.runtime")
_UNSET = object()


def _deliver(future: Future, result=None, exc: BaseException | None = None) -> None:
    """Complete *future*, tolerating a submitter-side cancel."""
    try:
        if exc is not None:
            future.set_exception(exc)
        else:
            future.set_result(result)
    except InvalidStateError:  # pragma: no cover — cancelled by submitter
        pass


class ServingRuntime:
    """Concurrent scheduler over one :class:`QueryService`.

    Parameters
    ----------
    service:
        The resilient serving stack to dispatch through.
    workers:
        Worker threads pulling micro-batches (>= 1).
    max_batch:
        Most logical requests one worker dispatches per wake-up.
    max_wait_us:
        How long (microseconds) a leader worker lingers for its batch to
        fill once at least one request is in hand.  ``0`` dispatches
        whatever is immediately available — the deterministic-test mode.
    queue_depth:
        Admission watermark: submissions while this many requests are
        queued are rejected with :class:`Overloaded`.
    clock:
        Injectable time source for deadlines, queue-wait accounting and
        the batching window (defaults to the service's clock, so one
        ``VirtualClock`` can drive breaker, deadlines and scheduler).
    autostart:
        Start the workers in the constructor.  Pass ``False`` to submit
        against a cold queue first (deterministic admission tests), then
        call :meth:`start`.
    thread_factory:
        Forwarded to :class:`WorkerPool` — the executor seam.
    timings:
        Annotate every response with its router-assigned ``trace_id``
        and a ``{queue_us, scatter_us, kernel_us, merge_us}`` latency
        breakdown (the ``repro serve --timings`` flag).  Off by default
        so the protocol output stays byte-stable.
    """

    def __init__(
        self,
        service: QueryService,
        *,
        workers: int = 1,
        max_batch: int = 32,
        max_wait_us: float = 0.0,
        queue_depth: int = 1024,
        clock: Callable[[], float] | None = None,
        autostart: bool = True,
        thread_factory: ThreadFactory | None = None,
        timings: bool = False,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch!r}")
        if max_wait_us < 0:
            raise ValueError(f"max_wait_us must be >= 0, got {max_wait_us!r}")
        self.service = service
        self.max_batch = max_batch
        self.max_wait_us = max_wait_us
        self._max_wait = max_wait_us / 1e6
        self._clock = clock if clock is not None else service._clock
        if self._clock is None:  # pragma: no cover — service always has one
            self._clock = time.monotonic
        self.timings = bool(timings)
        self._queue = AdmissionQueue(queue_depth, self._clock)
        self._pool = WorkerPool(
            workers, self._worker_loop, thread_factory=thread_factory
        )
        self._seq = 0
        self._closed = False
        # pre-resolved metric children, mirroring QueryService's rationale
        self._count_ok = SERVE_REQUESTS.labels(outcome="ok")
        self._count_degraded = SERVE_REQUESTS.labels(outcome="degraded")
        self._count_deadline = SERVE_REQUESTS.labels(outcome="deadline_exceeded")
        self._count_error = SERVE_REQUESTS.labels(outcome="error")
        self._count_rejected = SERVE_REQUESTS.labels(outcome="rejected")
        if autostart:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Spawn the worker pool (idempotent)."""
        if self._closed:
            raise RuntimeClosed("cannot start a closed runtime")
        self._pool.start()

    def close(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Stop admission and shut the workers down.

        With ``drain=True`` (the graceful path) every already-admitted
        request is dispatched before the workers exit — by the workers
        themselves, or inline on this thread when the pool was never
        started.  With ``drain=False`` queued requests are completed
        exceptionally with :class:`RuntimeClosed`.  Returns whether every
        worker exited within *timeout*.
        """
        if self._closed:
            return self._pool.join(0.0) if self._pool.started else True
        self._closed = True
        self._queue.close()
        if not drain:
            for request in self._queue.drain_now():
                if is_enabled():
                    self._count_rejected.inc()
                _deliver(
                    request.future,
                    exc=RuntimeClosed("request dropped: runtime closed without drain"),
                )
        elif not self._pool.started:
            # no workers were ever spawned: drain inline so the graceful
            # contract (every admitted request is answered) still holds
            while True:
                batch = self._queue.take(self.max_batch, 0.0)
                if batch is None:
                    break
                self._dispatch(batch)
        joined = self._pool.join(timeout) if self._pool.started else True
        log_event(
            _LOG, "sched.closed",
            drained=drain, workers_exited=joined,
        )
        return joined

    def drain(self, timeout: float | None = None) -> bool:
        """Graceful shutdown: finish everything admitted, then stop."""
        return self.close(drain=True, timeout=timeout)

    def __enter__(self) -> "ServingRuntime":
        self.start()
        return self

    def __exit__(self, *_exc_info) -> None:
        self.close(drain=True)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def queue_depth(self) -> int:
        """Requests currently admitted and waiting."""
        return len(self._queue)

    def health(self) -> dict:
        """The service's health snapshot plus the scheduler's view."""
        payload = self.service.health()
        payload.update(
            workers=self._pool.num_workers,
            workers_alive=self._pool.alive,
            queue_depth=len(self._queue),
            queue_watermark=self._queue.watermark,
            max_batch=self.max_batch,
            max_wait_us=self.max_wait_us,
            runtime_closed=self._closed,
        )
        return payload

    # ------------------------------------------------------------------
    # Live mutations
    # ------------------------------------------------------------------
    def apply_mutations(self, mutations) -> dict:
        """Synchronously apply *mutations* through the manager's swap path.

        Runs on the caller's thread (the serve protocol applies mutations
        in submission order, so queries submitted after a mutation line are
        guaranteed to see the new generation); queries already in flight
        keep the acquisition they grabbed and finish against the old
        generation — every request is answered exactly once, from one
        consistent generation.
        """
        if self._closed:
            raise RuntimeClosed("runtime is closed")
        return self.service.manager.apply_mutations(mutations)

    # ------------------------------------------------------------------
    # Submission (admission control happens here)
    # ------------------------------------------------------------------
    def _admit(self, request: ScheduledRequest) -> Future:
        try:
            self._queue.offer(request)
        except (Overloaded, RuntimeClosed):
            if is_enabled():
                self._count_rejected.inc()
            raise
        return request.future

    def _new_request(self, kind: str, u: Node, deadline_ms, **fields) -> ScheduledRequest:
        if deadline_ms is _UNSET:
            deadline_ms = self.service.deadline_ms
        now = self._clock()
        deadline = None if deadline_ms is None else now + deadline_ms / 1000.0
        self._seq += 1
        return ScheduledRequest(
            kind=kind, u=u, seq=self._seq, enqueued_at=now,
            deadline=deadline, deadline_ms=deadline_ms,
            trace_id=new_trace_id(), **fields,
        )

    def submit_score(self, u: Node, v: Node, *, deadline_ms=_UNSET) -> Future:
        """Admit one pair query; resolves to a :class:`QueryResponse`."""
        return self._admit(self._new_request(KIND_SCORE, u, deadline_ms, v=v))

    def submit_batch(
        self, u: Node, candidates: Sequence[Node], *, deadline_ms=_UNSET
    ) -> Future:
        """Admit one single-source batch; resolves to a :class:`BatchResponse`."""
        return self._admit(self._new_request(
            KIND_BATCH, u, deadline_ms, candidates=tuple(candidates),
        ))

    def submit_topk(
        self,
        u: Node,
        k: int,
        candidates: Sequence[Node] | None = None,
        *,
        batch_size: int | None = None,
        deadline_ms=_UNSET,
    ) -> Future:
        """Admit one top-k search; resolves to a :class:`TopKResponse`."""
        return self._admit(self._new_request(
            KIND_TOPK, u, deadline_ms,
            candidates=tuple(candidates) if candidates is not None else None,
            k=k, batch_size=batch_size,
        ))

    # Blocking conveniences (submit + wait) -----------------------------
    def score(self, u: Node, v: Node, *, deadline_ms=_UNSET) -> QueryResponse:
        return self.submit_score(u, v, deadline_ms=deadline_ms).result()

    def batch(
        self, u: Node, candidates: Sequence[Node], *, deadline_ms=_UNSET
    ) -> BatchResponse:
        return self.submit_batch(u, candidates, deadline_ms=deadline_ms).result()

    def top_k(
        self,
        u: Node,
        k: int,
        candidates: Sequence[Node] | None = None,
        *,
        batch_size: int | None = None,
        deadline_ms=_UNSET,
    ) -> TopKResponse:
        return self.submit_topk(
            u, k, candidates, batch_size=batch_size, deadline_ms=deadline_ms,
        ).result()

    # ------------------------------------------------------------------
    # Dispatch (runs on workers)
    # ------------------------------------------------------------------
    def _worker_loop(self, _index: int) -> None:
        queue = self._queue
        while True:
            batch = queue.take(self.max_batch, self._max_wait)
            if batch is None:
                return
            recording = is_enabled()
            if recording:
                WORKERS_BUSY.inc()
            started = self._clock()
            try:
                self._dispatch(batch)
            finally:
                ended = self._clock()
                if recording:
                    WORKERS_BUSY.dec()
                    WORKER_BUSY_SECONDS.inc(max(0.0, ended - started))

    def _dispatch(self, batch: list[ScheduledRequest]) -> None:
        """Answer one popped micro-batch; never lets an exception escape."""
        now = self._clock()
        recording = is_enabled()
        if recording:
            BATCH_SIZE.observe(len(batch))
            QUEUE_WAIT.observe_many(
                [max(0.0, now - request.enqueued_at) for request in batch]
            )
        live: list[ScheduledRequest] = []
        for request in batch:
            request.dispatched_at = now
            if request.expired(now):
                # deadline-aware drop: answered, counted, never silent
                if recording:
                    EXPIRED.inc()
                self._finish_deadline(request, now)
            else:
                live.append(request)
        for group in plan_groups(live):
            try:
                # One group is one engine/scatter call, so it runs under
                # ONE trace: the group leader's.  Coalesced followers'
                # responses point at the same tree — the scatter that
                # actually answered them.
                with trace_scope(group.requests[0].trace_id):
                    with span(
                        "sched.dispatch",
                        labels={"kind": group.kind},
                        requests=len(group.requests),
                    ):
                        self._execute_group(group)
            except BaseException as exc:  # noqa: BLE001 — worker must survive
                for request in group.requests:
                    if not request.future.done():
                        self._finish_error(request, exc)

    def _execute_group(self, group: DispatchGroup) -> None:
        acquisition = self.service.manager.acquire()
        engine = acquisition.engine
        graph = engine.graph
        if group.u not in graph:
            exc = NodeNotFoundError(group.u)
            for request in group.requests:
                self._finish_error(request, exc)
            return
        if group.kind == KIND_SCORE:
            self._execute_score_group(group, acquisition, engine, graph)
        elif group.kind == KIND_BATCH:
            self._execute_batch(group.requests[0], acquisition, engine, graph)
        elif group.kind == KIND_TOPK:
            self._execute_topk(group.requests[0], acquisition, engine)
        else:  # pragma: no cover — submission API cannot build other kinds
            raise ValueError(f"unknown request kind {group.kind!r}")

    def _execute_score_group(self, group, acquisition, engine, graph) -> None:
        live: list[ScheduledRequest] = []
        for request in group.requests:
            if request.v not in graph:
                self._finish_error(request, NodeNotFoundError(request.v))
            else:
                live.append(request)
        if not live:
            return
        kernel_started = self._clock() if self.timings else 0.0
        if len(live) == 1:
            values = (engine.score(live[0].u, live[0].v),)
        else:
            # the coalesced path: one vectorised call answers every row,
            # bit-identical to per-pair score() (the PR 1 guarantee)
            values = engine.score_batch(group.u, [r.v for r in live])
            if is_enabled():
                COALESCED.inc(len(live))
        end = self._clock()
        kernel_us = (end - kernel_started) * 1e6 if self.timings else 0.0
        trace_id = group.requests[0].trace_id
        method = engine.method
        degraded = acquisition.degraded
        answered = 0
        for request, value in zip(live, values):
            # outcome counters are bumped once per group below, so the
            # per-request loop stays free of registry traffic
            elapsed_ms = self._finalize(request, end, degraded, count=False)
            if elapsed_ms is None:
                continue
            answered += 1
            _deliver(request.future, self._annotate(QueryResponse(
                request.u, request.v, float(value), degraded,
                acquisition.retries, method, elapsed_ms,
                tier=acquisition.tier if degraded else None,
            ), request, trace_id, kernel_us=kernel_us))
        if answered and is_enabled():
            if degraded:
                DEGRADED_QUERIES.inc(answered)
                self._count_degraded.inc(answered)
            else:
                self._count_ok.inc(answered)

    def _execute_batch(self, request, acquisition, engine, graph) -> None:
        missing = next(
            (c for c in request.candidates if c not in graph), None
        )
        if missing is not None:
            self._finish_error(request, NodeNotFoundError(missing))
            return
        kernel_started = self._clock() if self.timings else 0.0
        values = engine.score_batch(request.u, list(request.candidates))
        end = self._clock()
        elapsed_ms = self._finalize(request, end, acquisition.degraded)
        if elapsed_ms is None:
            return
        _deliver(request.future, self._annotate(BatchResponse(
            u=request.u, candidates=request.candidates, values=values,
            degraded=acquisition.degraded, retries=acquisition.retries,
            method=engine.method, elapsed_ms=elapsed_ms,
            tier=acquisition.tier if acquisition.degraded else None,
        ), request, kernel_us=(end - kernel_started) * 1e6 if self.timings else 0.0))

    def _execute_topk(self, request, acquisition, engine) -> None:
        kwargs = {}
        if request.batch_size is not None:
            kwargs["batch_size"] = request.batch_size
        kernel_started = self._clock() if self.timings else 0.0
        results = engine.top_k(
            request.u, request.k,
            candidates=list(request.candidates) if request.candidates is not None else None,
            **kwargs,
        )
        end = self._clock()
        elapsed_ms = self._finalize(request, end, acquisition.degraded)
        if elapsed_ms is None:
            return
        _deliver(request.future, self._annotate(TopKResponse(
            u=request.u, k=request.k, results=tuple(results),
            degraded=acquisition.degraded, retries=acquisition.retries,
            method=engine.method, elapsed_ms=elapsed_ms,
            tier=acquisition.tier if acquisition.degraded else None,
        ), request, kernel_us=(end - kernel_started) * 1e6 if self.timings else 0.0))

    def _annotate(
        self,
        response,
        request: ScheduledRequest,
        trace_id: str | None = None,
        *,
        kernel_us: float = 0.0,
        scatter_us: float = 0.0,
        merge_us: float = 0.0,
    ):
        """Attach trace id + latency breakdown in ``--timings`` mode.

        No-op otherwise, keeping protocol output byte-stable.  *trace_id*
        is the **execution** trace — for a coalesced group the leader's,
        i.e. the dispatch that actually answered this request; it
        defaults to the request's own id for singleton groups.
        """
        if not self.timings:
            return response
        response.trace_id = trace_id if trace_id is not None else request.trace_id
        queue_us = 0.0
        if request.dispatched_at is not None:
            queue_us = max(
                0.0, (request.dispatched_at - request.enqueued_at) * 1e6
            )
        response.timings = {
            "queue_us": queue_us,
            "scatter_us": scatter_us,
            "kernel_us": kernel_us,
            "merge_us": merge_us,
        }
        return response

    # ------------------------------------------------------------------
    # Completion accounting
    # ------------------------------------------------------------------
    def _finalize(
        self,
        request: ScheduledRequest,
        end: float,
        degraded: bool,
        count: bool = True,
    ) -> float | None:
        """Outcome accounting shared by every kind.

        Returns the request's elapsed milliseconds (admission to now,
        queue wait included — the number the deadline is judged against),
        or ``None`` after answering a blown deadline.  *degraded* is the
        acquisition's flag, so the counter always matches the flag the
        response carries even if a rebuild lands mid-batch.  With
        ``count=False`` the ok/degraded counters are left to the caller
        (the coalesced score path bumps them once per group); blown
        deadlines are always counted here.
        """
        elapsed_ms = max(0.0, (end - request.enqueued_at) * 1000.0)
        if request.deadline is not None and end > request.deadline:
            if is_enabled():
                self._count_deadline.inc()
            _deliver(request.future, exc=DeadlineExceeded(
                request.deadline_ms, elapsed_ms,
            ))
            return None
        if count and is_enabled():
            if degraded:
                DEGRADED_QUERIES.inc()
                self._count_degraded.inc()
            else:
                self._count_ok.inc()
        return elapsed_ms

    def _finish_deadline(self, request: ScheduledRequest, now: float) -> None:
        elapsed_ms = max(0.0, (now - request.enqueued_at) * 1000.0)
        if is_enabled():
            self._count_deadline.inc()
        _deliver(request.future, exc=DeadlineExceeded(
            request.deadline_ms, elapsed_ms,
        ))

    def _finish_error(self, request: ScheduledRequest, exc: BaseException) -> None:
        if is_enabled():
            self._count_error.inc()
        _deliver(request.future, exc=exc)

    def __repr__(self) -> str:
        status = "closed" if self._closed else (
            "running" if self._pool.started else "cold"
        )
        return (
            f"ServingRuntime({status}, workers={self._pool.num_workers}, "
            f"queue={len(self._queue)}/{self._queue.watermark}, "
            f"max_batch={self.max_batch}, max_wait_us={self.max_wait_us})"
        )
