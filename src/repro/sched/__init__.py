"""Concurrent serving runtime: admission control, micro-batching, workers.

The ``repro.sched`` package turns the request/response serving stack of
:mod:`repro.serve` into a concurrent runtime:

* :class:`AdmissionQueue` — bounded FIFO; overload is answered at
  submission time with :class:`Overloaded`, never by silent drops.
* :func:`plan_groups` — the coalescer: same-source single-pair requests
  in a micro-batch merge into one vectorised ``score_batch`` call
  (bit-identical to scalar ``score`` — the PR 1 guarantee).
* :class:`WorkerPool` — N dispatch threads (numpy releases the GIL)
  behind a pluggable thread factory.
* :class:`ServingRuntime` — ties the three together over one
  :class:`~repro.serve.QueryService`; PR 4's retries, circuit breaking
  and degraded fallback still apply to every logical request.

See ``docs/serving.md`` ("Concurrency") for the architecture diagram and
tuning guidance.
"""

from repro.sched.errors import Overloaded, RuntimeClosed
from repro.sched.pool import ThreadFactory, WorkerPool
from repro.sched.queue import AdmissionQueue
from repro.sched.request import (
    KIND_BATCH,
    KIND_SCORE,
    KIND_TOPK,
    DispatchGroup,
    ScheduledRequest,
    plan_groups,
)
from repro.sched.runtime import ServingRuntime

__all__ = [
    "AdmissionQueue",
    "DispatchGroup",
    "KIND_BATCH",
    "KIND_SCORE",
    "KIND_TOPK",
    "Overloaded",
    "RuntimeClosed",
    "ScheduledRequest",
    "ServingRuntime",
    "ThreadFactory",
    "WorkerPool",
    "plan_groups",
]
