"""Concurrent serving runtime: admission control, micro-batching, workers.

The ``repro.sched`` package turns the request/response serving stack of
:mod:`repro.serve` into a concurrent runtime:

* :class:`AdmissionQueue` — bounded FIFO; overload is answered at
  submission time with :class:`Overloaded`, never by silent drops.
* :func:`plan_groups` — the coalescer: same-source single-pair requests
  in a micro-batch merge into one vectorised ``score_batch`` call
  (bit-identical to scalar ``score`` — the PR 1 guarantee).
* :class:`WorkerPool` — N dispatch threads (numpy releases the GIL)
  behind a pluggable thread factory.
* :class:`ServingRuntime` — ties the three together over one
  :class:`~repro.serve.QueryService`; PR 4's retries, circuit breaking
  and degraded fallback still apply to every logical request.
* :class:`ShardedRuntime` — the multi-process layer on top: one worker
  process per node-range shard (see :mod:`repro.store.sharding`),
  scatter-gather routing with a bit-identical top-k merge, and per-shard
  circuit breakers so a failing shard degrades only its key range.

See ``docs/serving.md`` ("Concurrency" and "Multi-process sharding") for
the architecture diagrams and tuning guidance.
"""

from repro.sched.errors import Overloaded, RuntimeClosed
from repro.sched.pool import ThreadFactory, WorkerPool
from repro.sched.queue import AdmissionQueue
from repro.sched.request import (
    KIND_BATCH,
    KIND_SCORE,
    KIND_TOPK,
    DispatchGroup,
    ScheduledRequest,
    plan_groups,
)
from repro.sched.runtime import ServingRuntime
from repro.sched.shard_worker import ShardEngine, SourceRowLRU, shard_worker_main
from repro.sched.sharded import (
    ProcessShardWorker,
    ShardClient,
    ShardedRuntime,
    ShardFailure,
    ThreadShardWorker,
)

__all__ = [
    "AdmissionQueue",
    "DispatchGroup",
    "KIND_BATCH",
    "KIND_SCORE",
    "KIND_TOPK",
    "Overloaded",
    "ProcessShardWorker",
    "RuntimeClosed",
    "ScheduledRequest",
    "ServingRuntime",
    "ShardClient",
    "ShardEngine",
    "ShardFailure",
    "ShardedRuntime",
    "SourceRowLRU",
    "ThreadFactory",
    "ThreadShardWorker",
    "WorkerPool",
    "plan_groups",
    "shard_worker_main",
]
