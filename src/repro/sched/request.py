"""The unit of scheduling: one logical request with its future.

A :class:`ScheduledRequest` is what admission control accepts, the queue
holds, the coalescer groups and a worker answers.  It carries everything
needed to serve the request far from the submitting thread:

* the query itself (*kind* + operands),
* the **absolute deadline** in the runtime's clock domain (computed once
  at submission so queue time counts against the budget),
* the admission timestamp (queue-wait accounting),
* a :class:`concurrent.futures.Future` the submitter holds the other end
  of,
* a monotonically increasing *seq* that makes every schedule decision
  deterministic (FIFO pop order, coalescing group order, tie-breaks), and
* the router-assigned ``trace_id`` stamped at admission — the id every
  span and structured log record emitted for this request carries, all
  the way into the shard worker processes.
"""

from __future__ import annotations

from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Sequence

from repro.hin.graph import Node

#: The request kinds the scheduler understands.
KIND_SCORE = "score"
KIND_BATCH = "batch"
KIND_TOPK = "topk"


@dataclass(slots=True)
class ScheduledRequest:
    """One admitted query plus its scheduling envelope."""

    kind: str
    u: Node
    seq: int
    enqueued_at: float
    v: Node | None = None
    candidates: tuple[Node, ...] | None = None
    k: int | None = None
    batch_size: int | None = None
    deadline: float | None = None       # absolute, runtime clock domain
    deadline_ms: float | None = None    # original budget (error messages)
    trace_id: str | None = None         # assigned at admission
    dispatched_at: float | None = None  # set when a worker pops the batch
    future: Future = field(default_factory=Future)

    def expired(self, now: float) -> bool:
        """Whether the deadline passed before *now* (no deadline: never)."""
        return self.deadline is not None and now > self.deadline

    @property
    def coalesce_key(self) -> tuple[str, Node] | None:
        """Requests sharing a key may merge into one vectorised call.

        Only single-pair ``score`` requests coalesce: two of them with the
        same source node become rows of one ``score_batch`` call (PR 1
        guarantees the batch path is bit-identical to scalar ``score``).
        ``batch`` and ``topk`` requests are already vectorised and
        dispatch as singleton groups.
        """
        if self.kind == KIND_SCORE:
            return (KIND_SCORE, self.u)
        return None


@dataclass(slots=True)
class DispatchGroup:
    """One engine call's worth of coalesced requests.

    For a merged ``score`` group, ``requests[i]`` is answered by row *i*
    of one ``score_batch(u, [r.v ...])`` call; other kinds are singleton
    groups executed as-is.  Groups preserve admission order: requests
    within a group are sorted by *seq*, and groups are dispatched in
    order of their earliest member.
    """

    kind: str
    u: Node
    requests: list[ScheduledRequest]

    @property
    def first_seq(self) -> int:
        return self.requests[0].seq

    def __len__(self) -> int:
        return len(self.requests)


def plan_groups(requests: Sequence[ScheduledRequest]) -> list[DispatchGroup]:
    """Partition one micro-batch into dispatch groups, deterministically.

    Same-source single-pair requests merge (whatever their interleaving
    in the batch — the merge is by key, not adjacency); everything else
    stays a singleton group.  The output order is by each group's first
    admission *seq*, so the same set of requests always produces the same
    dispatch plan regardless of which worker picked them up.
    """
    merged: dict[tuple[str, Node], DispatchGroup] = {}
    groups: list[DispatchGroup] = []
    for request in sorted(requests, key=lambda r: r.seq):
        key = request.coalesce_key
        if key is None:
            groups.append(DispatchGroup(request.kind, request.u, [request]))
            continue
        group = merged.get(key)
        if group is None:
            group = DispatchGroup(request.kind, request.u, [request])
            merged[key] = group
            groups.append(group)
        else:
            group.requests.append(request)
    groups.sort(key=lambda g: g.first_seq)
    return groups
