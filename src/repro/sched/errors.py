"""Scheduler-layer exceptions.

Both derive from :class:`~repro.serve.errors.ServeError`, so callers that
already catch the serving-layer root (the CLI maps it to exit code 2)
handle scheduler rejections without new plumbing.
"""

from __future__ import annotations

from repro.serve.errors import ServeError


class Overloaded(ServeError):
    """Admission control rejected the request: the queue is past its watermark.

    This is the deterministic overload answer — the queue depth at the
    moment of submission exceeded the configured watermark, so the request
    was never admitted.  Rejections are counted in
    ``serve_requests_total{outcome="rejected"}`` and
    ``sched_rejected_total{reason="overloaded"}``; they never kill the
    serve loop.
    """

    def __init__(self, depth: int, watermark: int) -> None:
        super().__init__(
            f"request rejected: queue depth {depth} is at its "
            f"watermark of {watermark}"
        )
        self.depth = depth
        self.watermark = watermark


class RuntimeClosed(ServeError):
    """The serving runtime is draining or closed and admits no new work."""

    def __init__(self, detail: str = "the serving runtime is closed") -> None:
        super().__init__(detail)
