"""The worker pool: N dispatch loops with a pluggable execution seam.

Workers are plain daemon threads by default — the right executor for this
workload, because the hot per-batch work (stacked-walk numpy gathers,
``score_batch`` reductions) releases the GIL — but the *thread_factory*
seam accepts anything with the :class:`threading.Thread` constructor
protocol (``target``, ``name``, ``daemon``), which is where a later
multi-process PR plugs in without touching the runtime.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from repro.obs.registry import is_enabled
from repro.sched.metrics import WORKERS

#: Matches threading.Thread's constructor for the pluggable seam.
ThreadFactory = Callable[..., threading.Thread]


class WorkerPool:
    """Own the lifecycle of ``num_workers`` identical dispatch loops."""

    def __init__(
        self,
        num_workers: int,
        target: Callable[[int], None],
        *,
        name_prefix: str = "repro-sched-worker",
        thread_factory: ThreadFactory | None = None,
    ) -> None:
        if num_workers < 1:
            raise ValueError(f"num_workers must be >= 1, got {num_workers!r}")
        self.num_workers = num_workers
        self._target = target
        self._name_prefix = name_prefix
        self._factory = thread_factory if thread_factory is not None else threading.Thread
        self._threads: list[threading.Thread] = []
        self._started = False

    def start(self) -> None:
        """Spawn the workers (idempotent)."""
        if self._started:
            return
        self._started = True
        if is_enabled():
            WORKERS.set(self.num_workers)
        for index in range(self.num_workers):
            thread = self._factory(
                target=self._target,
                args=(index,),
                name=f"{self._name_prefix}-{index}",
                daemon=True,
            )
            self._threads.append(thread)
            thread.start()

    def join(self, timeout: float | None = None) -> bool:
        """Wait for every worker to exit; returns whether all did.

        *timeout* bounds the whole join, not each thread.
        """
        if timeout is None:
            for thread in self._threads:
                thread.join()
        else:
            end = time.monotonic() + timeout
            for thread in self._threads:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    break
                thread.join(remaining)
        return not self.alive

    @property
    def started(self) -> bool:
        return self._started

    @property
    def alive(self) -> int:
        """How many workers are currently running."""
        return sum(1 for thread in self._threads if thread.is_alive())

    def __repr__(self) -> str:
        status = "started" if self._started else "cold"
        return f"WorkerPool({status}, workers={self.num_workers}, alive={self.alive})"
