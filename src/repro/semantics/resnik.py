"""Resnik's IC similarity, normalised to satisfy the SemSim axioms.

Resnik [32] scores a pair by the information content of its most informative
common ancestor: ``res(u, v) = IC(MICA(u, v))``.  Raw Resnik violates the
maximum-self-similarity axiom (``res(u, u) = IC(u)``, not 1), so — as the
paper prescribes for measures that miss an axiom — we normalise:

    ``sem(u, v) = IC(MICA(u, v)) / max(IC(u), IC(v))``  for ``u != v``

which pins self-similarity at 1, keeps symmetry, and stays in ``(0, 1]``
because the MICA's IC is positive and never exceeds either argument's IC
under any monotone IC assignment.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.errors import ConfigurationError
from repro.semantics.cache import CachedMeasure
from repro.semantics.lin import DEFAULT_FLOOR
from repro.taxonomy.ic import seco_information_content
from repro.taxonomy.lca import most_informative_common_ancestor
from repro.taxonomy.taxonomy import Concept, Taxonomy


class ResnikMeasure:
    """Normalised Resnik similarity over a taxonomy."""

    def __init__(
        self,
        taxonomy: Taxonomy,
        ic: Mapping[Concept, float] | None = None,
        floor: float = DEFAULT_FLOOR,
    ) -> None:
        if not 0 < floor < 1:
            raise ConfigurationError(f"floor must lie in (0, 1), got {floor!r}")
        self.taxonomy = taxonomy
        self.ic = dict(ic) if ic is not None else seco_information_content(taxonomy)
        self.floor = float(floor)
        self._memo = CachedMeasure(self._compute)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return normalised Resnik similarity, clamped into ``[floor, 1]``."""
        return self._memo.similarity(a, b)

    def _compute(self, a: Concept, b: Concept) -> float:
        if a not in self.taxonomy or b not in self.taxonomy:
            return self.floor
        ancestor = most_informative_common_ancestor(self.taxonomy, self.ic, a, b)
        if ancestor is None:
            return self.floor
        score = self.ic[ancestor] / max(self.ic[a], self.ic[b])
        return min(1.0, max(self.floor, score))

    def __repr__(self) -> str:
        return f"ResnikMeasure(concepts={len(self.taxonomy)}, floor={self.floor})"
