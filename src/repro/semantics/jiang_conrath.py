"""Jiang-Conrath similarity.

Jiang & Conrath define a *distance* ``d(u, v) = IC(u) + IC(v) -
2 * IC(MICA(u, v))``; we convert it to a similarity via the standard
``1 / (1 + d)`` transform, which satisfies all three SemSim axioms out of
the box: it is symmetric, equals 1 exactly when the distance is 0 (``u ==
v``), and stays strictly positive because the distance is finite.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.semantics.cache import CachedMeasure
from repro.taxonomy.ic import seco_information_content
from repro.taxonomy.lca import most_informative_common_ancestor
from repro.taxonomy.taxonomy import Concept, Taxonomy


class JiangConrathMeasure:
    """``1 / (1 + jc_distance)`` over a taxonomy.

    Pairs with no common ancestor are treated as maximally distant for the
    given IC table (distance ``IC(u) + IC(v)``, i.e. ``IC(MICA) = 0``).
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        ic: Mapping[Concept, float] | None = None,
    ) -> None:
        self.taxonomy = taxonomy
        self.ic = dict(ic) if ic is not None else seco_information_content(taxonomy)
        self._memo = CachedMeasure(self._jc_similarity)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return JC similarity in ``(0, 1]``."""
        return self._memo.similarity(a, b)

    def _jc_similarity(self, a: Concept, b: Concept) -> float:
        return 1.0 / (1.0 + self._distance(a, b))

    def _distance(self, a: Concept, b: Concept) -> float:
        if a not in self.taxonomy or b not in self.taxonomy:
            return 2.0  # maximum possible with IC values in (0, 1]
        ancestor = most_informative_common_ancestor(self.taxonomy, self.ic, a, b)
        shared = self.ic[ancestor] if ancestor is not None else 0.0
        return max(0.0, self.ic[a] + self.ic[b] - 2.0 * shared)

    def __repr__(self) -> str:
        return f"JiangConrathMeasure(concepts={len(self.taxonomy)})"
