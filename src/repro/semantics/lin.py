"""Lin's information-theoretic similarity (the paper's measure of choice).

    ``Lin(u, v) = 2 * IC(LCA(u, v)) / (IC(u) + IC(v))``

The measure reads as the ratio between the information shared by two
concepts (their most informative common ancestor) and the information needed
to describe them individually.  With IC values in ``(0, 1]`` (see
:mod:`repro.taxonomy.ic`) Lin satisfies all three SemSim axioms.

Concepts with no common ancestor — or nodes missing from the taxonomy
altogether — score the configurable *floor* (the paper normalises scores
into ``[0 + eps, 1]`` for exactly this reason; strictly-zero values would
break the range axiom).
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.errors import ConfigurationError, TaxonomyError
from repro.semantics.cache import CachedMeasure
from repro.taxonomy.ic import seco_information_content
from repro.taxonomy.lca import TreeLCA, most_informative_common_ancestor
from repro.taxonomy.taxonomy import Concept, Taxonomy

#: Default similarity assigned to pairs with no shared ancestor.
DEFAULT_FLOOR = 1e-4


class LinMeasure:
    """Lin similarity over a taxonomy with pluggable IC values.

    Parameters
    ----------
    taxonomy:
        The concept hierarchy (tree or DAG).
    ic:
        Optional explicit IC table with values in ``(0, 1]``.  When omitted
        the adapted-Seco intrinsic IC is computed from the taxonomy itself.
    floor:
        Similarity assigned when two concepts share no ancestor or a node is
        unknown; must lie in ``(0, 1)`` to preserve the range axiom.

    Queries are O(1) on tree taxonomies (Euler-tour LCA, per the paper's use
    of Harel-Tarjan [11]) and O(ancestors) on DAGs, both after linear-time
    preprocessing.  A small memo cache makes repeated pair queries — the
    access pattern of every SemSim engine — effectively constant either way.
    """

    def __init__(
        self,
        taxonomy: Taxonomy,
        ic: Mapping[Concept, float] | None = None,
        floor: float = DEFAULT_FLOOR,
    ) -> None:
        if not 0 < floor < 1:
            raise ConfigurationError(f"floor must lie in (0, 1), got {floor!r}")
        self.taxonomy = taxonomy
        self.ic = dict(ic) if ic is not None else seco_information_content(taxonomy)
        for concept, value in self.ic.items():
            if not 0 < value <= 1:
                raise ConfigurationError(
                    f"IC of {concept!r} must lie in (0, 1] for Lin, got {value!r}"
                )
        self.floor = float(floor)
        self._tree_lca: TreeLCA | None = None
        if taxonomy.is_tree() and len(taxonomy) > 1:
            try:
                self._tree_lca = TreeLCA(taxonomy)
            except TaxonomyError:  # pragma: no cover - is_tree() already vetted
                self._tree_lca = None
        self._memo = CachedMeasure(self._compute)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return ``Lin(a, b)`` clamped into ``[floor, 1]``."""
        return self._memo.similarity(a, b)

    def lowest_common_ancestor(self, a: Concept, b: Concept) -> Concept | None:
        """Return the LCA used for the pair (``None`` if disjoint)."""
        if a not in self.taxonomy or b not in self.taxonomy:
            return None
        if self._tree_lca is not None:
            return self._tree_lca.query(a, b)
        return most_informative_common_ancestor(self.taxonomy, self.ic, a, b)

    def _compute(self, a: Concept, b: Concept) -> float:
        if a not in self.taxonomy or b not in self.taxonomy:
            return self.floor
        ancestor = self.lowest_common_ancestor(a, b)
        if ancestor is None:
            return self.floor
        denominator = self.ic[a] + self.ic[b]
        score = 2.0 * self.ic[ancestor] / denominator
        return min(1.0, max(self.floor, score))

    def __repr__(self) -> str:
        return f"LinMeasure(concepts={len(self.taxonomy)}, floor={self.floor})"
