"""Edge-counting semantic measures (Rada path, Wu-Palmer, Leacock-Chodorow).

The Related Work (Section 6) lists edge-counting measures [31] as the second
family usable inside SemSim.  All three classics here measure taxonomic
distance as hops through a common ancestor:

* **Rada path**: ``1 / (1 + dist(u, v))``;
* **Wu-Palmer**: ``2 * d(lca) / (d(u) + d(v))`` with depths counted from 1
  at the root so the score stays strictly positive;
* **Leacock-Chodorow**: ``-log((dist + 1) / (2 * D))`` normalised by its own
  maximum, with ``D`` the taxonomy depth.

Distances are computed as ``min`` over common ancestors of the summed upward
hop counts, which equals the undirected shortest path through ``is-a`` edges
on a tree and generalises it on a DAG.
"""

from __future__ import annotations

import math
from typing import Hashable

from repro.errors import ConfigurationError
from repro.semantics.lin import DEFAULT_FLOOR
from repro.taxonomy.taxonomy import Concept, Taxonomy


class _TaxonomicDistance:
    """Shared machinery: upward hop counts and through-ancestor distances."""

    def __init__(self, taxonomy: Taxonomy) -> None:
        self.taxonomy = taxonomy
        self._up_cache: dict[Concept, dict[Concept, int]] = {}

    def up_distances(self, concept: Concept) -> dict[Concept, int]:
        """Return min hop counts from *concept* to each of its ancestors."""
        cached = self._up_cache.get(concept)
        if cached is not None:
            return cached
        distances: dict[Concept, int] = {concept: 0}
        frontier = [concept]
        while frontier:
            next_frontier: list[Concept] = []
            for node in frontier:
                step = distances[node] + 1
                for parent in self.taxonomy.parents(node):
                    if parent not in distances or step < distances[parent]:
                        distances[parent] = step
                        next_frontier.append(parent)
            frontier = next_frontier
        self._up_cache[concept] = distances
        return distances

    def distance(self, a: Concept, b: Concept) -> tuple[int, Concept] | None:
        """Return ``(shortest through-ancestor distance, witness ancestor)``.

        ``None`` when the concepts share no ancestor.
        """
        if a not in self.taxonomy or b not in self.taxonomy:
            return None
        up_a = self.up_distances(a)
        up_b = self.up_distances(b)
        best: tuple[int, Concept] | None = None
        for ancestor, hops_a in up_a.items():
            hops_b = up_b.get(ancestor)
            if hops_b is None:
                continue
            total = hops_a + hops_b
            if best is None or total < best[0]:
                best = (total, ancestor)
        return best


class RadaPathMeasure:
    """``1 / (1 + dist)`` path similarity with a positive floor."""

    def __init__(self, taxonomy: Taxonomy, floor: float = DEFAULT_FLOOR) -> None:
        if not 0 < floor < 1:
            raise ConfigurationError(f"floor must lie in (0, 1), got {floor!r}")
        self.floor = float(floor)
        self._distance = _TaxonomicDistance(taxonomy)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return Rada path similarity in ``[floor, 1]``."""
        if a == b:
            return 1.0
        found = self._distance.distance(a, b)
        if found is None:
            return self.floor
        return max(self.floor, 1.0 / (1.0 + found[0]))

    def __repr__(self) -> str:
        return f"RadaPathMeasure(concepts={len(self._distance.taxonomy)})"


class WuPalmerMeasure:
    """Wu-Palmer conceptual similarity with 1-based depths."""

    def __init__(self, taxonomy: Taxonomy, floor: float = DEFAULT_FLOOR) -> None:
        if not 0 < floor < 1:
            raise ConfigurationError(f"floor must lie in (0, 1), got {floor!r}")
        self.taxonomy = taxonomy
        self.floor = float(floor)
        self._distance = _TaxonomicDistance(taxonomy)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return Wu-Palmer similarity in ``[floor, 1]``."""
        if a == b:
            return 1.0
        found = self._distance.distance(a, b)
        if found is None:
            return self.floor
        _, ancestor = found
        # 1-based depths keep the score strictly positive even at the root.
        depth_lca = self.taxonomy.depth(ancestor) + 1
        depth_a = self.taxonomy.depth(a) + 1
        depth_b = self.taxonomy.depth(b) + 1
        score = 2.0 * depth_lca / (depth_a + depth_b)
        return min(1.0, max(self.floor, score))

    def __repr__(self) -> str:
        return f"WuPalmerMeasure(concepts={len(self.taxonomy)})"


class LeacockChodorowMeasure:
    """Leacock-Chodorow log-distance similarity, normalised into ``(0, 1]``."""

    def __init__(self, taxonomy: Taxonomy, floor: float = DEFAULT_FLOOR) -> None:
        if not 0 < floor < 1:
            raise ConfigurationError(f"floor must lie in (0, 1), got {floor!r}")
        self.taxonomy = taxonomy
        self.floor = float(floor)
        self._distance = _TaxonomicDistance(taxonomy)
        # +1 guards the degenerate root-only taxonomy (max_depth == 0).
        self._scale = 2.0 * (taxonomy.max_depth() + 1)
        self._peak = math.log(self._scale)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return normalised Leacock-Chodorow similarity in ``[floor, 1]``."""
        if a == b:
            return 1.0
        found = self._distance.distance(a, b)
        if found is None:
            return self.floor
        raw = -math.log((found[0] + 1) / self._scale)
        score = raw / self._peak
        return min(1.0, max(self.floor, score))

    def __repr__(self) -> str:
        return f"LeacockChodorowMeasure(concepts={len(self.taxonomy)})"
