"""Caching wrappers around semantic measures.

The paper assumes single-pair semantic scores cost O(1) "possibly after
pre-processing, without materialising the n x n matrix of scores"
(Section 2.3).  :class:`CachedMeasure` provides the lazy variant (memoise on
first touch); :class:`MatrixMeasure` provides the eager variant for small
node sets where a dense numpy matrix is the fastest representation — it is
what the vectorised iterative engines consume.
"""

from __future__ import annotations

import threading
from typing import Hashable, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.semantics.base import SemanticMeasure, semantic_matrix

Node = Hashable


class CachedMeasure:
    """Memoising decorator around any :class:`SemanticMeasure`.

    Unordered pairs are cached under a canonical key, so the wrapper also
    enforces symmetry of responses even for an inner measure with asymmetric
    floating-point noise.  *inner* may be a measure object or a bare
    ``f(a, b) -> float`` callable — the latter lets taxonomy measures reuse
    this memo for their own pair computation instead of hand-rolling one.

    The memo is safe to share across serving workers: misses compute
    outside the lock (two racing threads may both evaluate the same pair),
    but insertion goes through a locked ``setdefault``, so exactly one
    value becomes canonical and every caller returns it — the memo dict is
    never mutated concurrently with another mutation.
    """

    def __init__(self, inner: SemanticMeasure) -> None:
        self.inner = inner
        self._similarity = (
            inner.similarity if hasattr(inner, "similarity") else inner
        )
        self._cache: dict[tuple[Node, Node], float] = {}
        self._lock = threading.Lock()

    def similarity(self, a: Node, b: Node) -> float:
        """Return the cached ``sem(a, b)``."""
        if a == b:
            return 1.0
        key = (a, b) if repr(a) <= repr(b) else (b, a)
        cached = self._cache.get(key)
        if cached is None:
            value = self._similarity(*key)
            with self._lock:
                cached = self._cache.setdefault(key, value)
        return cached

    @property
    def cache_size(self) -> int:
        """Number of distinct pairs evaluated so far."""
        return len(self._cache)

    def __repr__(self) -> str:
        return f"CachedMeasure({self.inner!r}, cached={self.cache_size})"


class MatrixMeasure:
    """A measure backed by a fully materialised similarity matrix.

    Build one with :meth:`from_measure` (evaluates ``n*(n-1)/2`` pairs once)
    or directly from a precomputed symmetric matrix.  Lookups are two dict
    hits and one array read.
    """

    def __init__(self, nodes: Sequence[Node], matrix: np.ndarray) -> None:
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.shape != (len(nodes), len(nodes)):
            raise ValueError(
                f"matrix shape {matrix.shape} does not match {len(nodes)} nodes"
            )
        self.nodes = list(nodes)
        self.matrix = matrix
        self._position = {node: i for i, node in enumerate(self.nodes)}

    @classmethod
    def from_measure(cls, measure: SemanticMeasure, nodes: Sequence[Node]) -> "MatrixMeasure":
        """Materialise *measure* over *nodes*."""
        return cls(nodes, semantic_matrix(measure, nodes))

    def similarity(self, a: Node, b: Node) -> float:
        """Return the precomputed ``sem(a, b)``."""
        try:
            return float(self.matrix[self._position[a], self._position[b]])
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None

    def similarities(self, a: Node, others: Sequence[Node]) -> np.ndarray:
        """Return ``sem(a, v)`` for every ``v`` in *others* as one gather.

        The values are the same matrix elements :meth:`similarity` reads
        one by one, so downstream float comparisons are unchanged.
        """
        try:
            row = self.matrix[self._position[a]]
            cols = np.fromiter(
                (self._position[v] for v in others),
                dtype=np.intp,
                count=len(others),
            )
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        return row[cols]

    def block(self, rows: Sequence[Node], cols: Sequence[Node]) -> np.ndarray:
        """Return the ``sem`` submatrix for *rows* x *cols*."""
        try:
            r = np.fromiter(
                (self._position[v] for v in rows), dtype=np.intp, count=len(rows)
            )
            c = np.fromiter(
                (self._position[v] for v in cols), dtype=np.intp, count=len(cols)
            )
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None
        return self.matrix[np.ix_(r, c)]

    def __repr__(self) -> str:
        return f"MatrixMeasure(nodes={len(self.nodes)})"
