"""Pluggable semantic similarity measures.

SemSim is modular: any measure satisfying the paper's three axioms
(symmetry, maximum self-similarity, values in ``(0, 1]``) can be injected.
This subpackage provides the measure used in the paper's experiments (Lin)
plus the main alternatives its Related Work discusses: other IC-based
measures (Resnik, Jiang-Conrath) and edge-counting measures (Rada path,
Wu-Palmer, Leacock-Chodorow), along with caching wrappers and an axiom
validator.
"""

from repro.semantics.base import (
    SemanticMeasure,
    semantic_matrix,
    validate_measure,
)
from repro.semantics.constant import ConstantMeasure
from repro.semantics.lin import LinMeasure
from repro.semantics.resnik import ResnikMeasure
from repro.semantics.jiang_conrath import JiangConrathMeasure
from repro.semantics.path_based import (
    LeacockChodorowMeasure,
    RadaPathMeasure,
    WuPalmerMeasure,
)
from repro.semantics.tversky import TverskyMeasure
from repro.semantics.cache import CachedMeasure, MatrixMeasure

__all__ = [
    "SemanticMeasure",
    "semantic_matrix",
    "validate_measure",
    "ConstantMeasure",
    "LinMeasure",
    "ResnikMeasure",
    "JiangConrathMeasure",
    "RadaPathMeasure",
    "WuPalmerMeasure",
    "LeacockChodorowMeasure",
    "TverskyMeasure",
    "CachedMeasure",
    "MatrixMeasure",
]
