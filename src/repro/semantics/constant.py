"""The constant semantic measure.

``ConstantMeasure(1.0)`` makes every pair maximally similar, which collapses
SemSim to *weighted SimRank* (and, on a unit-weight graph, to plain
SimRank).  The test-suite exploits this equivalence heavily, and it is also
the cleanest way to run the paper's machinery when no ontology exists.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigurationError


class ConstantMeasure:
    """``sem(u, u) = 1`` and ``sem(u, v) = value`` for every ``u != v``."""

    def __init__(self, value: float = 1.0) -> None:
        if not 0 < value <= 1:
            raise ConfigurationError(f"constant value must lie in (0, 1], got {value!r}")
        self.value = float(value)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return 1 for identical nodes, the constant otherwise."""
        return 1.0 if a == b else self.value

    def __repr__(self) -> str:
        return f"ConstantMeasure({self.value})"
