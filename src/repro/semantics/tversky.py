"""Tversky feature-contrast similarity (the feature-based family [20, 42]).

The Related Work's third family of semantic measures scores concepts by
overlapping *feature sets*.  With no external corpus available, the
canonical ontology-only instantiation uses each concept's ancestor set as
its features:

    ``sem(a, b) = |F_a ∩ F_b| / (|F_a ∩ F_b| + alpha (|F_a \\ F_b| + |F_b \\ F_a|))``

With a symmetric contrast weight ``alpha`` this satisfies the SemSim
axioms (symmetry, self-similarity 1) after flooring disjoint pairs;
``alpha = 0.5`` recovers the Dice coefficient, ``alpha = 1`` Jaccard.
"""

from __future__ import annotations

from typing import Hashable

from repro.errors import ConfigurationError
from repro.semantics.cache import CachedMeasure
from repro.semantics.lin import DEFAULT_FLOOR
from repro.taxonomy.taxonomy import Concept, Taxonomy


class TverskyMeasure:
    """Ancestor-set feature similarity with symmetric contrast weighting."""

    def __init__(
        self,
        taxonomy: Taxonomy,
        alpha: float = 0.5,
        floor: float = DEFAULT_FLOOR,
    ) -> None:
        if alpha <= 0:
            raise ConfigurationError(f"alpha must be > 0, got {alpha!r}")
        if not 0 < floor < 1:
            raise ConfigurationError(f"floor must lie in (0, 1), got {floor!r}")
        self.taxonomy = taxonomy
        self.alpha = float(alpha)
        self.floor = float(floor)
        self._memo = CachedMeasure(self._compute)

    def similarity(self, a: Hashable, b: Hashable) -> float:
        """Return the Tversky ratio clamped into ``[floor, 1]``."""
        return self._memo.similarity(a, b)

    def _compute(self, a: Concept, b: Concept) -> float:
        if a not in self.taxonomy or b not in self.taxonomy:
            return self.floor
        features_a = self.taxonomy.ancestors(a)
        features_b = self.taxonomy.ancestors(b)
        common = len(features_a & features_b)
        if common == 0:
            return self.floor
        distinct = len(features_a - features_b) + len(features_b - features_a)
        score = common / (common + self.alpha * distinct)
        return min(1.0, max(self.floor, score))

    def __repr__(self) -> str:
        return f"TverskyMeasure(alpha={self.alpha}, concepts={len(self.taxonomy)})"
