"""The semantic-measure protocol and its axiom validator.

Section 2.2 allows *any* function ``sem(u, v)`` inside SemSim provided:

1. **Symmetry**: ``sem(u, v) == sem(v, u)``;
2. **Maximum self similarity**: ``sem(u, u) == 1``;
3. **Fixed value range**: ``sem(u, v) in (0, 1]``.

Measures are plain objects with a ``similarity(u, v) -> float`` method;
:func:`validate_measure` spot-checks the axioms on a node sample and raises
:class:`~repro.errors.MeasureAxiomError` on violation — useful both in tests
and as a guard before long computations.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.errors import MeasureAxiomError

Node = Hashable


@runtime_checkable
class SemanticMeasure(Protocol):
    """Anything with a ``similarity(u, v) -> float`` method."""

    def similarity(self, a: Node, b: Node) -> float:
        """Return ``sem(a, b)``, a value in ``(0, 1]``."""
        ...


def validate_measure(
    measure: SemanticMeasure,
    nodes: Iterable[Node],
    atol: float = 1e-12,
) -> None:
    """Check the three axioms of Section 2.2 on every pair from *nodes*.

    Quadratic in the sample size — pass a representative sample, not a whole
    million-node graph.  Raises :class:`MeasureAxiomError` with a pinpointed
    message on the first violation.
    """
    sample = list(nodes)
    for node in sample:
        self_sim = measure.similarity(node, node)
        if abs(self_sim - 1.0) > atol:
            raise MeasureAxiomError(
                f"maximum self similarity violated: sem({node!r}, {node!r}) = {self_sim!r}"
            )
    for i, a in enumerate(sample):
        for b in sample[i + 1:]:
            forward = measure.similarity(a, b)
            backward = measure.similarity(b, a)
            if abs(forward - backward) > atol:
                raise MeasureAxiomError(
                    f"symmetry violated: sem({a!r}, {b!r}) = {forward!r} but "
                    f"sem({b!r}, {a!r}) = {backward!r}"
                )
            if not 0 < forward <= 1 + atol:
                raise MeasureAxiomError(
                    f"range violated: sem({a!r}, {b!r}) = {forward!r} not in (0, 1]"
                )


def semantic_matrix(measure: SemanticMeasure, nodes: Sequence[Node]) -> np.ndarray:
    """Materialise the symmetric matrix ``S[i, j] = sem(nodes[i], nodes[j])``.

    Used by the vectorised iterative engines; only the upper triangle is
    evaluated, the rest is mirrored, and the diagonal is pinned to 1.
    """
    n = len(nodes)
    matrix = np.ones((n, n), dtype=np.float64)
    for i in range(n):
        for j in range(i + 1, n):
            value = measure.similarity(nodes[i], nodes[j])
            matrix[i, j] = value
            matrix[j, i] = value
    return matrix
