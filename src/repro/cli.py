"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Replay the paper's Figure 1 / Example 2.2 comparison.
``generate``
    Generate one of the synthetic dataset stand-ins and save it as a
    bundle JSON (graph + taxonomy + IC + ground truth).
``query``
    Score one node pair on a saved bundle with SemSim (iterative or
    Monte-Carlo) and SimRank.
``topk``
    Top-k similarity search from a node on a saved bundle.
``info``
    Print a saved bundle's shape and the decay-factor bounds.
``index build``
    Preprocess a bundle once into a self-contained engine artifact
    (and optionally the portable walk-tensor ``.npz``).
``index info``
    Describe a saved engine artifact without loading its arrays.
``index shard``
    Split an mc engine artifact into node-range shard artifacts for
    ``serve --shards`` (multi-process scatter-gather serving).
``backends list``
    Enumerate the registered compute backends (name, availability,
    equivalence contract, description) and mark the default.
``serve``
    Concurrent line-protocol server on stdin/stdout: ``u v``,
    ``BATCH u v1 v2 ...`` or ``TOPK u k [v1 ...]`` per line, one JSON
    response per line in request order.  Requests flow through a bounded
    admission queue (``--queue-depth``; overload answers ``overloaded``
    instead of crashing), are coalesced into vectorised micro-batches
    (``--max-batch`` / ``--max-wait-us``) and served by ``--workers``
    threads — with per-request deadlines (``--deadline-ms``), bounded I/O
    retries (``--max-retries``) and graceful degradation to the iterative
    solver on index loss (responses carry a ``degraded`` flag).
    ``UPDATE u v [weight]`` and ``DELEDGE u v`` mutate the served graph
    live (incremental walk repair + atomic generation swap; rejected with
    ``kind: unsupported`` under ``--shards``).  ``HEALTH`` on a line
    prints the serving health snapshot; EOF, a blank line or Ctrl-C
    drains in-flight requests and exits 0.

``query`` and ``topk`` also accept ``--index`` (serve from a prebuilt
artifact — no preprocessing at all) and ``--cache`` (transparent
content-addressed store: hit-or-build-and-persist).

Observability (see ``docs/observability.md``): ``query``, ``topk`` and
``index build`` take ``--log-json`` (structured JSON logs on stderr),
``--trace-out PATH`` (JSON-lines span traces) and ``--metrics-out PATH``
(dump the metrics registry as JSON when the command finishes; ``-`` means
stdout — except under ``serve``, whose stdout is the protocol stream, so
``-`` routes the dump to stderr there).  ``serve`` additionally takes
``--metrics-port N`` (a live ``/metrics`` + ``/health`` scrape endpoint,
aggregated across shard worker processes) and ``--timings`` (annotate
every response with its ``trace_id`` and a per-request latency
breakdown).  ``metrics dump`` renders the registry on demand in JSON or
Prometheus text format, or scrapes a live server with ``--scrape``.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
from pathlib import Path
from queue import SimpleQueue

from repro.api import QueryEngine
from repro.backends import DEFAULT_BACKEND, available_backends
from repro.core import SemSim, SimRank
from repro.core.decay import decay_contraction_bound, decay_paper_bound
from repro.datasets import (
    aminer_like,
    amazon_like,
    figure1_network,
    wikipedia_like,
    wordnet_like,
)
from repro.datasets.io import load_bundle_json, save_bundle_json
from repro.errors import ConfigurationError, GraphError, InvalidWeightError
from repro.obs.export import render_json, render_prometheus
from repro.obs.http import MetricsServer
from repro.obs.logging import configure_logging
from repro.obs.trace import set_trace_writer
from repro.sched import Overloaded, ServingRuntime, ShardedRuntime
from repro.serve import (
    DeadlineExceeded,
    IndexManager,
    MutationRejectedError,
    QueryService,
    RetryPolicy,
    ServeError,
)
from repro.store import (
    StoreError,
    read_artifact,
    shard_paths_for,
    validate_shard_set,
    write_shard_artifacts,
)

GENERATORS = {
    "aminer": aminer_like,
    "amazon": amazon_like,
    "wikipedia": wikipedia_like,
    "wordnet": wordnet_like,
}


def _cmd_demo(_args: argparse.Namespace) -> int:
    data = figure1_network()
    simrank = SimRank(data.graph, decay=0.8, max_iterations=3, tolerance=0.0)
    semsim = SemSim(data.graph, data.measure, decay=0.8, max_iterations=3, tolerance=0.0)
    print("Figure 1 — who is more similar to Aditi?")
    print(f"  SimRank: John={simrank.similarity('John', 'Aditi'):.4f} "
          f"Bo={simrank.similarity('Bo', 'Aditi'):.4f}  -> picks Bo")
    print(f"  SemSim:  John={semsim.similarity('John', 'Aditi'):.6f} "
          f"Bo={semsim.similarity('Bo', 'Aditi'):.6f}  -> picks John")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = GENERATORS[args.dataset]
    bundle = generator(seed=args.seed)
    save_bundle_json(bundle, args.out)
    print(f"wrote {bundle} -> {args.out}")
    return 0


def _load_bundle_or_fail(path: str):
    try:
        return load_bundle_json(path)
    except FileNotFoundError:
        print(f"error: bundle file not found: {path}", file=sys.stderr)
        raise SystemExit(2) from None


def _resolved_method(args: argparse.Namespace) -> str:
    """``--estimator`` supersedes ``--method`` when given.

    ``--method`` predates the linear/lowrank families and keeps its
    narrow choice list for compatibility; ``--estimator`` names any of
    the four engine families and wins outright when present.
    """
    return args.estimator if args.estimator is not None else args.method


def _make_engine(args: argparse.Namespace, bundle=None) -> QueryEngine:
    """Build (or warm-start) the engine a query/topk invocation asked for.

    ``--index`` wins outright: the artifact is self-contained, so the
    bundle is not even read.  Otherwise the engine is built from the
    bundle, routed through ``--cache`` when given so a second invocation
    with the same inputs memory-maps instead of recomputing.
    """
    if args.index is not None:
        return QueryEngine.open(args.index, backend=args.backend)
    return QueryEngine(
        bundle.graph,
        bundle.measure,
        method=_resolved_method(args),
        decay=args.decay,
        num_walks=args.walks,
        length=args.length,
        theta=args.theta,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        cache_dir=args.cache,
        walks_path=args.walks_file,
        rank=args.rank,
    )


def _require_bundle_arg(args: argparse.Namespace) -> bool:
    if args.index is None and args.bundle is None:
        print("error: a bundle path is required unless --index is given",
              file=sys.stderr)
        return False
    return True


def _cmd_query(args: argparse.Namespace) -> int:
    if not _require_bundle_arg(args):
        return 2
    u, v = args.u, args.v
    if args.index is not None:
        engine = _make_engine(args)
        for node in (u, v):
            if node not in engine.graph:
                print(f"error: node {node!r} is not in the index", file=sys.stderr)
                return 2
        label = "semsim" if engine.measure is not None else "simrank"
        print(f"{label}({u}, {v})  = {engine.score(u, v):.6f}   "
              f"[{engine.method}, from index]")
        return 0
    bundle = _load_bundle_or_fail(args.bundle)
    for node in (u, v):
        if node not in bundle.graph:
            print(f"error: node {node!r} is not in the bundle", file=sys.stderr)
            return 2
    engine = _make_engine(args, bundle)
    value = engine.score(u, v)
    simrank = SimRank(bundle.graph, decay=args.decay)
    print(f"sem({u}, {v})     = {bundle.measure.similarity(u, v):.6f}")
    print(f"semsim({u}, {v})  = {value:.6f}   [{engine.method}]")
    print(f"simrank({u}, {v}) = {simrank.similarity(u, v):.6f}")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    if not _require_bundle_arg(args):
        return 2
    if args.index is not None:
        engine = _make_engine(args)
        candidates = None
    else:
        bundle = _load_bundle_or_fail(args.bundle)
        engine = _make_engine(args, bundle)
        candidates = bundle.entity_nodes
    if args.node not in engine.graph:
        where = "index" if args.index is not None else "bundle"
        print(f"error: node {args.node!r} is not in the {where}", file=sys.stderr)
        return 2
    results = engine.top_k(
        args.node, args.k, candidates=candidates, batch_size=args.batch_size
    )
    print(f"top-{args.k} most similar to {args.node}:")
    for node, score in results:
        print(f"  {node:<24} {score:.6f}")
    return 0


def _cmd_index_build(args: argparse.Namespace) -> int:
    bundle = _load_bundle_or_fail(args.bundle)
    engine = QueryEngine(
        bundle.graph,
        bundle.measure,
        method=_resolved_method(args),
        decay=args.decay,
        num_walks=args.walks,
        length=args.length,
        theta=args.theta,
        seed=args.seed,
        workers=args.workers,
        backend=args.backend,
        rank=args.rank,
        materialize_semantics=True,
    )
    path = engine.save(args.out)
    manifest = json.loads((path / "manifest.json").read_text())
    total = sum(entry["nbytes"] for entry in manifest["arrays"].values())
    print(f"wrote engine artifact -> {path}")
    print(f"  method={engine.method} arrays={len(manifest['arrays'])} "
          f"bytes={total}")
    if args.walks_out is not None:
        engine.save_walks(args.walks_out)
        print(f"wrote walk tensor -> {args.walks_out}")
    return 0


def _cmd_index_shard(args: argparse.Namespace) -> int:
    paths = write_shard_artifacts(args.index, args.out, args.shards)
    print(f"wrote {len(paths)} shard artifacts -> {args.out}")
    for path in paths:
        shard = json.loads((path / "manifest.json").read_text())["shard"]
        print(f"  {path.name}  nodes [{shard['lo']}, {shard['hi']})")
    return 0


def _cmd_index_info(args: argparse.Namespace) -> int:
    artifact = read_artifact(args.index, mmap=True)
    meta = artifact.meta
    params = meta.get("params", {})
    print(f"engine artifact at {artifact.path}")
    print(f"  key:    {artifact.manifest.get('key', '(unkeyed)')}")
    print(f"  method: {params.get('method', '?')}")
    print(f"  graph:  {meta.get('graph_nodes', '?')} nodes, "
          f"{meta.get('graph_edges', '?')} edges")
    print(f"  params: {json.dumps(params, sort_keys=True)}")
    print(f"  arrays ({artifact.nbytes} bytes):")
    for name, entry in sorted(artifact.manifest["arrays"].items()):
        print(f"    {name:<22} {entry['dtype']:<8} "
              f"{'x'.join(map(str, entry['shape'])):<16} {entry['nbytes']}")
    return 0


def _make_service(args: argparse.Namespace) -> QueryService:
    """Assemble the resilient serving stack a ``serve`` invocation asked for."""
    retry = RetryPolicy(max_retries=args.max_retries, seed=args.seed)
    if args.index is not None:
        manager = IndexManager(
            index_path=args.index,
            engine_kwargs=dict(backend=args.backend),
            retry=retry,
        )
    else:
        bundle = _load_bundle_or_fail(args.bundle)
        manager = IndexManager(
            bundle.graph,
            bundle.measure,
            walks_path=args.walks_file,
            cache_dir=args.cache,
            engine_kwargs=dict(
                method=_resolved_method(args),
                decay=args.decay,
                num_walks=args.walks,
                length=args.length,
                theta=args.theta,
                seed=args.seed,
                workers=args.workers,
                backend=args.backend,
                rank=args.rank,
            ),
            retry=retry,
        )
    return QueryService(manager, deadline_ms=args.deadline_ms)


#: Sentinel ending the serve printer thread's queue.
_SERVE_DONE = object()


def _serve_submit(runtime: ServingRuntime, line: str):
    """Turn one protocol line into a queue entry: a future or an error.

    Returns ``("future", Future)`` for admitted requests and
    ``("error", payload)`` for parse failures and admission rejections —
    either way the line gets exactly one response, in order.
    """
    parts = line.split()
    head = parts[0].upper()
    if head in ("UPDATE", "DELEDGE"):
        return _serve_mutate(runtime, head, parts, line)
    try:
        if head == "BATCH":
            if len(parts) < 3:
                return ("error", {
                    "error": f"expected 'BATCH u v1 [v2 ...]', got {line!r}"
                })
            return ("future", runtime.submit_batch(parts[1], parts[2:]))
        if head == "TOPK":
            if len(parts) < 3:
                return ("error", {
                    "error": f"expected 'TOPK u k [v1 ...]', got {line!r}"
                })
            try:
                k = int(parts[2])
            except ValueError:
                return ("error", {
                    "error": f"expected an integer k, got {parts[2]!r}"
                })
            candidates = parts[3:] or None
            return ("future", runtime.submit_topk(parts[1], k, candidates))
        if len(parts) != 2:
            return ("error", {"error": f"expected 'u v', got {line!r}"})
        return ("future", runtime.submit_score(parts[0], parts[1]))
    except Overloaded as exc:
        return ("error", {"error": str(exc), "kind": "overloaded"})
    except ServeError as exc:
        return ("error", {"error": str(exc), "kind": "unavailable"})


def _serve_mutate(runtime: ServingRuntime, head: str, parts: list, line: str):
    """Apply one ``UPDATE``/``DELEDGE`` line through the live-update path.

    Runs synchronously on the reader thread so the swap is published
    before any later line is even parsed — every request after a
    mutation line is guaranteed to be answered from the new generation.
    The rendered acknowledgement still flows through the printer queue,
    keeping the one-response-per-line ordering.
    """
    if head == "UPDATE":
        if len(parts) not in (3, 4):
            return ("error", {
                "error": f"expected 'UPDATE u v [weight]', got {line!r}"
            })
        mutation = ("add_edge", parts[1], parts[2])
        if len(parts) == 4:
            try:
                mutation = ("add_edge", parts[1], parts[2], float(parts[3]))
            except ValueError:
                return ("error", {
                    "error": f"expected a numeric weight, got {parts[3]!r}"
                })
    else:  # DELEDGE
        if len(parts) != 3:
            return ("error", {
                "error": f"expected 'DELEDGE u v', got {line!r}"
            })
        mutation = ("remove_edge", parts[1], parts[2])
    try:
        result = runtime.apply_mutations([mutation])
    except MutationRejectedError as exc:
        return ("error", {"error": str(exc), "kind": "unsupported"})
    except InvalidWeightError as exc:
        return ("error", {"error": str(exc), "kind": "bad_mutation"})
    except GraphError as exc:
        return ("error", {"error": str(exc), "kind": "not_found"})
    except ConfigurationError as exc:
        return ("error", {"error": str(exc), "kind": "bad_mutation"})
    except ServeError as exc:
        return ("error", {"error": str(exc), "kind": "unavailable"})
    except Exception as exc:  # noqa: BLE001 — persist faults must not kill the loop
        return ("error", {"error": str(exc), "kind": "persist_failed"})
    return ("mutation", {
        "mutated": True,
        "kind": mutation[0],
        "applied": result["applied"],
        "resampled": result["resampled"],
        "generation": result["generation"],
        "epoch": result["epoch"],
    })


def _serve_render(entry, runtime: ServingRuntime) -> dict:
    """Resolve one queue entry into its JSON payload (never raises)."""
    kind, payload = entry
    if kind == "health":
        return runtime.health()
    if kind in ("error", "mutation"):
        return payload
    try:
        return payload.result().as_dict()
    except DeadlineExceeded as exc:
        return {"error": str(exc), "kind": "deadline"}
    except GraphError as exc:
        return {"error": str(exc), "kind": "not_found"}
    except Overloaded as exc:
        return {"error": str(exc), "kind": "overloaded"}
    except ServeError as exc:
        return {"error": str(exc), "kind": "unavailable"}
    except Exception as exc:  # noqa: BLE001 — the loop must survive anything
        return {"error": str(exc), "kind": "internal"}


def _cmd_serve(args: argparse.Namespace) -> int:
    """Concurrent line-protocol server on stdin/stdout.

    Protocol (one request per line, one JSON response per line, responses
    in request order): ``u v`` scores a pair, ``BATCH u v1 v2 ...`` scores
    a candidate set, ``TOPK u k [v1 v2 ...]`` runs a top-k search,
    ``UPDATE u v [weight]`` inserts or re-weights an edge and
    ``DELEDGE u v`` removes one (both answered with a mutation
    acknowledgement carrying the new generation and epoch), and
    ``HEALTH`` prints the serving health snapshot.  Mutations apply
    synchronously on the reader thread — walk rows touched by the change
    are incrementally re-stepped, the new generation is persisted to the
    cache store (when configured) and atomically swapped in — so every
    later line is answered from the mutated index, bit-identical to a
    cold rebuild of the mutated graph.  Under ``--shards`` mutations are
    rejected (``kind: unsupported``): shard workers serve immutable
    snapshots.  Requests are admitted
    into the scheduler's bounded queue (``--queue-depth``), coalesced into
    micro-batches (``--max-batch`` / ``--max-wait-us``) and answered by
    ``--workers`` threads; lines past the watermark get an ``overloaded``
    error response, never a crash.  Requests pipeline: keep writing lines
    without reading and responses stream back in order.

    With ``--shards N`` (requires ``--index``) the index is split by node
    range and served scatter-gather from N worker *processes* — scores
    and top-k stay bit-identical to the unsharded engine, and a failing
    shard degrades only its own key range (see docs/serving.md,
    "Multi-process sharding").

    A blank line, EOF, Ctrl-C, or SIGTERM ends the session gracefully:
    in-flight requests finish, every pending response is printed,
    observability outputs flush, and the exit code is 0.
    """
    if not _require_bundle_arg(args):
        return 2
    if args.shards and args.index is None:
        print("error: --shards requires --index (shard a prebuilt artifact "
              "with 'repro index build' first)", file=sys.stderr)
        return 2
    service = _make_service(args)
    service.manager.acquire()  # activate eagerly so startup errors surface
    if args.shards:
        index_path = Path(args.index)
        shard_root = index_path.parent / f"{index_path.name}.shards-{args.shards}"
        paths = shard_paths_for(shard_root, args.shards)
        try:
            # Reuse only a shard set provably split from THIS build of the
            # index — a rebuilt artifact (new walks/seed) with stale shards
            # would serve scores that silently diverge from the parent.
            validate_shard_set(paths, index_path)
        except StoreError as exc:
            if shard_root.exists():
                print(f"rebuilding shard artifacts: {exc}", file=sys.stderr)
            paths = write_shard_artifacts(index_path, shard_root, args.shards)
            print(f"wrote {len(paths)} shard artifacts -> {shard_root}",
                  file=sys.stderr)
        runtime: ServingRuntime = ShardedRuntime(
            service,
            paths,
            parent_path=index_path,
            workers=args.workers or 1,
            workers_per_shard=args.workers_per_shard,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            queue_depth=args.queue_depth,
            backend=args.backend,
            timings=args.timings,
        )
    else:
        runtime = ServingRuntime(
            service,
            workers=args.workers or 1,
            max_batch=args.max_batch,
            max_wait_us=args.max_wait_us,
            queue_depth=args.queue_depth,
            timings=args.timings,
        )
    metrics_server = None
    banner_extra = {}
    if args.metrics_port is not None:
        metrics_server = MetricsServer(
            render=_serve_metrics_renderer(runtime),
            health=runtime.health,
            port=args.metrics_port,
        ).start()
        # the resolved port leads the banner so scrape drivers can bind
        # port 0 and read the real one back
        banner_extra["metrics_port"] = metrics_server.port
    print(json.dumps({"ready": True, **banner_extra, **runtime.health()}),
          flush=True)

    # In-order pipelining: the printer thread blocks on the head entry's
    # future, so responses stream back in request order while later
    # requests are already queued, coalesced and executing.
    entries: SimpleQueue = SimpleQueue()

    def _printer() -> None:
        while True:
            entry = entries.get()
            if entry is _SERVE_DONE:
                return
            print(json.dumps(_serve_render(entry, runtime)), flush=True)

    printer = threading.Thread(
        target=_printer, name="repro-serve-printer", daemon=True
    )
    printer.start()

    # SIGTERM takes the same graceful path as Ctrl-C: process supervisors
    # (and the sharded runtime's own worker processes) see a clean drain
    # and exit 0 instead of a mid-request kill.
    def _on_sigterm(_signum, _frame):
        raise KeyboardInterrupt

    sigterm_installed = False
    previous_sigterm = None
    try:
        previous_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
        sigterm_installed = True
    except ValueError:  # not the main thread (embedded/test use) — skip
        pass
    try:
        for line in sys.stdin:
            line = line.strip()
            if not line:
                break
            if line.upper() == "HEALTH":
                entries.put(("health", None))
                continue
            entries.put(_serve_submit(runtime, line))
    except KeyboardInterrupt:
        pass  # graceful drain below; in-flight work still gets answered
    finally:
        if sigterm_installed:
            signal.signal(signal.SIGTERM, previous_sigterm)
        entries.put(_SERVE_DONE)
        runtime.drain()     # completes every admitted future
        printer.join()      # flushes every pending response, in order
        if metrics_server is not None:
            metrics_server.close()
        _flush_serve_metrics(args, runtime)
    return 0


def _serve_metrics_renderer(runtime: ServingRuntime):
    """The ``/metrics`` body producer for one serve runtime.

    Sharded runtimes render the merged view — the router's registry plus
    every worker's folded, ``shard``-labelled series, with fresh deltas
    pulled per scrape; unsharded runtimes render the live registry.
    """
    def _render(fmt: str) -> str:
        snapshot = (
            runtime.merged_snapshot()
            if isinstance(runtime, ShardedRuntime) else None
        )
        if fmt == "json":
            return render_json(snapshot=snapshot) + "\n"
        return render_prometheus(snapshot=snapshot)

    return _render


def _flush_serve_metrics(args: argparse.Namespace, runtime: ServingRuntime) -> None:
    """Serve owns its ``--metrics-out`` dump; the generic finalizer must not.

    Two reasons: the dump must be the *merged* view for a sharded runtime
    (the drain already pulled each worker's final delta), and ``-`` must
    route to **stderr** — serve's stdout is the protocol stream, and a
    JSON registry dump appended to it corrupts the last response a client
    reads.
    """
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is None:
        return
    args.metrics_out = None  # disarm _finalize_observability's dump
    snapshot = (
        runtime.merged_snapshot(pull=False)
        if isinstance(runtime, ShardedRuntime) else None
    )
    text = render_json(snapshot=snapshot) + "\n"
    if metrics_out == "-":
        sys.stderr.write(text)
    else:
        Path(metrics_out).write_text(text, encoding="utf-8")


def _cmd_metrics_dump(args: argparse.Namespace) -> int:
    if args.scrape is not None:
        import urllib.request

        url = f"http://{args.scrape}/metrics"
        if args.format == "json":
            url += "?format=json"
        try:
            with urllib.request.urlopen(url, timeout=10.0) as response:
                text = response.read().decode("utf-8")
        except OSError as exc:
            print(f"error: scrape of {url} failed: {exc}", file=sys.stderr)
            return 2
    else:
        text = render_json() if args.format == "json" else render_prometheus()
    if not text.endswith("\n"):
        text += "\n"
    if args.out == "-":
        sys.stdout.write(text)
    else:
        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote metrics -> {args.out}")
    return 0


def _configure_observability(args: argparse.Namespace) -> None:
    """Arm the obs flags before the command runs (no-ops when absent)."""
    if getattr(args, "log_json", False):
        configure_logging(json_format=True)
    trace_out = getattr(args, "trace_out", None)
    if trace_out is not None:
        set_trace_writer(sys.stdout if trace_out == "-" else trace_out)


def _finalize_observability(args: argparse.Namespace) -> None:
    """Flush obs outputs after the command, even on error exits."""
    if getattr(args, "trace_out", None) is not None:
        set_trace_writer(None)
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out is not None:
        text = render_json() + "\n"
        if metrics_out == "-":
            sys.stdout.write(text)
        else:
            Path(metrics_out).write_text(text, encoding="utf-8")


def _cmd_backends_list(_args: argparse.Namespace) -> int:
    """Enumerate registered compute backends, default first."""
    backends = available_backends()
    print(f"registered compute backends (default: {DEFAULT_BACKEND}, "
          f"override with --backend or $REPRO_BACKEND):")
    for info in backends:
        marker = "*" if info.name == DEFAULT_BACKEND else " "
        status = "available" if info.available else "unavailable"
        if info.available:
            equivalence = (
                "bit-identical" if info.exact
                else f"tolerance<={info.tolerance:g}"
            )
        else:
            equivalence = info.unavailable_reason or "not importable"
        print(f"  {marker} {info.name:<10} {status:<12} {equivalence}")
        if info.description:
            print(f"      {info.description}")
    return 0


#: The four engine families, in docs order.  Kept as data so the CLI
#: listing and any future capability gating read from one place.
_ESTIMATOR_FAMILIES = (
    {
        "name": "iterative",
        "exactness": "exact (fixed point to tolerance)",
        "memory": "O(N^2) dense score table",
        "mutations": "no (rebuild)",
        "shards": "no",
        "note": "paper-exact oracle; all-pairs precompute, fastest lookups",
    },
    {
        "name": "mc",
        "exactness": "unbiased Monte Carlo estimate",
        "memory": "O(N * walks * length) walk tensor",
        "mutations": "yes (incremental walk maintenance)",
        "shards": "yes (node-range shard artifacts)",
        "note": "default serving family; supports walk reuse and sharding",
    },
    {
        "name": "linear",
        "exactness": "exact within declared residual bound",
        "memory": "O(touched states) per query, no offline tables",
        "mutations": "no (stateless per query)",
        "shards": "no",
        "note": "per-query sparse linear solve; graphs too large for N^2",
    },
    {
        "name": "lowrank",
        "exactness": "rank-r approximation (error shrinks with --rank)",
        "memory": "O(N * r) factors",
        "mutations": "no (refactorize)",
        "shards": "no",
        "note": "offline factorization, O(r) per pair; middle serving tier",
    },
)


def _cmd_estimators_list(_args: argparse.Namespace) -> int:
    """Enumerate engine families and their capability envelopes."""
    print("engine families (select with --estimator; "
          "--method remains for iterative/mc):")
    for family in _ESTIMATOR_FAMILIES:
        print(f"  {family['name']:<10} {family['note']}")
        print(f"      exactness: {family['exactness']}")
        print(f"      memory:    {family['memory']}")
        print(f"      mutations: {family['mutations']}   "
              f"shardable: {family['shards']}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    bundle = _load_bundle_or_fail(args.bundle)
    print(bundle)
    print(f"entity nodes: {len(bundle.entity_nodes)}")
    print(f"taxonomy max depth: {bundle.taxonomy.max_depth()}")
    print(f"decay bound (Thm 2.3(5), literal): "
          f"{decay_paper_bound(bundle.graph, bundle.measure):.4f}")
    print(f"decay bound (contraction):          "
          f"{decay_contraction_bound(bundle.graph, bundle.measure):.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SemSim (EDBT 2019) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="replay Figure 1 / Example 2.2").set_defaults(
        func=_cmd_demo
    )

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=sorted(GENERATORS))
    generate.add_argument("--out", required=True, help="output bundle JSON path")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    def add_engine_options(
        command: argparse.ArgumentParser,
        serving: bool = False,
        workers_help: str = (
            "threads for parallel walk-index construction (mc only)"
        ),
    ) -> None:
        command.add_argument(
            "--method", choices=["iterative", "mc"], default="iterative"
        )
        command.add_argument(
            "--estimator", default=None,
            choices=["iterative", "mc", "linear", "lowrank"],
            help="engine family (supersedes --method; see "
                 "'repro estimators list')",
        )
        command.add_argument(
            "--rank", type=int, default=None, metavar="R",
            help="factorization rank for --estimator lowrank "
                 "(default: engine-chosen)",
        )
        command.add_argument("--decay", type=float, default=0.6)
        command.add_argument("--walks", type=int, default=150)
        command.add_argument("--length", type=int, default=15)
        command.add_argument("--theta", type=float, default=0.05)
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--workers", type=int, default=None, help=workers_help,
        )
        command.add_argument(
            "--backend", default=None, metavar="NAME",
            help="compute backend for the walk-score hot path (see "
                 "'repro backends list'; default: $REPRO_BACKEND or "
                 f"'{DEFAULT_BACKEND}')",
        )
        if serving:
            command.add_argument(
                "--cache", default=None, metavar="DIR",
                help="content-addressed artifact store: warm-start on hit, "
                     "build-and-persist on miss",
            )
            command.add_argument(
                "--index", default=None, metavar="PATH",
                help="serve from a prebuilt 'repro index build' artifact "
                     "(bundle and engine options are ignored)",
            )
            command.add_argument(
                "--walks-file", default=None, metavar="PATH",
                help="load the walk tensor from a saved .npz instead of "
                     "sampling (mc only)",
            )

    def add_obs_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--log-json", action="store_true",
            help="emit structured JSON logs on stderr",
        )
        command.add_argument(
            "--trace-out", default=None, metavar="PATH",
            help="append JSON-lines span traces to PATH ('-' = stdout)",
        )
        command.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="after the command, dump the metrics registry as JSON "
                 "to PATH ('-' = stdout)",
        )

    query = commands.add_parser("query", help="score a single node pair")
    query.add_argument("bundle", nargs="?", default=None,
                       help="bundle JSON path (omit with --index)")
    query.add_argument("u")
    query.add_argument("v")
    add_engine_options(query, serving=True)
    add_obs_options(query)
    query.set_defaults(func=_cmd_query)

    topk = commands.add_parser("topk", help="top-k similarity search")
    topk.add_argument("bundle", nargs="?", default=None,
                      help="bundle JSON path (omit with --index)")
    topk.add_argument("node")
    topk.add_argument("-k", type=int, default=10)
    topk.add_argument(
        "--batch-size", type=int, default=256, metavar="N",
        help="candidates scored per vectorised block (default: 256)",
    )
    add_engine_options(topk, serving=True)
    add_obs_options(topk)
    topk.set_defaults(func=_cmd_topk)

    index = commands.add_parser(
        "index", help="build or inspect persistent engine artifacts"
    )
    index_commands = index.add_subparsers(dest="index_command", required=True)

    index_build = index_commands.add_parser(
        "build", help="preprocess a bundle into an engine artifact"
    )
    index_build.add_argument("bundle", help="bundle JSON path")
    index_build.add_argument("--out", required=True,
                             help="artifact directory to write")
    index_build.add_argument(
        "--walks-out", default=None, metavar="PATH",
        help="also save the walk tensor as a portable .npz (mc only)",
    )
    add_engine_options(index_build)
    add_obs_options(index_build)
    index_build.set_defaults(func=_cmd_index_build)

    index_shard = index_commands.add_parser(
        "shard", help="split an mc engine artifact into node-range shards"
    )
    index_shard.add_argument("index", help="artifact directory path")
    index_shard.add_argument("--out", required=True,
                             help="directory to write shard-NNNN artifacts under")
    index_shard.add_argument(
        "--shards", type=int, required=True, metavar="N",
        help="number of contiguous node-range shards (even split)",
    )
    index_shard.set_defaults(func=_cmd_index_shard)

    index_info = index_commands.add_parser(
        "info", help="describe an engine artifact"
    )
    index_info.add_argument("index", help="artifact directory path")
    index_info.set_defaults(func=_cmd_index_info)

    serve = commands.add_parser(
        "serve", help="resilient stdin/stdout line-protocol query server"
    )
    serve.add_argument("bundle", nargs="?", default=None,
                       help="bundle JSON path (omit with --index)")
    serve.add_argument(
        "--deadline-ms", type=float, default=None, metavar="MS",
        help="per-request deadline in milliseconds (default: none)",
    )
    serve.add_argument(
        "--max-retries", type=int, default=3, metavar="N",
        help="bounded retries for artifact/walk-tensor I/O (default: 3)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32, metavar="N",
        help="most requests one worker dispatches per micro-batch "
             "(default: 32)",
    )
    serve.add_argument(
        "--max-wait-us", type=float, default=200.0, metavar="US",
        help="how long a worker lingers for a micro-batch to fill, in "
             "microseconds (default: 200; 0 dispatches immediately)",
    )
    serve.add_argument(
        "--queue-depth", type=int, default=1024, metavar="N",
        help="admission watermark: requests submitted while this many "
             "are queued get an 'overloaded' response (default: 1024)",
    )
    serve.add_argument(
        "--shards", type=int, default=0, metavar="N",
        help="serve from N node-range shard worker processes "
             "(requires --index; shard artifacts are built beside the "
             "index on first use; default: 0 = in-process serving)",
    )
    serve.add_argument(
        "--workers-per-shard", type=int, default=1, metavar="M",
        help="worker threads inside each shard process (default: 1)",
    )
    serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="N",
        help="serve /metrics (Prometheus, aggregated across shard worker "
             "processes) and /health on 127.0.0.1:N (0 = ephemeral port, "
             "printed in the ready banner; default: no endpoint)",
    )
    serve.add_argument(
        "--timings", action="store_true",
        help="annotate every response with its trace_id and a "
             "{queue_us, scatter_us, kernel_us, merge_us} latency "
             "breakdown (off by default: protocol output stays "
             "byte-stable)",
    )
    add_engine_options(
        serve, serving=True,
        workers_help="serving worker threads pulling micro-batches "
                     "(also used for parallel walk-index build; default: 1)",
    )
    add_obs_options(serve)
    serve.set_defaults(func=_cmd_serve)

    info = commands.add_parser("info", help="describe a saved bundle")
    info.add_argument("bundle", help="bundle JSON path")
    info.set_defaults(func=_cmd_info)

    backends = commands.add_parser(
        "backends", help="inspect the compute-backend registry"
    )
    backends_commands = backends.add_subparsers(
        dest="backends_command", required=True
    )
    backends_list = backends_commands.add_parser(
        "list", help="enumerate registered compute backends"
    )
    backends_list.set_defaults(func=_cmd_backends_list)

    estimators = commands.add_parser(
        "estimators", help="inspect the engine-family registry"
    )
    estimators_commands = estimators.add_subparsers(
        dest="estimators_command", required=True
    )
    estimators_list = estimators_commands.add_parser(
        "list", help="enumerate engine families and their capabilities"
    )
    estimators_list.set_defaults(func=_cmd_estimators_list)

    metrics = commands.add_parser(
        "metrics", help="inspect the in-process metrics registry"
    )
    metrics_commands = metrics.add_subparsers(dest="metrics_command", required=True)
    metrics_dump = metrics_commands.add_parser(
        "dump", help="render every registered metric family"
    )
    metrics_dump.add_argument(
        "--format", choices=["json", "prom"], default="json",
        help="JSON registry dump or Prometheus text exposition",
    )
    metrics_dump.add_argument(
        "--out", default="-", metavar="PATH",
        help="output path ('-' = stdout)",
    )
    metrics_dump.add_argument(
        "--scrape", default=None, metavar="HOST:PORT",
        help="fetch the rendering from a live 'repro serve "
             "--metrics-port' endpoint instead of this process's "
             "(empty) registry",
    )
    metrics_dump.set_defaults(func=_cmd_metrics_dump)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    _configure_observability(args)
    try:
        return args.func(args)
    except (ConfigurationError, GraphError, StoreError, ServeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: no such file: {exc.filename or exc}", file=sys.stderr)
        return 2
    finally:
        _finalize_observability(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
