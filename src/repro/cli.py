"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``demo``
    Replay the paper's Figure 1 / Example 2.2 comparison.
``generate``
    Generate one of the synthetic dataset stand-ins and save it as a
    bundle JSON (graph + taxonomy + IC + ground truth).
``query``
    Score one node pair on a saved bundle with SemSim (iterative or
    Monte-Carlo) and SimRank.
``topk``
    Top-k similarity search from a node on a saved bundle.
``info``
    Print a saved bundle's shape and the decay-factor bounds.
"""

from __future__ import annotations

import argparse
import sys

from repro.api import QueryEngine
from repro.core import SemSim, SimRank
from repro.core.decay import decay_contraction_bound, decay_paper_bound
from repro.datasets import (
    aminer_like,
    amazon_like,
    figure1_network,
    wikipedia_like,
    wordnet_like,
)
from repro.datasets.io import load_bundle_json, save_bundle_json
from repro.errors import ConfigurationError

GENERATORS = {
    "aminer": aminer_like,
    "amazon": amazon_like,
    "wikipedia": wikipedia_like,
    "wordnet": wordnet_like,
}


def _cmd_demo(_args: argparse.Namespace) -> int:
    data = figure1_network()
    simrank = SimRank(data.graph, decay=0.8, max_iterations=3, tolerance=0.0)
    semsim = SemSim(data.graph, data.measure, decay=0.8, max_iterations=3, tolerance=0.0)
    print("Figure 1 — who is more similar to Aditi?")
    print(f"  SimRank: John={simrank.similarity('John', 'Aditi'):.4f} "
          f"Bo={simrank.similarity('Bo', 'Aditi'):.4f}  -> picks Bo")
    print(f"  SemSim:  John={semsim.similarity('John', 'Aditi'):.6f} "
          f"Bo={semsim.similarity('Bo', 'Aditi'):.6f}  -> picks John")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    generator = GENERATORS[args.dataset]
    bundle = generator(seed=args.seed)
    save_bundle_json(bundle, args.out)
    print(f"wrote {bundle} -> {args.out}")
    return 0


def _load_bundle_or_fail(path: str):
    try:
        return load_bundle_json(path)
    except FileNotFoundError:
        print(f"error: bundle file not found: {path}", file=sys.stderr)
        raise SystemExit(2) from None


def _cmd_query(args: argparse.Namespace) -> int:
    bundle = _load_bundle_or_fail(args.bundle)
    u, v = args.u, args.v
    for node in (u, v):
        if node not in bundle.graph:
            print(f"error: node {node!r} is not in the bundle", file=sys.stderr)
            return 2
    engine = QueryEngine(
        bundle.graph,
        bundle.measure,
        method=args.method,
        decay=args.decay,
        num_walks=args.walks,
        length=args.length,
        theta=args.theta,
        seed=args.seed,
        workers=args.workers,
    )
    value = engine.score(u, v)
    simrank = SimRank(bundle.graph, decay=args.decay)
    print(f"sem({u}, {v})     = {bundle.measure.similarity(u, v):.6f}")
    print(f"semsim({u}, {v})  = {value:.6f}   [{args.method}]")
    print(f"simrank({u}, {v}) = {simrank.similarity(u, v):.6f}")
    return 0


def _cmd_topk(args: argparse.Namespace) -> int:
    bundle = _load_bundle_or_fail(args.bundle)
    if args.node not in bundle.graph:
        print(f"error: node {args.node!r} is not in the bundle", file=sys.stderr)
        return 2
    engine = QueryEngine(
        bundle.graph,
        bundle.measure,
        method=args.method,
        decay=args.decay,
        num_walks=args.walks,
        length=args.length,
        theta=args.theta,
        seed=args.seed,
        workers=args.workers,
    )
    results = engine.top_k(args.node, args.k, candidates=bundle.entity_nodes)
    print(f"top-{args.k} most similar to {args.node}:")
    for node, score in results:
        print(f"  {node:<24} {score:.6f}")
    return 0


def _cmd_info(args: argparse.Namespace) -> int:
    bundle = _load_bundle_or_fail(args.bundle)
    print(bundle)
    print(f"entity nodes: {len(bundle.entity_nodes)}")
    print(f"taxonomy max depth: {bundle.taxonomy.max_depth()}")
    print(f"decay bound (Thm 2.3(5), literal): "
          f"{decay_paper_bound(bundle.graph, bundle.measure):.4f}")
    print(f"decay bound (contraction):          "
          f"{decay_contraction_bound(bundle.graph, bundle.measure):.4f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SemSim (EDBT 2019) reproduction toolkit",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("demo", help="replay Figure 1 / Example 2.2").set_defaults(
        func=_cmd_demo
    )

    generate = commands.add_parser("generate", help="generate a synthetic dataset")
    generate.add_argument("dataset", choices=sorted(GENERATORS))
    generate.add_argument("--out", required=True, help="output bundle JSON path")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=_cmd_generate)

    def add_engine_options(command: argparse.ArgumentParser) -> None:
        command.add_argument(
            "--method", choices=["iterative", "mc"], default="iterative"
        )
        command.add_argument("--decay", type=float, default=0.6)
        command.add_argument("--walks", type=int, default=150)
        command.add_argument("--length", type=int, default=15)
        command.add_argument("--theta", type=float, default=0.05)
        command.add_argument("--seed", type=int, default=0)
        command.add_argument(
            "--workers", type=int, default=None,
            help="threads for parallel walk-index construction (mc only)",
        )

    query = commands.add_parser("query", help="score a single node pair")
    query.add_argument("bundle", help="bundle JSON path")
    query.add_argument("u")
    query.add_argument("v")
    add_engine_options(query)
    query.set_defaults(func=_cmd_query)

    topk = commands.add_parser("topk", help="top-k similarity search")
    topk.add_argument("bundle", help="bundle JSON path")
    topk.add_argument("node")
    topk.add_argument("-k", type=int, default=10)
    add_engine_options(topk)
    topk.set_defaults(func=_cmd_topk)

    info = commands.add_parser("info", help="describe a saved bundle")
    info.add_argument("bundle", help="bundle JSON path")
    info.set_defaults(func=_cmd_info)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConfigurationError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
