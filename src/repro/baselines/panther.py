"""Panther (Zhang et al. [43]) — path-sampling similarity.

Panther estimates similarity from ``R`` random paths of length ``T``:
two nodes are similar in proportion to the fraction of sampled paths on
which they co-occur (within a window).  Steps follow edge weights, so
Panther is weight-aware but — like all the structural baselines — blind to
label semantics.

The theoretically motivated sample size is ``R = c/eps² * (log2(T) + 1 +
ln(1/delta))``; we expose ``num_paths`` directly and provide
:meth:`Panther.recommended_paths` for the formula.
"""

from __future__ import annotations

import math
import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.utils.rng import ensure_rng


class Panther:
    """Random-path co-occurrence similarity."""

    def __init__(
        self,
        graph: HIN,
        num_paths: int = 10_000,
        path_length: int = 5,
        window: int | None = None,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if num_paths < 1:
            raise ConfigurationError(f"num_paths must be >= 1, got {num_paths!r}")
        if path_length < 2:
            raise ConfigurationError(f"path_length must be >= 2, got {path_length!r}")
        self.graph = graph
        self.num_paths = num_paths
        self.path_length = path_length
        self.window = window if window is not None else path_length
        self._scores: dict[tuple[Node, Node], float] = {}
        self._sample(ensure_rng(seed))

    @staticmethod
    def recommended_paths(path_length: int, eps: float = 0.05, delta: float = 0.1) -> int:
        """Sample size from Panther's VC-dimension bound."""
        c = 0.5
        return int(math.ceil(c / eps ** 2 * (math.log2(path_length) + 1 + math.log(1 / delta))))

    def _sample(self, rng: np.random.Generator) -> None:
        index = self.graph.index()
        n = index.num_nodes
        if n == 0:
            return
        # Out-adjacency with weights for the forward walk.
        out_lists: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        out_cums: list[np.ndarray | None] = [None] * n
        position = index.position
        out_targets: dict[int, list[tuple[int, float]]] = {i: [] for i in range(n)}
        for source, target, weight, _ in self.graph.edges():
            out_targets[position[source]].append((position[target], weight))
        for i in range(n):
            if out_targets[i]:
                targets = np.array([t for t, _ in out_targets[i]], dtype=np.int64)
                weights = np.array([w for _, w in out_targets[i]])
                out_lists[i] = targets
                out_cums[i] = np.cumsum(weights / weights.sum())

        increment = 1.0 / self.num_paths
        pair_scores: dict[tuple[int, int], float] = {}
        starts = rng.integers(0, n, size=self.num_paths)
        for start in map(int, starts):
            path = [start]
            current = start
            for _ in range(self.path_length - 1):
                cums = out_cums[current]
                if cums is None:
                    break
                draw = float(rng.random())
                choice = int(np.searchsorted(cums, draw, side="right"))
                choice = min(choice, cums.size - 1)
                current = int(out_lists[current][choice])
                path.append(current)
            # Credit all distinct co-occurring pairs within the window.
            distinct = list(dict.fromkeys(path))
            for a_idx in range(len(distinct)):
                for b_idx in range(a_idx + 1, min(len(distinct), a_idx + self.window + 1)):
                    a, b = distinct[a_idx], distinct[b_idx]
                    key = (a, b) if a < b else (b, a)
                    pair_scores[key] = pair_scores.get(key, 0.0) + increment
        nodes = index.nodes
        self._scores = {
            (nodes[a], nodes[b]): score for (a, b), score in pair_scores.items()
        }

    def similarity(self, u: Node, v: Node) -> float:
        """Return the estimated co-occurrence similarity."""
        if u == v:
            return 1.0
        key = (u, v)
        if key in self._scores:
            return self._scores[key]
        return self._scores.get((v, u), 0.0)

    def __repr__(self) -> str:
        return (
            f"Panther(num_paths={self.num_paths}, path_length={self.path_length}, "
            f"pairs={len(self._scores)})"
        )
