"""HeteSim (Shi et al. [35]) — meta-path relevance for HINs.

HeteSim measures the relevance of two objects along a relevance path by
*meeting in the middle*: a probability walker starts from each endpoint,
both follow the path toward its centre, and the score is the cosine
overlap of their mid-point reachability distributions:

    ``HeteSim(u, v | P) = h_u · h_v / (|h_u| |h_v|)``

Like :class:`~repro.baselines.pathsim.PathSim`, this implementation takes
the *half* meta-path (the full symmetric path is ``half ∘ half⁻¹``) as a
sequence of edge labels followed in their forward direction — the common
symmetric-path setting used in comparisons, and the one the paper
contrasts with SemSim's automatic path weighting (choosing the half-path
is exactly the a-priori knowledge SemSim does not need).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node


class HeteSim:
    """Meeting-in-the-middle relevance along a symmetric meta-path."""

    def __init__(self, graph: HIN, meta_path: Sequence[str]) -> None:
        if not meta_path:
            raise ConfigurationError("meta_path must contain at least one edge label")
        self.graph = graph
        self.meta_path = list(meta_path)
        nodes = list(graph.nodes())
        self.nodes = nodes
        self._position = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)

        def transition(label: str) -> np.ndarray:
            """Row-stochastic forward transition restricted to *label*."""
            matrix = np.zeros((n, n))
            for source, target, weight, edge_label in graph.edges():
                if edge_label == label:
                    matrix[self._position[source], self._position[target]] = weight
            sums = matrix.sum(axis=1, keepdims=True)
            np.divide(matrix, sums, out=matrix, where=sums > 0)
            return matrix

        reach = np.eye(n)
        for label in self.meta_path:
            reach = reach @ transition(label)
        #: ``_reach[i]`` is node i's distribution over path mid-points.
        self._reach = reach

    def similarity(self, u: Node, v: Node) -> float:
        """Return the cosine overlap of the two mid-point distributions."""
        if u == v:
            return 1.0
        h_u = self._reach[self._position[u]]
        h_v = self._reach[self._position[v]]
        norm = float(np.linalg.norm(h_u) * np.linalg.norm(h_v))
        if norm == 0:
            return 0.0
        return float(h_u @ h_v / norm)

    def __repr__(self) -> str:
        return f"HeteSim(meta_path={self.meta_path}, nodes={len(self.nodes)})"
