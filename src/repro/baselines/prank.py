"""P-Rank (Zhao, Han & Sun [45]) — and its semantic boost.

P-Rank generalises SimRank by recursing over *both* in- and out-neighbour
similarity:

    ``R(u, v) = lambda  * c / (|I(u)||I(v)|) * sum sum R(I_i, I_j)
              + (1-lambda) * c / (|O(u)||O(v)|) * sum sum R(O_i, O_j)``

The paper's Related Work claims its computation scheme "is applicable also
to several of these variants (e.g. [2, 45])"; :func:`sem_prank_scores`
demonstrates that by injecting the same semantic weighting SemSim uses into
both directions of the P-Rank recursion (semantic factor on the pair,
semantics-aware normalisers on each side).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure, semantic_matrix


def _directional_parts(weights: np.ndarray, sem: np.ndarray, scores: np.ndarray):
    """One direction's numerator ``W.T R W`` and normaliser ``W.T S W``."""
    return weights.T @ scores @ weights, weights.T @ sem @ weights


def prank_scores(
    graph: HIN,
    decay: float = 0.6,
    in_weight: float = 0.5,
    max_iterations: int = 100,
    tolerance: float = 1e-4,
    measure: SemanticMeasure | None = None,
) -> tuple[list[Node], np.ndarray]:
    """Compute all-pairs P-Rank (semantic variant when *measure* given).

    Returns ``(nodes, matrix)``.  ``in_weight`` is P-Rank's ``lambda``; 1.0
    degrades to (weighted/semantic) SimRank-style in-link recursion only.
    """
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
    if not 0 <= in_weight <= 1:
        raise ConfigurationError(f"in_weight must lie in [0, 1], got {in_weight!r}")

    nodes = list(graph.nodes())
    n = len(nodes)
    if n == 0:
        return nodes, np.zeros((0, 0))
    position = {node: i for i, node in enumerate(nodes)}
    in_adj = np.zeros((n, n))
    for source, target, weight, _ in graph.edges():
        in_adj[position[source], position[target]] = weight
    out_adj = in_adj.T.copy()

    if measure is not None:
        sem = semantic_matrix(measure, nodes)
    else:
        sem = np.ones((n, n))
        in_adj = (in_adj > 0).astype(np.float64)
        out_adj = (out_adj > 0).astype(np.float64)

    in_norm = in_adj.T @ sem @ in_adj
    out_norm = out_adj.T @ sem @ out_adj
    in_ok = in_norm > 0
    out_ok = out_norm > 0

    current = np.eye(n)
    for _ in range(max_iterations):
        in_part = np.zeros((n, n))
        np.divide(
            in_adj.T @ current @ in_adj, in_norm, out=in_part, where=in_ok
        )
        out_part = np.zeros((n, n))
        np.divide(
            out_adj.T @ current @ out_adj, out_norm, out=out_part, where=out_ok
        )
        updated = decay * sem * (in_weight * in_part + (1 - in_weight) * out_part)
        np.fill_diagonal(updated, 1.0)
        delta = np.max(np.abs(updated - current))
        current = updated
        if delta < tolerance:
            break
    return nodes, current


def sem_prank_scores(
    graph: HIN,
    measure: SemanticMeasure,
    decay: float = 0.6,
    in_weight: float = 0.5,
    max_iterations: int = 100,
    tolerance: float = 1e-4,
) -> tuple[list[Node], np.ndarray]:
    """Semantically boosted P-Rank — SemSim's refinement applied to [45]."""
    return prank_scores(
        graph,
        decay=decay,
        in_weight=in_weight,
        max_iterations=max_iterations,
        tolerance=tolerance,
        measure=measure,
    )


class PRank:
    """Object wrapper with the shared ``similarity(u, v)`` interface."""

    def __init__(
        self,
        graph: HIN,
        decay: float = 0.6,
        in_weight: float = 0.5,
        max_iterations: int = 100,
        tolerance: float = 1e-4,
        measure: SemanticMeasure | None = None,
    ) -> None:
        self.nodes, self.matrix = prank_scores(
            graph,
            decay=decay,
            in_weight=in_weight,
            max_iterations=max_iterations,
            tolerance=tolerance,
            measure=measure,
        )
        self._position = {node: i for i, node in enumerate(self.nodes)}

    def similarity(self, u: Node, v: Node) -> float:
        """Return the P-Rank score of the pair."""
        return float(self.matrix[self._position[u], self._position[v]])

    def __repr__(self) -> str:
        return f"PRank(nodes={len(self.nodes)})"
