"""SimRank++ (Antonellis, Garcia-Molina & Chang [2]).

SimRank++ refines SimRank along three axes, all reproduced here:

* **evidence** — pairs sharing more common neighbours are more trustworthy:
  ``evidence(u, v) = sum_{i=1}^{|I(u) ∩ I(v)|} 2^{-i}`` (approaches 1);
* **weights** — the recursive step uses normalised edge weights instead of
  the uniform ``1 / (|I(u)||I(v)|)``;
* **spread** (the original's variance factor, ``use_spread=True``) — a node
  whose in-edge weights vary wildly is a less reliable witness:
  each normalised weight is damped by ``exp(-variance(in-weights of v))``,
  making the recursion a strict contraction even without the ``1/N``
  normalisation.

With spread enabled the update is ``R' = c · Aᵀ R A`` with
``A[a, v] = spread(v) · W(a, v) / Σ_a' W(a', v)``, diagonal pinned to 1 —
the paper's original formulation.  Without it we use evidence times the
``N``-normalised weighted SimRank of the shared engine.  Either way,
SimRank++ sees weights but no label semantics, which is precisely where
SemSim departs from it.
"""

from __future__ import annotations

import numpy as np

from repro.core.iterative import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    FixedPointResult,
    iterate_fixed_point,
)
from repro.hin.graph import HIN, Node


def _evidence_matrix(graph: HIN, nodes: list[Node]) -> np.ndarray:
    """Return ``evidence(u, v) = 1 - 2^{-|I(u) ∩ I(v)|}`` (closed form)."""
    n = len(nodes)
    in_sets = [set(graph.in_neighbors(node)) for node in nodes]
    evidence = np.zeros((n, n))
    for i in range(n):
        evidence[i, i] = 1.0
        for j in range(i + 1, n):
            common = len(in_sets[i] & in_sets[j])
            value = 1.0 - 2.0 ** (-common) if common else 0.0
            evidence[i, j] = value
            evidence[j, i] = value
    return evidence


def _spread_normalised_adjacency(graph: HIN, nodes: list[Node]) -> np.ndarray:
    """``A[a, v] = exp(-var(in-weights of v)) * W(a, v) / sum_in(v)``."""
    position = {node: i for i, node in enumerate(nodes)}
    n = len(nodes)
    matrix = np.zeros((n, n))
    for source, target, weight, _ in graph.edges():
        matrix[position[source], position[target]] = weight
    for v in range(n):
        column = matrix[:, v]
        incoming = column[column > 0]
        if incoming.size == 0:
            continue
        spread = float(np.exp(-incoming.var()))
        matrix[:, v] = spread * column / incoming.sum()
    return matrix


def simrankpp_scores(
    graph: HIN,
    decay: float = 0.6,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    use_spread: bool = True,
) -> FixedPointResult:
    """Compute all-pairs SimRank++: evidence-scaled weighted SimRank."""
    nodes = list(graph.nodes())
    if use_spread:
        from repro.core.iterative import IterationTrace

        adjacency = _spread_normalised_adjacency(graph, nodes)
        n = len(nodes)
        trace = IterationTrace()
        current = np.eye(n)
        converged = False
        for _ in range(max_iterations):
            updated = decay * (adjacency.T @ current @ adjacency)
            np.fill_diagonal(updated, 1.0)
            trace.record(current, updated)
            current = updated
            if trace.max_absolute_diff[-1] < tolerance:
                converged = True
                break
        result = FixedPointResult(nodes, current, trace, converged)
    else:
        result = iterate_fixed_point(
            graph,
            measure=None,
            decay=decay,
            max_iterations=max_iterations,
            tolerance=tolerance,
            use_weights=True,
        )
    evidence = _evidence_matrix(graph, result.nodes)
    scaled = evidence * result.matrix
    np.fill_diagonal(scaled, 1.0)
    return FixedPointResult(result.nodes, scaled, result.trace, result.converged)


class SimRankPP:
    """Object-style wrapper holding a converged SimRank++ table."""

    def __init__(
        self,
        graph: HIN,
        decay: float = 0.6,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = DEFAULT_TOLERANCE,
        use_spread: bool = True,
    ) -> None:
        self.graph = graph
        self.decay = decay
        self.result = simrankpp_scores(
            graph, decay=decay, max_iterations=max_iterations,
            tolerance=tolerance, use_spread=use_spread,
        )
        self._position = {node: i for i, node in enumerate(self.result.nodes)}

    def similarity(self, u: Node, v: Node) -> float:
        """Return the SimRank++ score of the pair."""
        return float(self.result.matrix[self._position[u], self._position[v]])

    def __repr__(self) -> str:
        return f"SimRankPP(nodes={len(self.result.nodes)}, decay={self.decay})"
