"""Ontology relatedness (Mazuel & Sabouret [25]) — adapted.

The original measure rates concept relatedness by the *best semantically
correct path* through the ontology, mixing hierarchical (``is-a``) steps —
costed by how far they stray taxonomically — with object-property steps at
a fixed cost.  Our adaptation keeps exactly that structure on the HIN:

* an ``is-a`` step between concepts ``a -> b`` costs
  ``1 - lin(a, b)`` (cheap between semantically close levels);
* any other edge (a property/relation step) costs a constant
  ``property_cost``;

relatedness is ``1 / (1 + best_path_cost)`` under Dijkstra, yielding a
measure that — like the original — rewards short mixed paths and is aware
of both the taxonomy and the property structure, which is why it is the
strongest non-SemSim competitor on the relatedness task (Table 5).
"""

from __future__ import annotations

import heapq
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure


class OntologyRelatedness:
    """Best-mixed-path relatedness over a HIN."""

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure,
        property_cost: float = 0.6,
        max_cost: float = 4.0,
        is_a_label: str = "is-a",
    ) -> None:
        if property_cost <= 0:
            raise ConfigurationError(f"property_cost must be > 0, got {property_cost!r}")
        self.graph = graph
        self.measure = measure
        self.property_cost = property_cost
        self.max_cost = max_cost
        self.is_a_label = is_a_label
        self._cache: dict[tuple[Node, Node], float] = {}

    def _step_cost(self, a: Node, b: Node, label: str) -> float:
        if label == self.is_a_label:
            return max(1e-6, 1.0 - self.measure.similarity(a, b))
        return self.property_cost

    def _best_path_cost(self, source: Node, target: Node) -> float | None:
        """Bounded Dijkstra over undirected steps; None if beyond max_cost."""
        best: dict[Node, float] = {source: 0.0}
        frontier: list[tuple[float, int, Node]] = [(0.0, 0, source)]
        counter = 0
        while frontier:
            cost, _, current = heapq.heappop(frontier)
            if current == target:
                return cost
            if cost > best.get(current, float("inf")) or cost > self.max_cost:
                continue
            neighbours = [
                (other, label)
                for other, _, label in self.graph.out_edges(current)
            ] + [
                (other, label)
                for other, _, label in self.graph.in_edges(current)
            ]
            for other, label in neighbours:
                step = self._step_cost(current, other, label)
                total = cost + step
                if total <= self.max_cost and total < best.get(other, float("inf")):
                    best[other] = total
                    counter += 1
                    heapq.heappush(frontier, (total, counter, other))
        return None

    def similarity(self, u: Node, v: Node) -> float:
        """Return ``1 / (1 + best_path_cost)``; 0 when no bounded path."""
        if u == v:
            return 1.0
        key = (u, v) if str(u) <= str(v) else (v, u)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        cost = self._best_path_cost(*key)
        value = 0.0 if cost is None else 1.0 / (1.0 + cost)
        self._cache[key] = value
        return value

    def __repr__(self) -> str:
        return f"OntologyRelatedness(property_cost={self.property_cost}, max_cost={self.max_cost})"
