"""Baselines the paper compares SemSim against (Section 5.3).

Three families:

I.  structural — :class:`SimRankPP` [2], :class:`Panther` [43]
    (plain SimRank lives in :mod:`repro.core.simrank`);
II. semantic — Lin (in :mod:`repro.semantics.lin`);
III. combined — :class:`LineEmbedding` [38], :class:`PathSim` [37],
    :class:`OntologyRelatedness` [25], and the naive
    :class:`MultiplicationMeasure` / :class:`AverageMeasure` combiners.
"""

from repro.baselines.simrankpp import SimRankPP, simrankpp_scores
from repro.baselines.panther import Panther
from repro.baselines.pathsim import PathSim
from repro.baselines.line import LineEmbedding
from repro.baselines.relatedness import OntologyRelatedness
from repro.baselines.hetesim import HeteSim
from repro.baselines.metapath_search import (
    AveragedPathSim,
    MetaPathChoice,
    enumerate_half_paths,
    select_meta_path,
)
from repro.baselines.prank import PRank, prank_scores, sem_prank_scores
from repro.baselines.combined import AverageMeasure, MultiplicationMeasure

__all__ = [
    "SimRankPP",
    "simrankpp_scores",
    "Panther",
    "PathSim",
    "LineEmbedding",
    "OntologyRelatedness",
    "HeteSim",
    "AveragedPathSim",
    "MetaPathChoice",
    "enumerate_half_paths",
    "select_meta_path",
    "PRank",
    "prank_scores",
    "sem_prank_scores",
    "MultiplicationMeasure",
    "AverageMeasure",
]
