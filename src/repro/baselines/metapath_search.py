"""Automatic meta-path selection for PathSim/HeteSim.

The paper criticises meta-path measures because "the choice of appropriate
paths is made a-priori, and requires intimate knowledge of the dataset"
[22].  This module implements the obvious counter-measure — enumerate
candidate half-paths up to a length budget and pick the one that scores
best on a small labelled validation set — so the benchmark comparison
against SemSim is as fair as meta-path methods can be made without human
path engineering.  (The paper's footnote 5 notes the alternative of
averaging over all paths "resulting in inferior results"; averaging is
also provided for completeness.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.baselines.pathsim import PathSim
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node

#: A validation judgement: (node_a, node_b, gold_score).
Judgement = tuple[Node, Node, float]


def enumerate_half_paths(graph: HIN, max_length: int = 2) -> list[tuple[str, ...]]:
    """Return all label sequences up to *max_length* that exist in *graph*.

    A sequence qualifies when consecutive labels are *composable*: some
    edge of label ``l_i`` ends where some edge of label ``l_{i+1}`` starts.
    This prunes the exponential label product down to paths that can carry
    probability mass at all.
    """
    if max_length < 1:
        raise ConfigurationError(f"max_length must be >= 1, got {max_length!r}")
    labels = sorted({label for _, _, _, label in graph.edges()})
    sources_of: dict[str, set[Node]] = {label: set() for label in labels}
    targets_of: dict[str, set[Node]] = {label: set() for label in labels}
    for source, target, _, label in graph.edges():
        sources_of[label].add(source)
        targets_of[label].add(target)

    def composable(a: str, b: str) -> bool:
        return bool(targets_of[a] & sources_of[b])

    paths: list[tuple[str, ...]] = [(label,) for label in labels]
    frontier = list(paths)
    for _ in range(max_length - 1):
        extended = []
        for path in frontier:
            for label in labels:
                if composable(path[-1], label):
                    extended.append(path + (label,))
        paths.extend(extended)
        frontier = extended
    return paths


def _pearson(xs: list[float], ys: list[float]) -> float:
    from repro.tasks.metrics import pearson_correlation

    return pearson_correlation(xs, ys)[0]


@dataclass
class MetaPathChoice:
    """The selected half-path, its validation score, and the fitted model."""

    meta_path: tuple[str, ...]
    validation_score: float
    model: PathSim


def select_meta_path(
    graph: HIN,
    validation: Sequence[Judgement],
    max_length: int = 2,
    scorer: Callable[[list[float], list[float]], float] = _pearson,
) -> MetaPathChoice:
    """Pick the half-path whose PathSim best matches *validation*.

    *scorer* maps ``(gold, predicted)`` to a quality value (higher is
    better); the default is Pearson correlation, matching the relatedness
    benchmark's criterion.
    """
    if not validation:
        raise ConfigurationError("validation set must not be empty")
    gold = [score for _, _, score in validation]
    best: MetaPathChoice | None = None
    for path in enumerate_half_paths(graph, max_length):
        model = PathSim(graph, list(path))
        predicted = [model.similarity(a, b) for a, b, _ in validation]
        quality = scorer(gold, predicted)
        if best is None or quality > best.validation_score:
            best = MetaPathChoice(path, quality, model)
    assert best is not None  # at least one label exists or PathSim raised
    return best


class AveragedPathSim:
    """Footnote-5's alternative: average PathSim over all candidate paths."""

    def __init__(self, graph: HIN, max_length: int = 2) -> None:
        paths = enumerate_half_paths(graph, max_length)
        if not paths:
            raise ConfigurationError("graph has no labelled edges")
        self.models = [PathSim(graph, list(path)) for path in paths]

    def similarity(self, u: Node, v: Node) -> float:
        """Return the mean PathSim over every enumerated half-path."""
        if u == v:
            return 1.0
        total = sum(model.similarity(u, v) for model in self.models)
        return total / len(self.models)

    def __repr__(self) -> str:
        return f"AveragedPathSim(paths={len(self.models)})"
