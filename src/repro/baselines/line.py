"""LINE (Tang et al. [38]) — network embedding baseline, numpy from scratch.

LINE learns node vectors preserving first-order proximity (connected nodes
embed close) and second-order proximity (nodes with similar neighbourhoods
embed close; each node gets an additional *context* vector).  Training is
SGD over weighted edge samples with negative sampling:

    ``maximise log σ(u·v') + sum_neg log σ(-u·n')``

Similarity is cosine mapped into ``[0, 1]``.  The paper uses LINE as its
representative "representation learning" competitor — strong on accuracy,
weak on interpretability; our reproduction only needs the accuracy side.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.utils.rng import ensure_rng


def _sigmoid(x: np.ndarray | float) -> np.ndarray | float:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -30.0, 30.0)))


class LineEmbedding:
    """Second-order LINE embedding with negative sampling.

    Parameters
    ----------
    graph:
        Edges are sampled proportionally to weight, as in the paper's
        edge-sampling optimisation.
    dimensions:
        Embedding width.
    num_samples:
        Total SGD edge samples (defaults to 200 passes over the edges).
    negatives:
        Negative samples per positive edge.
    order:
        1 = first-order only, 2 = second-order only (LINE's recommended
        setting for directed graphs and our default).
    """

    def __init__(
        self,
        graph: HIN,
        dimensions: int = 32,
        num_samples: int | None = None,
        negatives: int = 5,
        learning_rate: float = 0.025,
        order: int = 2,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if dimensions < 2:
            raise ConfigurationError(f"dimensions must be >= 2, got {dimensions!r}")
        if order not in (1, 2):
            raise ConfigurationError(f"order must be 1 or 2, got {order!r}")
        self.graph = graph
        self.dimensions = dimensions
        self.order = order
        rng = ensure_rng(seed)

        nodes = list(graph.nodes())
        self.nodes = nodes
        self._position = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        edges = list(graph.edges())
        if not edges:
            self._vectors = np.zeros((n, dimensions))
            return

        sources = np.array([self._position[s] for s, _, _, _ in edges])
        targets = np.array([self._position[t] for _, t, _, _ in edges])
        weights = np.array([w for _, _, w, _ in edges])
        edge_probs = weights / weights.sum()
        # Negative sampling from the degree^(3/4) distribution.
        degree = np.bincount(targets, weights=weights, minlength=n).astype(np.float64)
        negative_probs = degree ** 0.75
        if negative_probs.sum() == 0:
            negative_probs = np.ones(n)
        negative_probs /= negative_probs.sum()

        total = num_samples if num_samples is not None else 200 * len(edges)
        scale = 0.5 / dimensions
        vectors = (rng.random((n, dimensions)) - 0.5) * scale
        contexts = np.zeros((n, dimensions)) if order == 2 else vectors

        batch = 1024
        drawn = 0
        while drawn < total:
            size = min(batch, total - drawn)
            drawn += size
            # Linear learning-rate decay, floored at 1% of the initial rate.
            rate = learning_rate * max(0.01, 1.0 - drawn / total)
            edge_ids = rng.choice(len(edges), size=size, p=edge_probs)
            neg_ids = rng.choice(n, size=(size, negatives), p=negative_probs)
            for row in range(size):
                u = int(sources[edge_ids[row]])
                v = int(targets[edge_ids[row]])
                u_vec = vectors[u]
                grad_u = np.zeros(self.dimensions)
                # Positive update.
                v_ctx = contexts[v]
                g = (1.0 - _sigmoid(u_vec @ v_ctx)) * rate
                grad_u += g * v_ctx
                contexts[v] = v_ctx + g * u_vec
                # Negative updates.
                for neg in map(int, neg_ids[row]):
                    if neg == v:
                        continue
                    n_ctx = contexts[neg]
                    g = -_sigmoid(u_vec @ n_ctx) * rate
                    grad_u += g * n_ctx
                    contexts[neg] = n_ctx + g * u_vec
                vectors[u] = u_vec + grad_u
        self._vectors = vectors

    def vector(self, node: Node) -> np.ndarray:
        """Return the learned embedding of *node*."""
        return self._vectors[self._position[node]]

    def similarity(self, u: Node, v: Node) -> float:
        """Return cosine similarity mapped into [0, 1]."""
        if u == v:
            return 1.0
        a = self._vectors[self._position[u]]
        b = self._vectors[self._position[v]]
        norm = float(np.linalg.norm(a) * np.linalg.norm(b))
        if norm == 0:
            return 0.0
        cosine = float(a @ b) / norm
        return (cosine + 1.0) / 2.0

    def __repr__(self) -> str:
        return f"LineEmbedding(nodes={len(self.nodes)}, dims={self.dimensions}, order={self.order})"
