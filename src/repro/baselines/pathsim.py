"""PathSim (Sun et al. [37]) — meta-path-based similarity for HINs.

PathSim fixes a symmetric meta-path ``P = (l_1, ..., l_k, l_k, ..., l_1)``
and scores

    ``s(u, v) = 2 * M[u, v] / (M[u, u] + M[v, v])``

where ``M = A_P @ A_P.T`` is the commuting matrix of the half-path
``A_P = A_{l_1} @ ... @ A_{l_k}`` (``A_l`` = adjacency restricted to edges
labelled ``l``).  The caller supplies the half-path labels; choosing them
requires exactly the a-priori dataset knowledge the paper criticises
meta-path approaches for.  :meth:`PathSim.from_all_labels` builds the
label-agnostic 1-hop variant (half-path = any single edge) used when no
meta-path is specified.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node


class PathSim:
    """Commuting-matrix PathSim over an explicit half meta-path."""

    def __init__(self, graph: HIN, meta_path: Sequence[str]) -> None:
        if not meta_path:
            raise ConfigurationError("meta_path must contain at least one edge label")
        self.graph = graph
        self.meta_path = list(meta_path)
        nodes = list(graph.nodes())
        self.nodes = nodes
        self._position = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        half = np.eye(n)
        for label in self.meta_path:
            adjacency = np.zeros((n, n))
            for source, target, weight, edge_label in graph.edges():
                if edge_label == label:
                    adjacency[self._position[source], self._position[target]] = weight
            half = half @ adjacency
        self._commuting = half @ half.T

    @classmethod
    def from_all_labels(cls, graph: HIN) -> "PathSim":
        """Label-agnostic variant: half-path = one hop over any edge."""
        instance = cls.__new__(cls)
        instance.graph = graph
        instance.meta_path = ["*"]
        nodes = list(graph.nodes())
        instance.nodes = nodes
        instance._position = {node: i for i, node in enumerate(nodes)}
        n = len(nodes)
        half = np.zeros((n, n))
        for source, target, weight, _ in graph.edges():
            half[instance._position[source], instance._position[target]] = weight
        instance._commuting = half @ half.T
        return instance

    def similarity(self, u: Node, v: Node) -> float:
        """Return the PathSim score (0 when either self-count is 0)."""
        if u == v:
            return 1.0
        i = self._position[u]
        j = self._position[v]
        denominator = self._commuting[i, i] + self._commuting[j, j]
        if denominator <= 0:
            return 0.0
        return float(2.0 * self._commuting[i, j] / denominator)

    def __repr__(self) -> str:
        return f"PathSim(meta_path={self.meta_path}, nodes={len(self.nodes)})"
