"""Naive structure/semantics combiners (the Multiplication and Average
competitors of Section 5.3).

Both take two independent score oracles — in the paper, SimRank for
structure and Lin for semantics — and merge them *after the fact*:

* ``Multiplication``: ``struct(u, v) * sem(u, v)``;
* ``Average``: ``(struct(u, v) + sem(u, v)) / 2``.

They exist as the paper's strawmen for SemSim's interwoven recursion; every
Section-5.3 task shows them trailing the recursive combination.
"""

from __future__ import annotations

from typing import Callable

from repro.hin.graph import Node

ScoreOracle = Callable[[Node, Node], float]


class _Combiner:
    def __init__(self, structural: ScoreOracle, semantic: ScoreOracle) -> None:
        self.structural = structural
        self.semantic = semantic

    def similarity(self, u: Node, v: Node) -> float:
        """Return the combined score of the pair."""
        raise NotImplementedError


class MultiplicationMeasure(_Combiner):
    """Product of independent structural and semantic scores."""

    def similarity(self, u: Node, v: Node) -> float:
        """Return ``struct(u, v) * sem(u, v)``."""
        if u == v:
            return 1.0
        return self.structural(u, v) * self.semantic(u, v)

    def __repr__(self) -> str:
        return "MultiplicationMeasure()"


class AverageMeasure(_Combiner):
    """Mean of independent structural and semantic scores."""

    def similarity(self, u: Node, v: Node) -> float:
        """Return ``(struct(u, v) + sem(u, v)) / 2``."""
        if u == v:
            return 1.0
        return 0.5 * (self.structural(u, v) + self.semantic(u, v))

    def __repr__(self) -> str:
        return "AverageMeasure()"
