"""repro — a reproduction of "Boosting SimRank with Semantics" (EDBT 2019).

SemSim is a modular variant of SimRank that weights the recursive
neighbour-similarity computation with edge weights and a pluggable semantic
similarity measure.  This package implements the measure, its random
surfer-pairs model, the Importance-Sampling Monte-Carlo framework with
pruning, the baselines the paper compares against, synthetic stand-ins for
its datasets, and the evaluation tasks — see DESIGN.md for the full map.

Quick start
-----------
>>> from repro import QueryEngine
>>> from repro.datasets import figure1_network
>>> data = figure1_network()
>>> engine = QueryEngine(data.graph, data.measure, method="iterative",
...                      decay=0.8, max_iterations=3)
>>> engine.score("John", "Aditi") > engine.score("Bo", "Aditi")
True
"""

from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    GraphError,
    MeasureAxiomError,
    ReproError,
    TaxonomyError,
)
from repro.hin import HIN, HINBuilder
from repro.taxonomy import Taxonomy
from repro.semantics import (
    CachedMeasure,
    ConstantMeasure,
    JiangConrathMeasure,
    LinMeasure,
    MatrixMeasure,
    ResnikMeasure,
    SemanticMeasure,
    validate_measure,
)
from repro.core import (
    MonteCarloSemSim,
    MonteCarloSimRank,
    SemSim,
    SimRank,
    SlingIndex,
    WalkIndex,
    WalkPolicy,
    semsim_scores,
    simrank_scores,
    top_k_similar,
)
from repro.store import ArtifactStore, StoreError
from repro.api import QueryEngine

__version__ = "1.0.0"

__all__ = [
    "ReproError",
    "GraphError",
    "TaxonomyError",
    "MeasureAxiomError",
    "ConfigurationError",
    "ConvergenceError",
    "HIN",
    "HINBuilder",
    "Taxonomy",
    "SemanticMeasure",
    "LinMeasure",
    "ResnikMeasure",
    "JiangConrathMeasure",
    "ConstantMeasure",
    "CachedMeasure",
    "MatrixMeasure",
    "validate_measure",
    "SemSim",
    "SimRank",
    "semsim_scores",
    "simrank_scores",
    "WalkIndex",
    "WalkPolicy",
    "MonteCarloSemSim",
    "MonteCarloSimRank",
    "SlingIndex",
    "top_k_similar",
    "ArtifactStore",
    "StoreError",
    "QueryEngine",
    "__version__",
]
