"""Shared pieces of the linearized engine family's series algebra.

Both members of the family rest on the same geometric-series view of the
fixed point: with decay ``c < 1`` every term contributed by walks longer
than ``T`` steps is bounded by the tail ``c^{T+1} / (1 - c)``, so a
finite horizon with a *provable* truncation error replaces the infinite
recurrence.  :func:`series_terms` turns a tolerance into that horizon;
:func:`normalized_transition` builds the column-stochastic in-edge
transition ``P`` (``P[a, u] = W(a, u) / Σ_b W(b, u)``) that the low-rank
kernel iterates, as a sparse CSR matrix so no engine in this family ever
materialises an N×N dense operator.
"""

from __future__ import annotations

import math

import numpy as np
import scipy.sparse as sp

from repro.core.params import validate_decay
from repro.errors import ConfigurationError
from repro.hin.graph import GraphIndex


def series_terms(decay: float, tolerance: float) -> int:
    """Smallest horizon ``T`` with geometric tail ``c^{T+1}/(1-c) <= tol``.

    Walks of length ``> T`` (equivalently, series terms ``k > T``)
    contribute at most the returned tail to any similarity value, so an
    engine that truncates at ``T`` steps carries a provable error bound.
    """
    decay = validate_decay(decay)
    tolerance = float(tolerance)
    if tolerance <= 0.0:
        raise ConfigurationError(
            f"tolerance must be positive, got {tolerance}"
        )
    needed = math.log(tolerance * (1.0 - decay)) / math.log(decay) - 1.0
    return max(1, int(math.ceil(needed)))


def series_tail(decay: float, terms: int) -> float:
    """Truncation error bound ``c^{T+1} / (1 - c)`` of a ``T``-term series."""
    return decay ** (terms + 1) / (1.0 - decay)


def normalized_transition(
    index: GraphIndex, *, use_weights: bool = True
) -> sp.csr_matrix:
    """Column-normalized in-edge transition ``P`` of *index*, as CSR.

    ``P[a, u] = W(a, u) / Σ_b W(b, u)`` — column ``u`` is the probability
    of a reverse surfer at ``u`` stepping to in-neighbour ``a``.  Columns
    of in-degree-0 nodes are all-zero (the surfer stops), matching the
    dense engines' treatment of empty in-neighbourhoods.  With
    ``use_weights=False`` edges count uniformly (the classic SimRank
    convention used whenever no semantic measure is attached).
    """
    n = index.num_nodes
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    data: list[np.ndarray] = []
    for u in range(n):
        sources = index.in_lists[u]
        if not sources.size:
            continue
        if use_weights:
            weights = np.asarray(index.in_weights[u], dtype=np.float64)
        else:
            weights = np.ones(sources.size, dtype=np.float64)
        total = weights.sum()
        if total <= 0.0:
            continue
        rows.append(sources)
        cols.append(np.full(sources.size, u, dtype=np.int64))
        data.append(weights / total)
    if not rows:
        return sp.csr_matrix((n, n), dtype=np.float64)
    matrix = sp.csr_matrix(
        (
            np.concatenate(data),
            (np.concatenate(rows), np.concatenate(cols)),
        ),
        shape=(n, n),
        dtype=np.float64,
    )
    matrix.sum_duplicates()
    return matrix
