"""Low-rank factored SemSim: rank-r offline factors, O(r) per pair online.

Follows the low-rank SimRank line of work (see PAPERS.md).  The held
object is always a symmetric *meeting kernel* ``H ≈ U diag(λ) Uᵀ`` with
unit diagonal; a pair score is one length-r dot product re-weighted by
the semantics at query time,

    ``score(u, v) = sem(u, v) · clip(H_r[u, v])``,

with the Prop. 2.5 θ cutoff applied to ``sem`` exactly as in the MC
estimator and the identity pinned to 1.  What ``H`` is depends on the
build path (below); on the decoupled path it solves

    ``H = c · Pᵀ H P + D``    ⇒    ``H = Σ_{k=0}^{∞} c^k (Pᵀ)^k D P^k``

where ``P`` is the column-normalized in-edge transition and
``D = diag(d)`` absorbs the diagonal pinning; the series is truncated at
``T = series_terms(c, tol)`` terms (tail ≤ tol).
``benchmarks/bench_lowrank_accuracy.py`` measures both paths against the
exact engines.

Two build paths:

* **dense-exact** (``n ≤ dense_limit``): the *sem-embedded* surfer-pair
  kernel is factored directly.  By the surfer-pair identity
  ``SemSim(u, v) = sem(u, v) · h(u, v)`` (the same identity the
  :mod:`~repro.linear.solver` linearizes), ``h = S ⊘ sem`` is recovered
  from the dense fixed point ``S`` and eigendecomposed — so a full-rank
  factorization reproduces the iterative engine exactly, and rank
  truncations of the one decomposition are Eckart–Young optimal (the
  error-vs-rank curve is monotone by construction, decaying to zero).
* **randomized** (large ``n``): the semantics are decoupled from the
  recurrence (``sem ≡ 1`` inside it, the series kernel above with
  ``d = (1 − c)·1``), and a seeded Gaussian range finder touches that
  kernel only through matvecs (``O(T · n · block)`` working memory,
  never N×N).  Decoupling is this path's one approximation beyond rank
  truncation.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.backends.base import kernel_timer
from repro.core.montecarlo import EstimatorStats
from repro.core.params import validate_decay, validate_theta
from repro.errors import ConfigurationError, NodeNotFoundError
from repro.hin.graph import HIN, GraphIndex, Node
from repro.linear.metrics import LOWRANK_RANK
from repro.linear.series import normalized_transition, series_terms
from repro.obs.registry import is_enabled
from repro.semantics.base import SemanticMeasure, semantic_matrix
from repro.semantics.cache import MatrixMeasure

DEFAULT_RANK = 16
DEFAULT_TOLERANCE = 1e-6
DEFAULT_DENSE_LIMIT = 1024
DEFAULT_OVERSAMPLE = 8
DEFAULT_BLOCK = 16


class LowRankSemSim:
    """Rank-r factored SemSim estimator: ``sem(u,v) · (U[i]·λ)·U[j]``.

    Construct through :meth:`build` (factorize a graph) or directly from
    persisted arrays (the store warm-start path).  Factors are kept
    exactly as given — possibly read-only mmap views — and never
    mutated.  With ``measure=None`` the estimator approximates classic
    unweighted SimRank (uniform edge mass, no gate).
    """

    method = "lowrank"

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure | None,
        factors: np.ndarray,
        eigenvalues: np.ndarray,
        diag: np.ndarray,
        *,
        decay: float = 0.6,
        theta: float | None = None,
        terms: int | None = None,
        exact_diagonal: bool = False,
        _index: GraphIndex | None = None,
    ) -> None:
        self.graph = graph
        self.measure = measure
        self.decay = validate_decay(decay)
        self.theta = validate_theta(theta)
        self.index = _index if _index is not None else GraphIndex.from_graph(graph)
        self._n = self.index.num_nodes
        self.factors = np.asarray(factors, dtype=np.float64)
        self.eigenvalues = np.asarray(eigenvalues, dtype=np.float64)
        self.diag = np.asarray(diag, dtype=np.float64)
        if self.factors.ndim != 2 or self.factors.shape[0] != self._n:
            raise ConfigurationError(
                f"factors must be ({self._n}, r), got {self.factors.shape}"
            )
        if self.eigenvalues.shape != (self.factors.shape[1],):
            raise ConfigurationError(
                "eigenvalues must align with the factor columns: "
                f"{self.eigenvalues.shape} vs rank {self.factors.shape[1]}"
            )
        self.terms = terms
        self.exact_diagonal = bool(exact_diagonal)
        self._sem_matrix: np.ndarray | None = None
        if isinstance(measure, MatrixMeasure) and list(measure.nodes) == list(
            self.index.nodes
        ):
            self._sem_matrix = np.asarray(measure.matrix, dtype=np.float64)
        self.stats = EstimatorStats(method="lowrank", estimator="lowrank")
        if is_enabled():
            LOWRANK_RANK.set(self.rank)

    @property
    def rank(self) -> int:
        """Rank of the held factorization."""
        return int(self.factors.shape[1])

    # -- offline build -----------------------------------------------------

    @classmethod
    def build(
        cls,
        graph: HIN,
        measure: SemanticMeasure | None = None,
        *,
        decay: float = 0.6,
        theta: float | None = None,
        rank: int | None = None,
        seed: int | None = None,
        tolerance: float | None = None,
        dense_limit: int | None = None,
        oversample: int = DEFAULT_OVERSAMPLE,
        block: int = DEFAULT_BLOCK,
    ) -> "LowRankSemSim":
        """Factorize *graph* to rank ``min(rank, n)`` offline."""
        decay = validate_decay(decay)
        rank = DEFAULT_RANK if rank is None else int(rank)
        if rank < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank}")
        tolerance = DEFAULT_TOLERANCE if tolerance is None else float(tolerance)
        dense_limit = (
            DEFAULT_DENSE_LIMIT if dense_limit is None else int(dense_limit)
        )
        index = GraphIndex.from_graph(graph)
        n = index.num_nodes
        terms = series_terms(decay, tolerance)
        with kernel_timer("lowrank", "factorize"):
            if n == 0:
                factors = np.zeros((0, 0), dtype=np.float64)
                eigenvalues = np.zeros(0, dtype=np.float64)
                diag = np.zeros(0, dtype=np.float64)
                exact = True
            else:
                effective = min(rank, n)
                if n <= dense_limit:
                    kernel = _exact_pair_kernel(
                        graph, measure, index, decay, terms
                    )
                    diag = np.ones(n, dtype=np.float64)
                    values, vectors = np.linalg.eigh(kernel)
                    keep = np.argsort(-np.abs(values))[:effective]
                    factors = np.ascontiguousarray(vectors[:, keep])
                    eigenvalues = values[keep]
                    exact = True
                else:
                    transition = normalized_transition(
                        index, use_weights=measure is not None
                    )
                    diag = np.full(n, 1.0 - decay, dtype=np.float64)
                    factors, eigenvalues = _randomized_factors(
                        transition,
                        diag,
                        decay,
                        terms,
                        effective,
                        seed=0 if seed is None else int(seed),
                        oversample=max(0, int(oversample)),
                        block=max(1, int(block)),
                    )
                    exact = False
        return cls(
            graph,
            measure,
            factors,
            eigenvalues,
            diag,
            decay=decay,
            theta=theta,
            terms=terms,
            exact_diagonal=exact,
            _index=index,
        )

    def truncated(self, rank: int) -> "LowRankSemSim":
        """A cheaper view of the same factorization at a smaller rank.

        Factor columns are ordered by ``|λ|`` descending, so nested
        truncations reuse the leading columns (Eckart–Young on the
        dense-exact path).
        """
        rank = int(rank)
        if not 1 <= rank <= self.rank:
            raise ConfigurationError(
                f"rank must be in [1, {self.rank}], got {rank}"
            )
        return LowRankSemSim(
            self.graph,
            self.measure,
            self.factors[:, :rank],
            self.eigenvalues[:rank],
            self.diag,
            decay=self.decay,
            theta=self.theta,
            terms=self.terms,
            exact_diagonal=self.exact_diagonal,
            _index=self.index,
        )

    def reconstruct(self) -> np.ndarray:
        """Dense ``U diag(λ) Uᵀ`` (tests and error curves only — O(N²))."""
        return (self.factors * self.eigenvalues) @ self.factors.T

    # -- online queries ----------------------------------------------------

    def _resolve(self, node: Node) -> int:
        try:
            return self.index.position[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def _sem_row(self, i: int, cand_ids: np.ndarray) -> np.ndarray:
        if self.measure is None:
            return np.ones(cand_ids.size, dtype=np.float64)
        if self._sem_matrix is not None:
            return self._sem_matrix[i, cand_ids]
        nodes = self.index.nodes
        a = nodes[i]
        return np.fromiter(
            (
                1.0 if int(v) == i else float(
                    self.measure.similarity(a, nodes[int(v)])
                )
                for v in cand_ids
            ),
            dtype=np.float64,
            count=cand_ids.size,
        )

    def similarity(self, u: Node, v: Node) -> float:
        """Approximate SemSim of one pair from the factors (O(r))."""
        return float(self.similarity_batch(u, [v])[0])

    def similarity_batch(self, u: Node, candidates) -> np.ndarray:
        """Score *u* against *candidates* with one factor gather."""
        candidates = list(candidates)
        i = self._resolve(u)
        cand_ids = np.fromiter(
            (self._resolve(v) for v in candidates),
            dtype=np.int64,
            count=len(candidates),
        )
        with kernel_timer("lowrank", "query_batch"):
            scores = self._score_ids(i, cand_ids)
        self.stats.add(
            queries=len(candidates),
            batch_queries=1,
            batch_pairs=len(candidates),
            vectorized_pairs=len(candidates),
        )
        return scores

    def single_source(self, u: Node) -> dict[Node, float]:
        """The full approximate similarity row of *u*."""
        i = self._resolve(u)
        cand_ids = np.arange(self._n, dtype=np.int64)
        with kernel_timer("lowrank", "query_batch"):
            scores = self._score_ids(i, cand_ids)
        self.stats.add(
            queries=self._n,
            batch_queries=1,
            batch_pairs=self._n,
            vectorized_pairs=self._n,
        )
        return dict(zip(self.index.nodes, scores.tolist()))

    def _score_ids(self, i: int, cand_ids: np.ndarray) -> np.ndarray:
        values = (self.factors[i] * self.eigenvalues) @ self.factors[
            cand_ids
        ].T
        np.clip(values, 0.0, 1.0, out=values)
        sem = self._sem_row(i, cand_ids)
        scores = sem * values
        identity = cand_ids == i
        if self.theta is not None:
            gated = (sem <= self.theta) & ~identity
            hits = int(np.count_nonzero(gated))
            if hits:
                scores[gated] = 0.0
                self.stats.add(sem_gate_hits=hits)
        scores[identity] = 1.0
        return scores


# -- kernel algebra --------------------------------------------------------


def _exact_pair_kernel(
    graph: HIN,
    measure: SemanticMeasure | None,
    index: GraphIndex,
    decay: float,
    terms: int,
) -> np.ndarray:
    """The sem-embedded meeting kernel ``h = S ⊘ sem`` from the fixed point.

    By the surfer-pair identity ``S(u, v) = sem(u, v) · h(u, v)``,
    dividing the converged SemSim table by the semantic matrix recovers
    the exact meeting kernel (``h = S`` verbatim for classic SimRank).
    Entries where ``sem = 0`` carry no score mass and are set to 0; the
    diagonal is exactly 1.  Factoring *this* kernel makes a full-rank
    build reproduce the iterative engine bit-for-bit modulo fixed-point
    tolerance — the semantics never leave the recurrence.
    """
    from repro.core.semsim import semsim_scores
    from repro.core.simrank import simrank_scores

    iterations = max(100, terms + 20)
    if measure is None:
        result = simrank_scores(
            graph, decay=decay, tolerance=1e-12, max_iterations=iterations
        )
        kernel = np.asarray(result.matrix, dtype=np.float64).copy()
    else:
        result = semsim_scores(
            graph, measure, decay=decay, tolerance=1e-12,
            max_iterations=iterations,
        )
        scores = np.asarray(result.matrix, dtype=np.float64)
        sem = semantic_matrix(measure, list(result.nodes))
        kernel = np.divide(
            scores, sem, out=np.zeros_like(scores), where=sem > 0
        )
    order = [result.nodes.index(node) for node in index.nodes]
    if order != list(range(index.num_nodes)):
        kernel = kernel[np.ix_(order, order)]
    np.fill_diagonal(kernel, 1.0)
    return 0.5 * (kernel + kernel.T)


def _apply_kernel(
    transition: sp.csr_matrix,
    transpose: sp.csr_matrix,
    diag: np.ndarray,
    decay: float,
    terms: int,
    block_input: np.ndarray,
) -> np.ndarray:
    """``(Σ_k c^k (Pᵀ)^k D P^k) @ X`` for one column block, via matvecs."""
    powers = [np.asarray(block_input, dtype=np.float64)]
    for _ in range(terms):
        powers.append(transition @ powers[-1])
    result = diag[:, None] * powers[terms]
    for k in range(terms - 1, -1, -1):
        result = diag[:, None] * powers[k] + decay * (transpose @ result)
    return result


def _randomized_factors(
    transition: sp.csr_matrix,
    diag: np.ndarray,
    decay: float,
    terms: int,
    rank: int,
    *,
    seed: int,
    oversample: int,
    block: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Halko-style range finder over the series kernel, matvec-only."""
    n = transition.shape[0]
    transpose = transition.T.tocsr()
    sketch = min(n, rank + oversample)
    rng = np.random.default_rng(seed)
    probes = rng.standard_normal((n, sketch))

    def apply(matrix: np.ndarray) -> np.ndarray:
        out = np.empty_like(matrix, dtype=np.float64)
        for start in range(0, matrix.shape[1], block):
            stop = min(start + block, matrix.shape[1])
            out[:, start:stop] = _apply_kernel(
                transition, transpose, diag, decay, terms,
                matrix[:, start:stop],
            )
        return out

    basis, _ = np.linalg.qr(apply(probes))
    small = basis.T @ apply(basis)
    small = 0.5 * (small + small.T)
    values, vectors = np.linalg.eigh(small)
    keep = np.argsort(-np.abs(values))[:rank]
    factors = np.ascontiguousarray(basis @ vectors[:, keep])
    return factors, values[keep]
