"""Metric families of the linearized / low-rank engine family.

Registered once here (mirroring :mod:`repro.core.metrics`) so the
per-query solver, the offline factorizer and the serve fallback ladder
share series instead of re-registering, and so ``docs/observability.md``
has one source of truth:

``linear_solve_iterations_total``
    Jacobi sweeps spent across all linearized single-source solves;
``linear_residual``
    declared error bound (truncation tail + contraction residual) the
    latest linearized solve stopped on;
``linear_pair_states``
    reachable pair states discovered per solve — the solver's actual
    memory footprint, the number an operator compares against
    ``max_states`` before raising the guard;
``lowrank_rank``
    rank of the most recently built or restored low-rank factorization.
"""

from __future__ import annotations

from repro.obs.registry import get_registry

_REGISTRY = get_registry()

LINEAR_SOLVE_ITERATIONS = _REGISTRY.counter(
    "linear_solve_iterations_total",
    help="Jacobi sweeps spent by linearized single-source solves, "
    "process-wide.",
)
LINEAR_RESIDUAL = _REGISTRY.gauge(
    "linear_residual",
    help="Declared error bound (geometric truncation tail + contraction "
    "residual) the latest linearized single-source solve stopped on.",
)
LINEAR_PAIR_STATES = _REGISTRY.histogram(
    "linear_pair_states",
    help="Reachable canonical pair states discovered per linearized "
    "single-source solve — the solve's memory footprint.",
    buckets=(16, 64, 256, 1024, 4096, 16384, 65536, 262144, 1048576),
)
LOWRANK_RANK = _REGISTRY.gauge(
    "lowrank_rank",
    help="Rank of the most recently built or restored low-rank SemSim "
    "factorization.",
)
