"""Linearized & low-rank engine family: SemSim beyond the N×N ceiling.

Third engine family beside :mod:`repro.core.iterative` (dense all-pairs)
and :mod:`repro.core.montecarlo` (walk-tensor MC):

* :class:`LinearSemSim` — per-query linearized solver over the reachable
  pair states only, exact up to a declared residual bound, O(reachable
  states) memory;
* :class:`LowRankSemSim` — offline rank-r factorization, O(n·r) memory
  and O(r) per pair online, with a measured error-vs-rank trade-off.

Shared series algebra lives in :mod:`repro.linear.series`; metric
families in :mod:`repro.linear.metrics`.
"""

from repro.linear.lowrank import LowRankSemSim
from repro.linear.series import (
    normalized_transition,
    series_tail,
    series_terms,
)
from repro.linear.solver import LinearSemSim, LinearSolveReport

__all__ = [
    "LinearSemSim",
    "LinearSolveReport",
    "LowRankSemSim",
    "normalized_transition",
    "series_tail",
    "series_terms",
]
