"""Linearized single-source SemSim: one row as a sparse local linear system.

The dense engines answer a single-source query by solving for the whole
N×N table first.  This solver instead rewrites the fixed point through
the paper's surfer-pair identity (Theorem 3.3)

    ``SemSim(u, v) = sem(u, v) · h(u, v)``,    ``h = c · T h``

with ``h = 1`` on singleton states ``(w, w)`` and ``T`` the
semantic-aware pair transition whose mass from ``(u, v)`` to ``(a, b)``
is ``W(a, u) · W(b, v) · sem(a, b)``, row-normalized (exactly the
formulation :mod:`repro.core.pair_engine` materialises globally).  For
one query row only the pair states *reachable* from the seed states
``{(q, v)}`` matter, and the decay caps how far reachability matters:

* **horizon** — states first reached after ``T = series_terms(c, tol/2)``
  steps contribute at most the geometric tail ``c^{T+1}/(1-c)`` to any
  seed value, so breadth-first discovery stops there;
* **residual stop** — the Jacobi update ``h ← c · (T h)`` is a
  ``c``-contraction in the sup norm, so
  ``‖h* − h_k‖∞ ≤ c/(1−c) · ‖h_k − h_{k−1}‖∞`` and iteration stops when
  that bound drops under ``tol/2``;
* **declared bound** — every solve reports
  ``residual_bound = tail + contraction`` in its
  :class:`LinearSolveReport`; the property suite holds the solver to it
  against the dense iterative oracle.

Pair states are canonicalised to ``(min, max)`` — ``h`` is symmetric
under swapping because the transition mass from ``(u, v)`` to ``(a, b)``
equals the mass from ``(v, u)`` to ``(b, a)`` — which halves the state
space.  Memory is O(discovered states); ``max_states`` turns the
pathological dense-neighbourhood blow-up into a clear
:class:`~repro.errors.ConfigurationError` instead of an OOM.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.backends.base import kernel_timer
from repro.core.metrics import ENGINE_FINAL_RESIDUAL
from repro.core.montecarlo import EstimatorStats
from repro.core.params import validate_decay, validate_theta
from repro.errors import ConfigurationError, NodeNotFoundError
from repro.hin.graph import HIN, GraphIndex, Node
from repro.linear.metrics import (
    LINEAR_PAIR_STATES,
    LINEAR_RESIDUAL,
    LINEAR_SOLVE_ITERATIONS,
)
from repro.linear.series import series_tail, series_terms
from repro.obs.registry import is_enabled
from repro.semantics.base import SemanticMeasure
from repro.semantics.cache import MatrixMeasure

DEFAULT_TOLERANCE = 1e-7
DEFAULT_MAX_STATES = 2_000_000


@dataclass(slots=True)
class LinearSolveReport:
    """Accuracy accounting of one linearized single-source solve."""

    states: int
    depth: int
    iterations: int
    contraction: float
    tail: float
    converged: bool

    @property
    def residual_bound(self) -> float:
        """Provable sup-norm bound on ``|score − exact fixed point|``."""
        return self.contraction + self.tail


class LinearSemSim:
    """Per-query linearized SemSim solver over lazily discovered pair states.

    Drop-in estimator interface (``similarity`` / ``similarity_batch`` /
    ``single_source``) matching the MC estimators, exact up to the
    declared ``residual_bound`` of each solve.  With ``measure=None`` the
    solver computes classic *unweighted* SimRank (``sem ≡ 1``, uniform
    edge mass), mirroring the dense engines' convention.
    """

    method = "linear"

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure | None = None,
        *,
        decay: float = 0.6,
        theta: float | None = None,
        tolerance: float | None = None,
        max_iterations: int | None = None,
        max_states: int | None = None,
        _index: GraphIndex | None = None,
    ) -> None:
        self.graph = graph
        self.measure = measure
        self.decay = validate_decay(decay)
        self.theta = validate_theta(theta)
        self.tolerance = (
            DEFAULT_TOLERANCE if tolerance is None else float(tolerance)
        )
        if self.tolerance <= 0.0:
            raise ConfigurationError(
                f"tolerance must be positive, got {self.tolerance}"
            )
        if max_iterations is not None and int(max_iterations) < 1:
            raise ConfigurationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.max_iterations = (
            None if max_iterations is None else int(max_iterations)
        )
        self.max_states = (
            DEFAULT_MAX_STATES if max_states is None else int(max_states)
        )
        if self.max_states < 1:
            raise ConfigurationError(
                f"max_states must be >= 1, got {self.max_states}"
            )
        self.index = _index if _index is not None else GraphIndex.from_graph(graph)
        self._n = self.index.num_nodes
        if measure is None:
            self._in_weights = [
                np.ones(lst.size, dtype=np.float64)
                for lst in self.index.in_lists
            ]
        else:
            self._in_weights = [
                np.asarray(w, dtype=np.float64) for w in self.index.in_weights
            ]
        self._sem_matrix: np.ndarray | None = None
        if isinstance(measure, MatrixMeasure) and list(measure.nodes) == list(
            self.index.nodes
        ):
            self._sem_matrix = np.asarray(measure.matrix, dtype=np.float64)
        self._sem_memo: dict[int, float] = {}
        # Half the budget buys the horizon, half the iteration stop.
        self.depth = series_terms(self.decay, self.tolerance / 2.0)
        self.stats = EstimatorStats(method="linear", estimator="linear")
        self.last_report: LinearSolveReport | None = None

    # -- semantics ---------------------------------------------------------

    def _sem_values(self, a_ids: np.ndarray, b_ids: np.ndarray) -> np.ndarray:
        """``sem(nodes[a], nodes[b])`` per position, memoised when scalar."""
        if self.measure is None:
            return np.ones(a_ids.size, dtype=np.float64)
        if self._sem_matrix is not None:
            return self._sem_matrix[a_ids, b_ids]
        out = np.empty(a_ids.size, dtype=np.float64)
        n = self._n
        nodes = self.index.nodes
        memo = self._sem_memo
        for pos in range(a_ids.size):
            a = int(a_ids[pos])
            b = int(b_ids[pos])
            if a == b:
                out[pos] = 1.0
                continue
            key = (a * n + b) if a < b else (b * n + a)
            value = memo.get(key)
            if value is None:
                value = float(self.measure.similarity(nodes[a], nodes[b]))
                memo[key] = value
            out[pos] = value
        return out

    # -- public estimator surface -----------------------------------------

    def similarity(self, u: Node, v: Node) -> float:
        """SemSim score of one pair, solved through the query-``u`` row."""
        value = float(self.similarity_batch(u, [v])[0])
        return value

    def similarity_batch(self, u: Node, candidates) -> np.ndarray:
        """Score *u* against *candidates* with one local pair-system solve."""
        candidates = list(candidates)
        scores = self._solve_row(u, candidates)
        self.stats.add(
            queries=len(candidates),
            batch_queries=1,
            batch_pairs=len(candidates),
        )
        return scores

    def single_source(self, u: Node) -> dict[Node, float]:
        """The full similarity row of *u*, as ``{node: score}``."""
        scores = self._solve_row(u, None)
        self.stats.add(
            queries=self._n, batch_queries=1, batch_pairs=self._n
        )
        return dict(zip(self.index.nodes, scores.tolist()))

    # -- the solve ---------------------------------------------------------

    def _resolve(self, node: Node) -> int:
        try:
            return self.index.position[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def _solve_row(self, u: Node, candidates) -> np.ndarray:
        query = self._resolve(u)
        if candidates is None:
            cand_ids = np.arange(self._n, dtype=np.int64)
        else:
            cand_ids = np.fromiter(
                (self._resolve(v) for v in candidates),
                dtype=np.int64,
                count=len(candidates),
            )
        with kernel_timer("linear", "pair_solve"):
            scores, report = self._solve(query, cand_ids)
        self.last_report = report
        if is_enabled():
            LINEAR_SOLVE_ITERATIONS.inc(report.iterations)
            LINEAR_RESIDUAL.set(report.residual_bound)
            LINEAR_PAIR_STATES.observe(report.states)
            ENGINE_FINAL_RESIDUAL.labels(engine="linear").set(
                report.residual_bound
            )
        return scores

    def _solve(
        self, query: int, cand_ids: np.ndarray
    ) -> tuple[np.ndarray, LinearSolveReport]:
        n = self._n
        sem_q = self._sem_values(
            np.full(cand_ids.size, query, dtype=np.int64), cand_ids
        )
        identity = cand_ids == query
        if self.theta is not None:
            gated = (sem_q <= self.theta) & ~identity
        else:
            gated = np.zeros(cand_ids.size, dtype=bool)
        gate_hits = int(np.count_nonzero(gated))
        if gate_hits:
            self.stats.add(sem_gate_hits=gate_hits)

        # Seed the system with the canonical states of the ungated,
        # non-identity query pairs.
        state_index: dict[int, int] = {}
        order: list[int] = []

        seed_keys = np.empty(cand_ids.size, dtype=np.int64)
        frontier: list[int] = []
        for pos in range(cand_ids.size):
            if gated[pos] or identity[pos]:
                seed_keys[pos] = -1
                continue
            v = int(cand_ids[pos])
            lo, hi = (query, v) if query < v else (v, query)
            key = lo * n + hi
            seed_keys[pos] = key
            if key not in state_index:
                idx = len(order)
                state_index[key] = idx
                order.append(key)
                frontier.append(idx)

        rows: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        depth_used = 0
        truncated = False
        for depth in range(self.depth):
            if not frontier:
                break
            depth_used = depth + 1
            next_frontier: list[int] = []
            for idx in frontier:
                key = order[idx]
                lo, hi = divmod(key, n)
                if lo == hi:
                    continue  # singleton: pinned h = 1, no outgoing row
                row = self._expand(
                    lo, hi, state_index, order, next_frontier
                )
                if row is not None:
                    rows[idx] = row
            if len(state_index) > self.max_states:
                raise ConfigurationError(
                    f"linearized solve for node id {query} discovered "
                    f"{len(state_index)} pair states, over the "
                    f"max_states={self.max_states} memory guard; raise the "
                    "budget via QueryEngine(estimator='linear', "
                    "max_states=...), loosen tolerance, or use the mc or "
                    "lowrank estimator for this graph"
                )
            frontier = next_frontier
        if frontier:
            # States at the horizon keep h = 0: their true value is
            # bounded by the geometric tail, which we charge to the bound.
            truncated = True

        m = len(order)
        singleton = np.fromiter(
            ((key // n) == (key % n) for key in order),
            dtype=bool,
            count=m,
        )
        h = singleton.astype(np.float64)
        iterations = 0
        contraction = 0.0
        converged = True
        if m and not bool(singleton.all()):
            transition = self._assemble(rows, m)
            factor = self.decay / (1.0 - self.decay)
            budget = (
                self.max_iterations
                if self.max_iterations is not None
                else self.depth + 16
            )
            converged = False
            for _ in range(budget):
                updated = self.decay * (transition @ h)
                updated[singleton] = 1.0
                delta = float(np.max(np.abs(updated - h)))
                h = updated
                iterations += 1
                contraction = factor * delta
                if contraction <= self.tolerance / 2.0:
                    converged = True
                    break

        tail = series_tail(self.decay, depth_used) if truncated else 0.0
        report = LinearSolveReport(
            states=m,
            depth=depth_used,
            iterations=iterations,
            contraction=contraction,
            tail=tail,
            converged=converged,
        )

        scores = np.zeros(cand_ids.size, dtype=np.float64)
        for pos in range(cand_ids.size):
            if identity[pos]:
                scores[pos] = 1.0
            elif seed_keys[pos] >= 0:
                value = sem_q[pos] * h[state_index[int(seed_keys[pos])]]
                scores[pos] = min(1.0, max(0.0, float(value)))
        return scores, report

    def _expand(
        self,
        lo: int,
        hi: int,
        state_index: dict[int, int],
        order: list[int],
        next_frontier: list[int],
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Build the normalized transition row of pair state ``(lo, hi)``."""
        src_a = self.index.in_lists[lo]
        src_b = self.index.in_lists[hi]
        if not src_a.size or not src_b.size:
            return None  # empty in-neighbourhood: h(lo, hi) = 0 exactly
        w_a = self._in_weights[lo]
        w_b = self._in_weights[hi]
        a_ids = np.repeat(src_a, src_b.size)
        b_ids = np.tile(src_b, src_a.size)
        mass = np.repeat(w_a, src_b.size) * np.tile(w_b, src_a.size)
        mass = mass * self._sem_values(a_ids, b_ids)
        total = float(mass.sum())
        if total <= 0.0:
            return None
        lo_t = np.minimum(a_ids, b_ids)
        hi_t = np.maximum(a_ids, b_ids)
        keys = lo_t * self._n + hi_t
        uniq, inverse = np.unique(keys, return_inverse=True)
        probs = np.zeros(uniq.size, dtype=np.float64)
        np.add.at(probs, inverse, mass)
        probs /= total
        columns = np.empty(uniq.size, dtype=np.int64)
        for pos in range(uniq.size):
            key = int(uniq[pos])
            idx = state_index.get(key)
            if idx is None:
                idx = len(order)
                state_index[key] = idx
                order.append(key)
                next_frontier.append(idx)
            columns[pos] = idx
        return columns, probs

    def _assemble(
        self, rows: dict[int, tuple[np.ndarray, np.ndarray]], m: int
    ) -> sp.csr_matrix:
        indptr = np.zeros(m + 1, dtype=np.int64)
        chunks_idx: list[np.ndarray] = []
        chunks_dat: list[np.ndarray] = []
        for i in range(m):
            row = rows.get(i)
            if row is not None:
                columns, probs = row
                indptr[i + 1] = indptr[i] + columns.size
                chunks_idx.append(columns)
                chunks_dat.append(probs)
            else:
                indptr[i + 1] = indptr[i]
        indices = (
            np.concatenate(chunks_idx)
            if chunks_idx
            else np.empty(0, dtype=np.int64)
        )
        data = (
            np.concatenate(chunks_dat)
            if chunks_dat
            else np.empty(0, dtype=np.float64)
        )
        return sp.csr_matrix((data, indices, indptr), shape=(m, m))
