"""Deterministic fault injection over the :mod:`repro.store.hooks` seam.

Three tools, all fully seeded and sleep-free:

:class:`VirtualClock`
    A fake monotonic clock.  The serving layer takes ``clock``/``sleep``
    injectables, so deadline math, backoff waits, latency spikes and
    clock skew all run against virtual time — the whole failure campaign
    executes in milliseconds of real time.

:class:`FaultRule` / :class:`FaultInjector`
    A schedule of I/O faults.  Each rule names a store operation
    (``"artifact.read"``, ``"walks.load"``, ... — see
    :data:`repro.store.hooks.OPERATIONS`), which invocation indices it
    fires on, and what happens: raise an error (default: ``EIO``), add
    latency to the virtual clock, or skew it.  ``FaultInjector.seeded``
    builds a pseudo-random but **replayable** schedule from one integer
    seed — the property-campaign workhorse.

File corruptors (:func:`truncate_file`, :func:`truncate_npz_member`,
:func:`corrupt_manifest`)
    Deterministic on-disk damage: the truncated ``.npz``, the mid-write
    crash that left a half manifest.  These simulate faults that happened
    *before* the process under test started, where the hook seam cannot
    reach.
"""

from __future__ import annotations

import errno
import json
import random
import time
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Sequence

from repro.store.hooks import OPERATIONS, set_io_hook

#: Real-sleep ceiling used when an injector has no virtual clock: latency
#: spikes are capped here so no test ever stalls (the ISSUE's 50 ms rule).
MAX_REAL_SLEEP = 0.05


def eio_error(path: Path | str | None = None) -> OSError:
    """A fresh injected ``EIO`` (the canonical 'disk went away' errno)."""
    return OSError(errno.EIO, "injected I/O error", str(path) if path else None)


class VirtualClock:
    """A monotonic-ish clock the test owns.

    Calling the instance returns the current virtual time;
    :meth:`advance` moves it (negative = clock skew); :meth:`sleep` is a
    drop-in for ``time.sleep`` that advances the clock instead of
    blocking and records every requested duration in :attr:`slept`.
    """

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)
        self.slept: list[float] = []

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        """Move virtual time by *seconds* (negative models clock skew)."""
        self.now += seconds

    def sleep(self, seconds: float) -> None:
        """Record the request and advance instead of blocking."""
        self.slept.append(seconds)
        if seconds > 0:
            self.now += seconds

    def __repr__(self) -> str:
        return f"VirtualClock(now={self.now:.6f}, sleeps={len(self.slept)})"


@dataclass(frozen=True)
class FaultRule:
    """One scheduled fault.

    Parameters
    ----------
    operation:
        A :data:`repro.store.hooks.OPERATIONS` name, or ``"*"`` for all.
    at:
        Zero-based invocation indices (per operation) the rule fires on;
        ``None`` fires on every invocation.
    kind:
        ``"error"`` raises :attr:`error` (built per firing so tracebacks
        never alias), ``"latency"`` delays by :attr:`delay` seconds,
        ``"clock_skew"`` jumps the virtual clock by :attr:`skew`.
    """

    operation: str
    at: tuple[int, ...] | None = None
    kind: str = "error"
    error: Callable[[Path], BaseException] = field(default=eio_error, repr=False)
    delay: float = 0.0
    skew: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in ("error", "latency", "clock_skew"):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.operation != "*" and self.operation not in OPERATIONS:
            raise ValueError(
                f"unknown store operation {self.operation!r}; "
                f"choose from {OPERATIONS} or '*'"
            )

    def matches(self, operation: str, index: int) -> bool:
        """Return whether this rule fires on invocation *index* of *operation*."""
        if self.operation not in ("*", operation):
            return False
        return self.at is None or index in self.at


class FaultInjector:
    """Install a fault schedule on the store I/O seam (context manager).

    >>> from repro.testing import FaultInjector, FaultRule
    >>> with FaultInjector([FaultRule("walks.load", at=(0,))]) as faults:
    ...     pass  # first walk-tensor load inside raises EIO, later ones pass
    >>> faults.counts
    {}

    Every gated invocation is counted per operation (:attr:`counts`) and
    every fired fault is recorded (:attr:`injected` — ``(operation,
    index, kind)`` triples), so tests can assert not just outcomes but
    that the failure path actually ran.
    """

    def __init__(
        self,
        rules: Sequence[FaultRule] = (),
        *,
        clock: VirtualClock | None = None,
    ) -> None:
        self.rules = list(rules)
        self.clock = clock
        self.counts: dict[str, int] = {}
        self.injected: list[tuple[str, int, str]] = []
        self._previous = None
        self._installed = False

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        operations: Sequence[str] = ("artifact.read", "walks.load"),
        error_rate: float = 0.3,
        latency_rate: float = 0.0,
        latency: float = 0.01,
        horizon: int = 64,
        clock: VirtualClock | None = None,
    ) -> "FaultInjector":
        """Build a replayable pseudo-random fault schedule from *seed*.

        For each operation, invocation indices ``0..horizon-1`` are
        pre-drawn from ``random.Random(seed)`` — the schedule depends only
        on the seed and the arguments, never on call timing, so a failing
        campaign run replays exactly.
        """
        rng = random.Random(seed)
        rules: list[FaultRule] = []
        for operation in operations:
            errors = tuple(
                i for i in range(horizon) if rng.random() < error_rate
            )
            if errors:
                rules.append(FaultRule(operation, at=errors))
            if latency_rate > 0:
                spikes = tuple(
                    i for i in range(horizon) if rng.random() < latency_rate
                )
                if spikes:
                    rules.append(
                        FaultRule(operation, at=spikes, kind="latency",
                                  delay=latency)
                    )
        return cls(rules, clock=clock)

    # -- hook plumbing --------------------------------------------------
    def __enter__(self) -> "FaultInjector":
        self._previous = set_io_hook(self._gate)
        self._installed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        set_io_hook(self._previous)
        self._installed = False

    def _gate(self, operation: str, path: Path) -> None:
        index = self.counts.get(operation, 0)
        self.counts[operation] = index + 1
        for rule in self.rules:
            if not rule.matches(operation, index):
                continue
            if rule.kind == "latency":
                self.injected.append((operation, index, "latency"))
                if self.clock is not None:
                    self.clock.advance(rule.delay)
                else:
                    time.sleep(min(rule.delay, MAX_REAL_SLEEP))
            elif rule.kind == "clock_skew":
                self.injected.append((operation, index, "clock_skew"))
                if self.clock is not None:
                    self.clock.advance(rule.skew)
            else:
                self.injected.append((operation, index, "error"))
                raise rule.error(path)

    def invocations(self, operation: str) -> int:
        """How many times *operation* hit the seam while installed."""
        return self.counts.get(operation, 0)

    def __repr__(self) -> str:
        return (
            f"FaultInjector(rules={len(self.rules)}, "
            f"installed={self._installed}, fired={len(self.injected)})"
        )


# ----------------------------------------------------------------------
# On-disk corruptors — faults that predate the process under test.
# ----------------------------------------------------------------------

def truncate_file(path: str | Path, keep_fraction: float = 0.5) -> Path:
    """Truncate *path* to ``keep_fraction`` of its bytes (deterministic).

    Models a crash mid-write or a partially copied file.  Returns the
    path for chaining.
    """
    path = Path(path)
    size = path.stat().st_size
    keep = max(0, int(size * keep_fraction))
    with open(path, "r+b") as handle:
        handle.truncate(keep)
    return path


def truncate_npz_member(path: str | Path, member: str = "walks.npy") -> Path:
    """Rewrite an ``.npz`` with one member's payload cut short.

    Unlike :func:`truncate_file` (which breaks the zip central directory
    and fails at open), this produces an archive that *opens* fine but
    whose tensor bytes are missing — the nastier corruption, caught only
    by the loader's own validation.
    """
    path = Path(path)
    with zipfile.ZipFile(path) as archive:
        payload = {name: archive.read(name) for name in archive.namelist()}
    if member not in payload:
        raise KeyError(f"{path} has no member {member!r}")
    payload[member] = payload[member][: len(payload[member]) // 2]
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        for name, data in payload.items():
            archive.writestr(name, data)
    return path


def corrupt_manifest(artifact_dir: str | Path, mode: str = "truncate") -> Path:
    """Damage an artifact directory's ``manifest.json`` deterministically.

    ``mode="truncate"``
        cut the JSON in half — the classic mid-write crash that
        ``os.replace`` atomicity normally prevents but a dying disk can
        still produce;
    ``mode="remove"``
        delete the manifest outright (artifact no longer recognisable);
    ``mode="orphan"``
        keep the manifest but delete one referenced ``.npy`` file.
    """
    artifact_dir = Path(artifact_dir)
    manifest_path = artifact_dir / "manifest.json"
    if mode == "truncate":
        text = manifest_path.read_text(encoding="utf-8")
        manifest_path.write_text(text[: len(text) // 2], encoding="utf-8")
    elif mode == "remove":
        manifest_path.unlink()
    elif mode == "orphan":
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        arrays = sorted(manifest.get("arrays", {}))
        if not arrays:
            raise ValueError(f"{artifact_dir} stores no arrays to orphan")
        (artifact_dir / f"{arrays[0]}.npy").unlink()
    else:
        raise ValueError(f"unknown corruption mode {mode!r}")
    return artifact_dir
