"""``repro.testing`` — deterministic fault injection for the serving stack.

The serving layer (:mod:`repro.serve`) promises that a flaky disk, a
truncated walk tensor, or a slow artifact store ends in a retried success
or a clean degraded response — never a wrong score and never an unhandled
exception.  This package makes those promises *testable*: every failure is
a scheduled, seeded, replayable event injected through the
:mod:`repro.store.hooks` seam, so the regression suite drives each retry,
backoff, circuit-breaker transition, and degradation path on purpose.

Import cost is deliberately tiny (no numpy at module import) so shipping
it inside the library proper is free; nothing here runs unless a test
installs an injector.
"""

from repro.testing.faults import (
    FaultInjector,
    FaultRule,
    VirtualClock,
    corrupt_manifest,
    eio_error,
    truncate_file,
    truncate_npz_member,
)

__all__ = [
    "FaultInjector",
    "FaultRule",
    "VirtualClock",
    "corrupt_manifest",
    "eio_error",
    "truncate_file",
    "truncate_npz_member",
]
