"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by this library derive from
:class:`ReproError`, so callers can catch everything the library throws with a
single ``except`` clause while still letting programming errors
(``TypeError``, ``KeyError`` from misuse of plain dicts, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A structural problem with a graph (missing node, bad edge, ...)."""


class NodeNotFoundError(GraphError):
    """A referenced node does not exist in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError):
    """A referenced edge does not exist in the graph."""

    def __init__(self, source: object, target: object) -> None:
        super().__init__(f"edge {source!r} -> {target!r} is not in the graph")
        self.source = source
        self.target = target


class InvalidWeightError(GraphError):
    """An edge weight is not a strictly positive finite number."""


class TaxonomyError(ReproError):
    """A structural problem with a taxonomy (cycle, missing root, ...)."""


class MeasureAxiomError(ReproError):
    """A semantic measure violates one of the paper's three axioms.

    The axioms (Section 2.2) are: symmetry, maximum self-similarity
    (``sem(u, u) == 1``) and fixed value range (``sem(u, v) in (0, 1]``).
    """


class ConvergenceError(ReproError):
    """An iterative computation failed to converge within its budget."""

    def __init__(self, iterations: int, residual: float) -> None:
        super().__init__(
            f"did not converge after {iterations} iterations "
            f"(residual {residual:.3e})"
        )
        self.iterations = iterations
        self.residual = residual


class ConfigurationError(ReproError):
    """An invalid parameter combination was supplied."""


class StaleIndexError(ReproError):
    """An estimator was queried against a walk index mutated after it was built.

    Estimators snapshot edge weights (and lazily derived tables) at
    construction; serving them across a mutation would silently mis-score.
    Rebuild the estimator against the current index instead.
    """

    def __init__(self, recorded_epoch: int, current_epoch: int) -> None:
        super().__init__(
            f"walk index is at epoch {current_epoch} but this estimator "
            f"snapshotted epoch {recorded_epoch}; the graph was mutated "
            f"after the estimator was built — rebuild the estimator"
        )
        self.recorded_epoch = recorded_epoch
        self.current_epoch = current_epoch
