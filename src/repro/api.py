"""`repro.api` — the one-object query facade.

Everything the library can answer about node similarity — single pairs,
whole candidate sets, top-k search, similarity joins — is reachable through
one :class:`QueryEngine`.  The engine hides the moving parts the paper's
Section 4 pipeline needs (walk-index construction, proposal policy, the
semantic matrix that unlocks the vectorised batch path, estimator choice,
pruning thresholds) behind a single constructor:

>>> from repro.api import QueryEngine
>>> from repro.datasets import figure1_network
>>> data = figure1_network()
>>> engine = QueryEngine(data.graph, data.measure, method="iterative",
...                      decay=0.8, max_iterations=3)
>>> engine.score("John", "Aditi") > engine.score("Bo", "Aditi")
True

Two methods are available:

* ``method="mc"`` (default) — the scalable path: a
  :class:`~repro.core.walk_index.WalkIndex` (built in parallel when
  ``workers`` > 1, bit-identically to a serial build) feeding the
  Importance-Sampling estimator of Algorithm 1; queries run vectorised
  over stacked walk arrays.
* ``method="iterative"`` — the exact fixed-point solver of Section 2.3;
  queries become table lookups.  Right for small graphs and for checking
  the MC path.

Every engine owns a private :class:`~repro.core.montecarlo.EstimatorStats`
(nothing accumulates across engines); ``reset_stats()`` zeroes it between
measurement windows.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.bounds import plan_index
from repro.core.join import candidate_pairs, similarity_join
from repro.core.montecarlo import EstimatorStats, MonteCarloSemSim, MonteCarloSimRank
from repro.core.params import (
    resolve_legacy_kwargs,
    validate_decay,
    validate_length,
    validate_num_walks,
    validate_theta,
    validate_workers,
)
from repro.core.semsim import SemSim
from repro.core.simrank import SimRank
from repro.core.single_source import batch_similarity
from repro.core.topk import top_k_similar
from repro.core.walk_index import WalkIndex, WalkPolicy
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure
from repro.semantics.cache import MatrixMeasure

__all__ = [
    "QueryEngine",
    "EstimatorStats",
    "WalkPolicy",
    "batch_similarity",
    "similarity_join",
    "top_k_similar",
]

#: Above this node count ``materialize_semantics="auto"`` stops densifying
#: the semantic measure (the n×n matrix would dominate memory).
AUTO_MATERIALIZE_LIMIT = 4096


class QueryEngine:
    """Unified similarity-query facade over one graph.

    Parameters
    ----------
    graph:
        The HIN to query.
    measure:
        The semantic measure ``sem``; ``None`` drops the semantic layer and
        the engine answers plain SimRank queries instead.
    method:
        ``"mc"`` (scalable Monte-Carlo over a walk index, the default) or
        ``"iterative"`` (exact fixed point, table lookups).
    decay, num_walks, length, theta, seed:
        The five canonical knobs, validated identically to every
        underlying engine.  ``num_walks``/``length``/``seed`` only apply to
        ``method="mc"``; ``theta`` is the MC pruning threshold (``None``
        disables pruning).
    policy:
        MC proposal distribution (:class:`WalkPolicy`).
    workers:
        Threads for parallel walk-index construction; results are
        bit-identical to a serial build for the same seed.
    materialize_semantics:
        ``"auto"`` (default), ``True`` or ``False`` — whether to densify
        *measure* into a :class:`~repro.semantics.cache.MatrixMeasure` in
        index node order, which is what unlocks the fully vectorised batch
        path.  ``"auto"`` densifies up to ``AUTO_MATERIALIZE_LIMIT`` nodes.
    pair_index:
        Optional SLING-style ``SO`` cache forwarded to the MC estimator.
    max_iterations, tolerance:
        Fixed-point controls, only for ``method="iterative"`` (defaults
        follow :class:`~repro.core.semsim.SemSim`).
    """

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure | None = None,
        *,
        method: str = "mc",
        decay: float = 0.6,
        num_walks: int = 150,
        length: int = 15,
        theta: float | None = 0.05,
        seed: int | np.random.Generator | None = None,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        workers: int | None = None,
        materialize_semantics: bool | str = "auto",
        pair_index=None,
        max_iterations: int | None = None,
        tolerance: float | None = None,
        **legacy,
    ) -> None:
        params = resolve_legacy_kwargs(
            "QueryEngine",
            legacy,
            {
                "decay": decay,
                "num_walks": num_walks,
                "length": length,
                "theta": theta,
                "seed": seed,
            },
            defaults={
                "decay": 0.6,
                "num_walks": 150,
                "length": 15,
                "theta": 0.05,
                "seed": None,
            },
        )
        if method not in ("mc", "iterative"):
            raise ConfigurationError(
                f"method must be 'mc' or 'iterative', got {method!r}"
            )
        self.graph = graph
        self.method = method
        self.decay = validate_decay(params["decay"])
        self.num_walks = validate_num_walks(params["num_walks"])
        self.length = validate_length(params["length"])
        self.theta = validate_theta(params["theta"])
        self.policy = policy
        self.workers = validate_workers(workers)
        self.measure = self._prepare_measure(measure, materialize_semantics)

        self.walk_index: WalkIndex | None = None
        self._table: SemSim | SimRank | None = None
        if method == "mc":
            self.walk_index = WalkIndex(
                graph,
                num_walks=self.num_walks,
                length=self.length,
                policy=policy,
                seed=params["seed"],
                workers=self.workers,
            )
            if self.measure is None:
                self.estimator = MonteCarloSimRank(self.walk_index, decay=self.decay)
            else:
                self.estimator = MonteCarloSemSim(
                    self.walk_index,
                    self.measure,
                    decay=self.decay,
                    theta=self.theta,
                    pair_index=pair_index,
                )
            self.stats = self.estimator.stats
        else:
            iterative_kwargs = {}
            if max_iterations is not None:
                iterative_kwargs["max_iterations"] = max_iterations
            if tolerance is not None:
                iterative_kwargs["tolerance"] = tolerance
            if self.measure is None:
                self._table = SimRank(graph, decay=self.decay, **iterative_kwargs)
            else:
                self._table = SemSim(
                    graph, self.measure, decay=self.decay, **iterative_kwargs
                )
            self.estimator = self._table
            self.stats = EstimatorStats()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _prepare_measure(
        self, measure: SemanticMeasure | None, materialize: bool | str
    ) -> SemanticMeasure | None:
        if measure is None:
            return None
        if materialize not in (True, False, "auto"):
            raise ConfigurationError(
                "materialize_semantics must be True, False or 'auto', "
                f"got {materialize!r}"
            )
        nodes = list(self.graph.nodes())
        already = isinstance(measure, MatrixMeasure) and measure.nodes == nodes
        if already or materialize is False:
            return measure
        if materialize == "auto" and len(nodes) > AUTO_MATERIALIZE_LIMIT:
            return measure
        return MatrixMeasure.from_measure(measure, nodes)

    @classmethod
    def from_error_target(
        cls,
        graph: HIN,
        measure: SemanticMeasure | None = None,
        *,
        epsilon: float = 0.1,
        delta: float = 0.05,
        decay: float = 0.6,
        **kwargs,
    ) -> "QueryEngine":
        """Build an MC engine sized by the Prop. 4.2 ``(eps, delta)`` plan.

        ``num_walks`` and ``length`` come from
        :func:`repro.core.bounds.plan_index`; every other keyword is
        forwarded to the normal constructor.
        """
        num_walks, length = plan_index(decay, epsilon, delta, graph.num_nodes)
        return cls(
            graph,
            measure,
            method="mc",
            decay=decay,
            num_walks=num_walks,
            length=length,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def score(self, u: Node, v: Node) -> float:
        """Return ``sim(u, v)`` under the engine's configuration."""
        if self._table is not None:
            self.stats.queries += 1
            return self._table.similarity(u, v)
        return self.estimator.similarity(u, v)

    def score_batch(self, u: Node, candidates: Sequence[Node]) -> np.ndarray:
        """Return ``sim(u, v)`` for every candidate in one vectorised pass."""
        candidates = list(candidates)
        if self._table is not None:
            self.stats.queries += len(candidates)
            self.stats.batch_queries += 1
            self.stats.batch_pairs += len(candidates)
            self.stats.vectorized_pairs += len(candidates)
            matrix = self._table.result.matrix
            position = self._table._position
            row = position[u]
            cols = np.fromiter(
                (position[v] for v in candidates), dtype=np.int64,
                count=len(candidates),
            )
            return matrix[row, cols].astype(np.float64)
        return self.estimator.similarity_batch(u, candidates)

    def single_source(
        self, u: Node, candidates: Sequence[Node] | None = None
    ) -> dict[Node, float]:
        """Return ``{v: sim(u, v)}`` for every candidate (default: all)."""
        if candidates is None:
            candidates = list(self.graph.nodes())
        else:
            candidates = list(candidates)
        scores = self.score_batch(u, candidates)
        return {node: float(value) for node, value in zip(candidates, scores)}

    def top_k(
        self,
        u: Node,
        k: int,
        candidates: Sequence[Node] | None = None,
        use_semantic_bound: bool = True,
    ) -> list[tuple[Node, float]]:
        """Return the *k* nodes most similar to *u*, best first.

        With a semantic measure attached, candidates are scanned in
        decreasing ``sem`` order and the Prop. 2.5 bound stops the scan
        early; scoring runs through the batched path either way.
        """
        if candidates is None:
            candidates = list(self.graph.nodes())
        return top_k_similar(
            u,
            candidates,
            k,
            measure=self.measure,
            use_semantic_bound=use_semantic_bound,
            batch_score=self.score_batch,
        )

    def join(
        self,
        min_score: float,
        restrict_to: set[Node] | None = None,
    ) -> list[tuple[Node, Node, float]]:
        """Return all unordered pairs scoring above *min_score*, best first."""
        if self._table is not None:
            return self._join_from_table(min_score, restrict_to)
        return similarity_join(self.estimator, min_score, restrict_to=restrict_to)

    def _join_from_table(
        self, min_score: float, restrict_to: set[Node] | None
    ) -> list[tuple[Node, Node, float]]:
        if not 0 < min_score <= 1:
            raise ConfigurationError(
                f"min_score must lie in (0, 1], got {min_score!r}"
            )
        table = self._table
        matrix = table.result.matrix
        nodes = table.result.nodes
        allowed = None
        if restrict_to is not None:
            allowed = {table._position[node] for node in restrict_to}
        rows, cols = np.nonzero(np.triu(matrix > min_score, k=1))
        results = []
        for i, j in zip(rows, cols):
            if allowed is not None and (int(i) not in allowed or int(j) not in allowed):
                continue
            results.append((nodes[int(i)], nodes[int(j)], float(matrix[i, j])))
        results.sort(key=lambda row: (-row[2], str(row[0]), str(row[1])))
        return results

    def candidate_pairs(self, restrict_to: set[Node] | None = None):
        """Yield the non-zero-score candidate pairs of the MC walk index."""
        if self.walk_index is None:
            raise ConfigurationError(
                "candidate_pairs requires method='mc' (a walk index)"
            )
        return candidate_pairs(self.walk_index, restrict_to=restrict_to)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero this engine's work counters in place."""
        self.stats.reset()

    def __repr__(self) -> str:
        backend = (
            repr(self.walk_index) if self.walk_index is not None else repr(self._table)
        )
        return (
            f"QueryEngine(method={self.method!r}, decay={self.decay}, "
            f"theta={self.theta}, backend={backend})"
        )
