"""`repro.api` — the one-object query facade.

Everything the library can answer about node similarity — single pairs,
whole candidate sets, top-k search, similarity joins — is reachable through
one :class:`QueryEngine`.  The engine hides the moving parts the paper's
Section 4 pipeline needs (walk-index construction, proposal policy, the
semantic matrix that unlocks the vectorised batch path, estimator choice,
pruning thresholds) behind a single constructor:

>>> from repro.api import QueryEngine
>>> from repro.datasets import figure1_network
>>> data = figure1_network()
>>> engine = QueryEngine(data.graph, data.measure, method="iterative",
...                      decay=0.8, max_iterations=3)
>>> engine.score("John", "Aditi") > engine.score("Bo", "Aditi")
True

Two methods are available:

* ``method="mc"`` (default) — the scalable path: a
  :class:`~repro.core.walk_index.WalkIndex` (built in parallel when
  ``workers`` > 1, bit-identically to a serial build) feeding the
  Importance-Sampling estimator of Algorithm 1; queries run vectorised
  over stacked walk arrays.
* ``method="iterative"`` — the exact fixed-point solver of Section 2.3;
  queries become table lookups.  Right for small graphs and for checking
  the MC path.

Every engine owns a private :class:`~repro.core.montecarlo.EstimatorStats`
(nothing accumulates across engines); ``reset_stats()`` zeroes it between
measurement windows.
"""

from __future__ import annotations

import copy
import time
import warnings
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.backends import (
    BackendConfig,
    BackendError,
    BackendUnavailableError,
    ComputeBackend,
    UnknownBackendError,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.core.bounds import plan_index
from repro.core.dynamic import DynamicWalkIndex
from repro.core.iterative import FixedPointResult
from repro.core.join import candidate_pairs, similarity_join
from repro.core.montecarlo import EstimatorStats, MonteCarloSemSim, MonteCarloSimRank
from repro.core.params import (
    validate_decay,
    validate_length,
    validate_num_walks,
    validate_theta,
    validate_workers,
)
from repro.core.semsim import SemSim
from repro.core.simrank import SimRank
from repro.core.single_source import batch_similarity
from repro.core.topk import top_k_similar
from repro.core.walk_index import (
    WalkIndex,
    WalkPolicy,
    _TransitionTables,
    load_walk_index,
    save_walk_index,
)
from repro.errors import ConfigurationError
from repro.linear import LinearSemSim, LowRankSemSim
from repro.hin.graph import (
    DEFAULT_EDGE_LABEL,
    DEFAULT_NODE_LABEL,
    DEFAULT_WEIGHT,
    HIN,
    Node,
)
from repro.obs.logging import get_logger, log_event
from repro.obs.registry import get_registry, is_enabled
from repro.obs.trace import span
from repro.semantics.base import SemanticMeasure
from repro.semantics.cache import MatrixMeasure
from repro.store.artifacts import (
    CACHE_HIT,
    CACHE_MISS,
    CACHE_STALE,
    ArtifactStore,
    StoredArtifact,
    StoreError,
    read_artifact,
    write_artifact,
)
from repro.store.engine_io import (
    PROPOSAL_ARRAYS,
    canonical_params,
    engine_identity,
    graph_from_artifact,
    measure_from_artifact,
    snapshot_engine,
)
from repro.store.fingerprint import fingerprint_graph

__all__ = [
    "QueryEngine",
    "EstimatorStats",
    "WalkPolicy",
    "batch_similarity",
    "similarity_join",
    "top_k_similar",
    # compute-backend seam (re-exported so API users need one import)
    "BackendConfig",
    "BackendError",
    "BackendUnavailableError",
    "ComputeBackend",
    "UnknownBackendError",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend",
]

#: Above this node count ``materialize_semantics="auto"`` stops densifying
#: the semantic measure (the n×n matrix would dominate memory).
AUTO_MATERIALIZE_LIMIT = 4096

_LOG = get_logger("api")

_QUERY_LATENCY = get_registry().histogram(
    "query_latency_seconds",
    help="End-to-end QueryEngine latency per score()/score_batch() call.",
    labelnames=("method", "mode"),
)
_BATCH_CANDIDATES = get_registry().histogram(
    "query_batch_candidates",
    help="Candidate-set sizes submitted to score_batch().",
    buckets=(1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
             1000.0, 2500.0, 5000.0, 10000.0),
)


class QueryEngine:
    """Unified similarity-query facade over one graph.

    Parameters
    ----------
    graph:
        The HIN to query.
    measure:
        The semantic measure ``sem``; ``None`` drops the semantic layer and
        the engine answers plain SimRank queries instead.
    method:
        ``"mc"`` (scalable Monte-Carlo over a walk index, the default),
        ``"iterative"`` (exact fixed point, table lookups), ``"linear"``
        (per-query linearized solver — exact up to a declared residual
        bound, never allocates an N×N table) or ``"lowrank"`` (offline
        rank-r factorization, O(r) per pair online).
    estimator:
        Alias for *method* (matches the CLI's ``--estimator`` flag); when
        given it takes precedence, and passing both with different values
        is a :class:`ConfigurationError`.
    decay, num_walks, length, theta, seed:
        The five canonical knobs, validated identically to every
        underlying engine.  ``num_walks``/``length``/``seed`` only apply to
        ``method="mc"``; ``theta`` is the MC pruning threshold (``None``
        disables pruning).
    backend, backend_config:
        Compute backend for the MC scoring hot path: a registered backend
        name (``"numpy"``, ``"blocked"``, ``"numba"`` where available, or
        any third-party registration), a ready
        :class:`~repro.backends.ComputeBackend` instance, or ``None`` for
        the default.  Selection precedence: explicit argument > the
        ``REPRO_BACKEND`` environment variable > ``"numpy"``.
        *backend_config* is a :class:`~repro.backends.BackendConfig` of
        tuning knobs, only valid when *backend* is not already an
        instance.  Exact backends (``numpy``, ``blocked``) return
        bit-identical scores; jitted backends document a tolerance.
    policy:
        MC proposal distribution (:class:`WalkPolicy`).
    workers:
        Threads for parallel walk-index construction; results are
        bit-identical to a serial build for the same seed.
    materialize_semantics:
        ``"auto"`` (default), ``True`` or ``False`` — whether to densify
        *measure* into a :class:`~repro.semantics.cache.MatrixMeasure` in
        index node order, which is what unlocks the fully vectorised batch
        path.  ``"auto"`` densifies up to ``AUTO_MATERIALIZE_LIMIT`` nodes.
    pair_index:
        Optional SLING-style ``SO`` cache forwarded to the MC estimator.
    max_iterations, tolerance:
        Fixed-point controls for ``method="iterative"`` (defaults follow
        :class:`~repro.core.semsim.SemSim`); for ``method="linear"`` and
        ``method="lowrank"`` *tolerance* bounds the series truncation
        instead.
    rank:
        Factorization rank for ``method="lowrank"`` (default 16).
    max_states:
        Memory guard of the ``method="linear"`` per-query solver: a solve
        discovering more pair states raises
        :class:`ConfigurationError` instead of exhausting memory.
    cache_dir:
        Root of a content-addressed :class:`~repro.store.ArtifactStore`.
        When given, construction first looks up an artifact keyed by
        (graph content, measure, canonical parameters, format version):
        a hit warm-starts the engine from memory-mapped arrays (zero copy,
        shared page cache across processes) with **bit-identical** scores;
        a miss builds normally and writes the artifact through for the
        next process.  Stale or corrupt artifacts are rebuilt with a
        warning — never served.
    walks_path:
        Path to a ``.npz`` written by :meth:`save_walks` /
        :func:`~repro.core.walk_index.save_walk_index`; loads the walk
        tensor instead of sampling (``method="mc"`` only).  The stored
        ``num_walks``/``length``/``policy`` take precedence over the
        matching constructor arguments.
    """

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure | None = None,
        *,
        method: str = "mc",
        estimator: str | None = None,
        decay: float = 0.6,
        num_walks: int = 150,
        length: int = 15,
        theta: float | None = 0.05,
        seed: int | np.random.Generator | None = None,
        backend: str | ComputeBackend | None = None,
        backend_config: BackendConfig | None = None,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        workers: int | None = None,
        materialize_semantics: bool | str = "auto",
        pair_index=None,
        max_iterations: int | None = None,
        tolerance: float | None = None,
        rank: int | None = None,
        max_states: int | None = None,
        cache_dir: str | Path | None = None,
        walks_path: str | Path | None = None,
        _artifact: StoredArtifact | None = None,
    ) -> None:
        if estimator is not None:
            if method != "mc" and method != estimator:
                raise ConfigurationError(
                    f"conflicting method={method!r} and estimator="
                    f"{estimator!r}; pass one (they are aliases)"
                )
            method = estimator
        if method not in ("mc", "iterative", "linear", "lowrank"):
            raise ConfigurationError(
                "method must be one of 'mc', 'iterative', 'linear' or "
                f"'lowrank', got {method!r}"
            )
        self.graph = graph
        self.method = method
        self.decay = validate_decay(decay)
        self.num_walks = validate_num_walks(num_walks)
        self.length = validate_length(length)
        self.theta = validate_theta(theta)
        self.backend = resolve_backend(backend, backend_config)
        self.backend_name = self.backend.name
        self.policy = policy
        self.workers = validate_workers(workers)
        self.pair_index = pair_index
        self._max_iterations = max_iterations
        self._tolerance = tolerance
        if rank is not None and int(rank) < 1:
            raise ConfigurationError(f"rank must be >= 1, got {rank!r}")
        self.rank = None if rank is None else int(rank)
        self._max_states = None if max_states is None else int(max_states)
        seed_param = seed
        self._seed_key = (
            int(seed_param)
            if isinstance(seed_param, (int, np.integer))
            else None
        )
        self._store: ArtifactStore | None = None
        self.cache_key: str | None = None
        self._cache_identity: dict | None = None
        self._dynamic: DynamicWalkIndex | None = None
        self._parent_fingerprint: str | None = None

        self.walk_index: WalkIndex | None = None
        self._table: SemSim | SimRank | None = None
        self._latency_single = _QUERY_LATENCY.labels(method=method, mode="single")
        self._latency_batch = _QUERY_LATENCY.labels(method=method, mode="batch")

        artifact = _artifact
        if artifact is None and cache_dir is not None:
            artifact = self._cache_lookup(
                measure, materialize_semantics, cache_dir, seed_param, walks_path
            )
        if artifact is not None:
            try:
                with span("engine.restore", labels={"method": self.method}):
                    self._restore_stack(artifact)
                log_event(
                    _LOG, "engine.restore",
                    method=self.method, nodes=graph.num_nodes,
                    artifact=str(artifact.path),
                )
                return
            except (StoreError, ConfigurationError) as exc:
                if _artifact is not None:
                    raise
                if is_enabled():
                    CACHE_STALE.inc()
                warnings.warn(
                    f"cached engine artifact is unusable, rebuilding: {exc}",
                    stacklevel=2,
                )
        self.measure = self._prepare_measure(measure, materialize_semantics)
        with span(
            "engine.build", labels={"method": self.method},
            nodes=graph.num_nodes, edges=graph.num_edges,
        ):
            self._build_stack(seed_param, walks_path)
        log_event(
            _LOG, "engine.build",
            method=self.method, nodes=graph.num_nodes, edges=graph.num_edges,
        )
        if self._store is not None and self.cache_key is not None:
            self._write_through()

    def _build_stack(
        self,
        seed: int | np.random.Generator | None,
        walks_path: str | Path | None,
    ) -> None:
        """Construct the estimator stack from scratch (the cold path)."""
        if self.method == "mc":
            if walks_path is not None:
                self.walk_index = load_walk_index(self.graph, walks_path)
                self.num_walks = self.walk_index.num_walks
                self.length = self.walk_index.length
                self.policy = self.walk_index.policy
            else:
                self.walk_index = WalkIndex(
                    self.graph,
                    num_walks=self.num_walks,
                    length=self.length,
                    policy=self.policy,
                    seed=seed,
                    workers=self.workers,
                )
            if self.measure is None:
                self.estimator = MonteCarloSimRank(
                    self.walk_index, decay=self.decay, backend=self.backend
                )
            else:
                self.estimator = MonteCarloSemSim(
                    self.walk_index,
                    self.measure,
                    decay=self.decay,
                    theta=self.theta,
                    pair_index=self.pair_index,
                    backend=self.backend,
                )
            self.stats = self.estimator.stats
        elif self.method == "linear":
            if walks_path is not None:
                raise ConfigurationError(
                    "walks_path only applies to method='mc'"
                )
            self.estimator = LinearSemSim(
                self.graph,
                self.measure,
                decay=self.decay,
                theta=self.theta,
                tolerance=self._tolerance,
                max_iterations=self._max_iterations,
                max_states=self._max_states,
            )
            self.stats = self.estimator.stats
        elif self.method == "lowrank":
            if walks_path is not None:
                raise ConfigurationError(
                    "walks_path only applies to method='mc'"
                )
            self.estimator = LowRankSemSim.build(
                self.graph,
                self.measure,
                decay=self.decay,
                theta=self.theta,
                rank=self.rank,
                seed=self._seed_key,
                tolerance=self._tolerance,
            )
            self.rank = self.estimator.rank
            self.stats = self.estimator.stats
        else:
            if walks_path is not None:
                raise ConfigurationError(
                    "walks_path only applies to method='mc'"
                )
            iterative_kwargs = {}
            if self._max_iterations is not None:
                iterative_kwargs["max_iterations"] = self._max_iterations
            if self._tolerance is not None:
                iterative_kwargs["tolerance"] = self._tolerance
            if self.measure is None:
                self._table = SimRank(self.graph, decay=self.decay, **iterative_kwargs)
            else:
                self._table = SemSim(
                    self.graph, self.measure, decay=self.decay, **iterative_kwargs
                )
            self.estimator = self._table
            self.stats = EstimatorStats(method="iterative", estimator="table")

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def _prepare_measure(
        self, measure: SemanticMeasure | None, materialize: bool | str
    ) -> SemanticMeasure | None:
        if measure is None:
            return None
        nodes = list(self.graph.nodes())
        if not self._will_materialize(measure, materialize, nodes):
            return measure
        if isinstance(measure, MatrixMeasure) and measure.nodes == nodes:
            return measure
        return MatrixMeasure.from_measure(measure, nodes)

    def _will_materialize(
        self,
        measure: SemanticMeasure | None,
        materialize: bool | str,
        nodes: list[Node] | None = None,
    ) -> bool:
        """Decide (without doing the work) whether *measure* densifies."""
        if materialize not in (True, False, "auto"):
            raise ConfigurationError(
                "materialize_semantics must be True, False or 'auto', "
                f"got {materialize!r}"
            )
        if measure is None:
            return False
        if nodes is None:
            nodes = list(self.graph.nodes())
        if isinstance(measure, MatrixMeasure) and measure.nodes == nodes:
            return True
        if materialize is False:
            return False
        return materialize is True or len(nodes) <= AUTO_MATERIALIZE_LIMIT

    # ------------------------------------------------------------------
    # Persistence — the preprocess-once / query-many split of Fig. 4
    # ------------------------------------------------------------------
    def _canonical_params(self, materialized: bool) -> dict:
        return canonical_params(
            method=self.method,
            decay=self.decay,
            num_walks=self.num_walks,
            length=self.length,
            theta=self.theta,
            policy=self.policy.value,
            seed=self._seed_key,
            materialized=materialized,
            max_iterations=self._max_iterations,
            tolerance=self._tolerance,
            rank=self.rank,
            max_states=self._max_states,
        )

    def _cache_lookup(
        self,
        measure: SemanticMeasure | None,
        materialize: bool | str,
        cache_dir: str | Path,
        seed: int | np.random.Generator | None,
        walks_path: str | Path | None,
    ) -> StoredArtifact | None:
        """Resolve ``cache_dir`` to a hit (validated artifact) or a miss.

        Configurations the artifact format cannot replay — an external
        ``pair_index``, an explicit ``walks_path``, a live ``Generator``
        seed, a measure that stays lazy — skip caching with a warning
        instead of risking a wrong answer.
        """
        not_cacheable = None
        if self.pair_index is not None:
            not_cacheable = "an external pair_index is not part of artifacts"
        elif walks_path is not None:
            not_cacheable = "walks_path already names its own artifact"
        elif isinstance(seed, np.random.Generator):
            not_cacheable = (
                "a live Generator seed has no stable content fingerprint "
                "(pass an int seed to enable caching)"
            )
        elif measure is not None and not self._will_materialize(measure, materialize):
            not_cacheable = (
                "a non-materialised measure cannot be replayed from disk "
                "(pass materialize_semantics=True to enable caching)"
            )
        if not_cacheable is not None:
            warnings.warn(f"cache_dir ignored: {not_cacheable}", stacklevel=3)
            return None
        self._store = ArtifactStore(cache_dir)
        materialized = self._will_materialize(measure, materialize)
        key, identity = engine_identity(
            self.graph, measure, self._canonical_params(materialized)
        )
        self.cache_key = key
        self._cache_identity = identity
        if not self._store.contains(key):
            if is_enabled():
                CACHE_MISS.inc()
            log_event(_LOG, "cache.miss", key=key[:12], method=self.method)
            return None
        try:
            artifact = self._store.get(key)
        except StoreError as exc:
            if is_enabled():
                CACHE_STALE.inc()
            log_event(_LOG, "cache.stale", key=key[:12], error=str(exc))
            warnings.warn(
                f"cached engine artifact for key {key[:12]}… is stale or "
                f"corrupt, rebuilding: {exc}",
                stacklevel=3,
            )
            return None
        if is_enabled():
            CACHE_HIT.inc()
        log_event(_LOG, "cache.hit", key=key[:12], method=self.method)
        return artifact

    def _restore_stack(self, artifact: StoredArtifact) -> None:
        """Warm-start the estimator stack from a validated artifact.

        Every array comes straight from the mapped files — the same bytes
        a cold build produced — so restored engines answer bit-identically
        to fresh ones.  The compute backend is per-engine, not part of the
        artifact: the same artifact serves under any backend.
        """
        self.measure = measure_from_artifact(artifact, self.graph)
        if self.method == "mc":
            walks = artifact.arrays.get("walks")
            if walks is None:
                raise StoreError(
                    f"artifact at {artifact.path} stores no walk tensor "
                    f"(was it built with method='mc'?)"
                )
            tables = None
            if all(name in artifact.arrays for name, _ in PROPOSAL_ARRAYS):
                tables = _TransitionTables.from_arrays(
                    *(artifact.arrays[name] for name, _ in PROPOSAL_ARRAYS)
                )
            self.walk_index = WalkIndex.from_arrays(
                self.graph,
                walks,
                num_walks=self.num_walks,
                length=self.length,
                policy=self.policy,
                tables=tables,
            )
            if self.measure is None:
                self.estimator = MonteCarloSimRank(
                    self.walk_index, decay=self.decay, backend=self.backend
                )
            else:
                self.estimator = MonteCarloSemSim(
                    self.walk_index,
                    self.measure,
                    decay=self.decay,
                    theta=self.theta,
                    backend=self.backend,
                )
                self.estimator.attach_precomputed(
                    so_matrix=artifact.arrays.get("so_matrix"),
                    step_weights=artifact.arrays.get("step_weights"),
                    step_q=artifact.arrays.get("step_q"),
                )
            self.stats = self.estimator.stats
        elif self.method == "linear":
            # No offline tables: restoring is just rebuilding the solver
            # against the embedded graph and mapped semantic matrix.
            self.estimator = LinearSemSim(
                self.graph,
                self.measure,
                decay=self.decay,
                theta=self.theta,
                tolerance=self._tolerance,
                max_iterations=self._max_iterations,
                max_states=self._max_states,
            )
            self.stats = self.estimator.stats
        elif self.method == "lowrank":
            factors = artifact.arrays.get("lowrank_factors")
            eigenvalues = artifact.arrays.get("lowrank_eigenvalues")
            diag = artifact.arrays.get("lowrank_diag")
            if factors is None or eigenvalues is None or diag is None:
                raise StoreError(
                    f"artifact at {artifact.path} stores no low-rank "
                    f"factors (was it built with method='lowrank'?)"
                )
            n = self.graph.num_nodes
            if factors.shape[0] != n:
                raise StoreError(
                    f"stored factor matrix shape {factors.shape} does not "
                    f"match {n} graph nodes"
                )
            terms = artifact.meta.get("terms")
            self.estimator = LowRankSemSim(
                self.graph,
                self.measure,
                factors,
                eigenvalues,
                diag,
                decay=self.decay,
                theta=self.theta,
                terms=None if terms is None else int(terms),
                exact_diagonal=bool(
                    artifact.meta.get("exact_diagonal", False)
                ),
            )
            self.rank = self.estimator.rank
            self.stats = self.estimator.stats
        else:
            scores = artifact.arrays.get("scores")
            if scores is None:
                raise StoreError(
                    f"artifact at {artifact.path} stores no score table "
                    f"(was it built with method='iterative'?)"
                )
            nodes = list(self.graph.nodes())
            if scores.shape != (len(nodes), len(nodes)):
                raise StoreError(
                    f"stored score table shape {scores.shape} does not match "
                    f"{len(nodes)} graph nodes"
                )
            result = FixedPointResult.from_matrix(
                nodes, scores, converged=bool(artifact.meta.get("converged", True))
            )
            if self.measure is None:
                self._table = SimRank.from_result(self.graph, self.decay, result)
            else:
                self._table = SemSim.from_result(
                    self.graph, self.measure, self.decay, result
                )
            self.estimator = self._table
            self.stats = EstimatorStats(method="iterative", estimator="table")

    def _write_through(self) -> None:
        """Persist the freshly built engine under its cache key."""
        try:
            with span("engine.snapshot", labels={"method": self.method}):
                manifest, arrays, documents = snapshot_engine(
                    self, self._cache_identity
                )
            self._store.put(self.cache_key, manifest, arrays, documents)
        except (ConfigurationError, StoreError) as exc:
            warnings.warn(
                f"engine built but its artifact could not be persisted: {exc}",
                stacklevel=3,
            )

    def save(self, path: str | Path) -> Path:
        """Write this engine's precomputed state as an artifact at *path*.

        The artifact is self-contained (it embeds the graph), so
        :meth:`open` can serve from it with no other inputs.  Forces every
        lazy preprocessing table first — *save* is the preprocessing step,
        *open* is a pure memory-map.  Engines holding an external
        ``pair_index``, or a semantic measure that was not materialised,
        cannot be persisted (:class:`ConfigurationError`).
        """
        materialized = isinstance(self.measure, MatrixMeasure)
        _, identity = engine_identity(
            self.graph, self.measure, self._canonical_params(materialized)
        )
        manifest, arrays, documents = snapshot_engine(self, identity)
        return write_artifact(path, manifest, arrays, documents)

    @classmethod
    def open(
        cls,
        path: str | Path,
        *,
        backend: str | ComputeBackend | None = None,
        backend_config: BackendConfig | None = None,
    ) -> "QueryEngine":
        """Warm-start an engine from an artifact written by :meth:`save`.

        Arrays are memory-mapped, not copied: time-to-first-query is
        dominated by reading the manifest and the embedded graph, the OS
        page cache shares the array bytes across every process serving the
        same artifact, and scores are bit-identical to the engine that was
        saved.  Any structural problem — truncated file, version drift,
        manifest mismatch — raises :class:`~repro.store.StoreError`.

        *backend*/*backend_config* select the compute backend exactly as in
        the constructor — artifacts are backend-agnostic.
        """
        artifact = read_artifact(path)
        graph = graph_from_artifact(artifact)
        params = artifact.meta.get("params")
        if not isinstance(params, dict) or "method" not in params:
            raise StoreError(
                f"artifact at {artifact.path} records no engine parameters"
            )
        method = params["method"]
        kwargs: dict[str, object] = {
            "method": method,
            "decay": params.get("decay", 0.6),
            "theta": params.get("theta"),
            "backend": backend,
            "backend_config": backend_config,
            "_artifact": artifact,
        }
        if method == "mc":
            try:
                kwargs["policy"] = WalkPolicy(params.get("policy", "uniform"))
            except ValueError:
                raise StoreError(
                    f"artifact at {artifact.path} names unknown proposal "
                    f"policy {params.get('policy')!r}"
                ) from None
            kwargs["num_walks"] = params.get("num_walks", 150)
            kwargs["length"] = params.get("length", 15)
            kwargs["seed"] = params.get("seed")
        elif method == "lowrank":
            kwargs["rank"] = params.get("rank")
            kwargs["seed"] = params.get("seed")
            kwargs["tolerance"] = params.get("tolerance")
        elif method == "linear":
            kwargs["max_iterations"] = params.get("max_iterations")
            kwargs["tolerance"] = params.get("tolerance")
            kwargs["max_states"] = params.get("max_states")
        else:
            kwargs["max_iterations"] = params.get("max_iterations")
            kwargs["tolerance"] = params.get("tolerance")
        return cls(graph, None, **kwargs)

    def save_walks(self, path: str | Path) -> None:
        """Persist just the walk tensor as a portable ``.npz``.

        Shim over :func:`~repro.core.walk_index.save_walk_index`; reload
        through the ``walks_path`` constructor argument.  Only meaningful
        for ``method="mc"``.
        """
        if self.walk_index is None:
            raise ConfigurationError(
                "save_walks requires method='mc' (a walk index)"
            )
        save_walk_index(self.walk_index, path)

    # ------------------------------------------------------------------
    # Live mutations — incremental index maintenance
    # ------------------------------------------------------------------
    @property
    def index_epoch(self) -> int:
        """Mutation epoch of the walk index (0 for a never-mutated engine)."""
        return int(getattr(self.walk_index, "epoch", 0))

    def add_edge(
        self,
        source: Node,
        target: Node,
        weight: float = DEFAULT_WEIGHT,
        label: str = DEFAULT_EDGE_LABEL,
    ) -> int:
        """Insert (or re-weight) ``source -> target`` and repair the index.

        Returns the number of walks re-stepped.  The maintained walk tensor
        stays bit-identical to a from-scratch build on the mutated graph
        under the engine's seed, and the estimator is rebuilt so subsequent
        queries score against the new weights.  With a semantic measure
        attached, both endpoints must already exist (the measure cannot be
        extended to cover new nodes incrementally).
        """
        if self.measure is not None:
            for node in (source, target):
                if node not in self.graph:
                    raise ConfigurationError(
                        f"cannot create node {node!r} through a mutation: "
                        "the engine's semantic measure does not cover it — "
                        "rebuild the engine with an extended measure"
                    )
        return self._mutate(
            lambda d: d.add_edge(source, target, weight=weight, label=label)
        )

    def set_weight(self, source: Node, target: Node, weight: float) -> int:
        """Re-weight the existing edge ``source -> target`` (label kept)."""
        return self._mutate(lambda d: d.set_weight(source, target, weight))

    def remove_edge(self, source: Node, target: Node) -> int:
        """Delete ``source -> target`` and repair the index."""
        return self._mutate(lambda d: d.remove_edge(source, target))

    def add_node(self, node: Node, label: str = DEFAULT_NODE_LABEL) -> int:
        """Append an isolated node with its own walk set."""
        if self.measure is not None:
            raise ConfigurationError(
                f"cannot add node {node!r}: the engine's semantic measure "
                "does not cover it — rebuild the engine with an extended "
                "measure"
            )
        return self._mutate(lambda d: d.add_node(node, label=label))

    def apply_mutation(self, kind: str, *args) -> int:
        """Apply one mutation by kind name (the serve protocol's entry).

        *kind* is one of ``add_edge``, ``set_weight``, ``remove_edge``,
        ``add_node``; *args* are forwarded to the matching method.
        """
        handlers = {
            "add_edge": self.add_edge,
            "set_weight": self.set_weight,
            "remove_edge": self.remove_edge,
            "add_node": self.add_node,
        }
        try:
            handler = handlers[kind]
        except KeyError:
            raise ConfigurationError(
                f"unknown mutation kind {kind!r} "
                f"(expected one of {sorted(handlers)})"
            ) from None
        return handler(*args)

    def with_mutations(
        self, mutations: Sequence[tuple]
    ) -> "QueryEngine":
        """Return a new engine with *mutations* applied; this one is untouched.

        Copy-on-write: the clone promotes its own
        :class:`~repro.core.dynamic.DynamicWalkIndex` around a copied walk
        tensor and graph, so queries in flight against this engine keep a
        consistent snapshot.  Each mutation is a ``(kind, *args)`` tuple as
        accepted by :meth:`apply_mutation`.  This is the building block of
        the serve layer's atomic generation swap.
        """
        clone = copy.copy(self)
        clone._dynamic = None
        clone._parent_fingerprint = None
        for mutation in mutations:
            kind, *args = mutation
            clone.apply_mutation(kind, *args)
        return clone

    def mutation_lineage(self) -> dict | None:
        """Lineage of this index generation, or ``None`` if never mutated.

        Recorded into artifact manifests by
        :func:`~repro.store.engine_io.snapshot_engine`: the fingerprint of
        the parent generation's graph plus the hash of the mutation log
        that produced this one — a content-addressable chain of index
        generations.
        """
        if self._dynamic is None or not self._dynamic.mutation_log:
            return None
        return {
            "parent_graph": self._parent_fingerprint,
            "mutation_log_sha256": self._dynamic.mutation_log_hash(),
            "mutations": len(self._dynamic.mutation_log),
            "epoch": int(self._dynamic.epoch),
        }

    def persist_generation(self, store: ArtifactStore | None = None) -> str | None:
        """Strictly persist the engine's current state into *store*.

        Unlike the constructor's best-effort write-through, failures
        propagate — the serve layer's swap path requires persistence to
        succeed *before* a new generation is published.  Returns the
        content-addressed key, or ``None`` when no store is available.
        """
        store = store if store is not None else self._store
        if store is None:
            return None
        materialized = isinstance(self.measure, MatrixMeasure)
        key, identity = engine_identity(
            self.graph, self.measure, self._canonical_params(materialized)
        )
        with span("engine.snapshot", labels={"method": self.method}):
            manifest, arrays, documents = snapshot_engine(self, identity)
        store.put(key, manifest, arrays, documents)
        self._store = store
        self.cache_key = key
        self._cache_identity = identity
        return key

    def _mutate(self, apply) -> int:
        dynamic = self._ensure_dynamic()
        resampled = apply(dynamic)
        self._refresh_estimator()
        return resampled

    def _ensure_dynamic(self) -> DynamicWalkIndex:
        """Lazily promote the walk index to a mutable DynamicWalkIndex."""
        if self.method != "mc":
            raise ConfigurationError(
                "graph mutations require method='mc' — the iterative score "
                "table has no incremental maintenance path; rebuild instead"
            )
        if self.pair_index is not None:
            raise ConfigurationError(
                "graph mutations cannot be applied with an external "
                "pair_index attached (its SO snapshot would go stale)"
            )
        if self._dynamic is None:
            if self._seed_key is None:
                raise ConfigurationError(
                    "graph mutations require an integer seed: incremental "
                    "maintenance re-derives the walk draw schedule from it"
                )
            self._parent_fingerprint = fingerprint_graph(self.graph)
            self._dynamic = DynamicWalkIndex.from_walk_index(
                self.walk_index, seed=self._seed_key
            )
            self.graph = self._dynamic.graph
            self.walk_index = self._dynamic
        return self._dynamic

    def _refresh_estimator(self) -> None:
        """Rebuild the estimator against the (mutated) walk index.

        Estimators snapshot edge weights at construction; after a mutation
        the old one raises :class:`~repro.errors.StaleIndexError`, so the
        engine swaps in a fresh one recording the new epoch.  ``stats``
        restarts with it (the registry mirror keeps the running totals).
        """
        if self.measure is None:
            self.estimator = MonteCarloSimRank(
                self.walk_index, decay=self.decay, backend=self.backend
            )
        else:
            self.estimator = MonteCarloSemSim(
                self.walk_index,
                self.measure,
                decay=self.decay,
                theta=self.theta,
                backend=self.backend,
            )
        self.stats = self.estimator.stats

    @classmethod
    def from_error_target(
        cls,
        graph: HIN,
        measure: SemanticMeasure | None = None,
        *,
        epsilon: float = 0.1,
        delta: float = 0.05,
        decay: float = 0.6,
        **kwargs,
    ) -> "QueryEngine":
        """Build an MC engine sized by the Prop. 4.2 ``(eps, delta)`` plan.

        ``num_walks`` and ``length`` come from
        :func:`repro.core.bounds.plan_index`; every other keyword is
        forwarded to the normal constructor.
        """
        num_walks, length = plan_index(decay, epsilon, delta, graph.num_nodes)
        return cls(
            graph,
            measure,
            method="mc",
            decay=decay,
            num_walks=num_walks,
            length=length,
            **kwargs,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def score(self, u: Node, v: Node) -> float:
        """Return ``sim(u, v)`` under the engine's configuration."""
        start = time.perf_counter()
        if self._table is not None:
            self.stats.add(queries=1)
            value = self._table.similarity(u, v)
        else:
            value = self.estimator.similarity(u, v)
        if is_enabled():
            self._latency_single.observe(time.perf_counter() - start)
        return value

    def score_batch(self, u: Node, candidates: Sequence[Node]) -> np.ndarray:
        """Return ``sim(u, v)`` for every candidate in one vectorised pass."""
        start = time.perf_counter()
        candidates = list(candidates)
        if self._table is not None:
            self.stats.add(
                queries=len(candidates), batch_queries=1,
                batch_pairs=len(candidates),
                vectorized_pairs=len(candidates),
            )
            matrix = self._table.result.matrix
            position = self._table._position
            row = position[u]
            cols = np.fromiter(
                (position[v] for v in candidates), dtype=np.int64,
                count=len(candidates),
            )
            scores = matrix[row, cols].astype(np.float64)
        else:
            scores = self.estimator.similarity_batch(u, candidates)
        if is_enabled():
            _BATCH_CANDIDATES.observe(len(candidates))
            self._latency_batch.observe(time.perf_counter() - start)
        return scores

    def single_source(
        self, u: Node, candidates: Sequence[Node] | None = None
    ) -> dict[Node, float]:
        """Return ``{v: sim(u, v)}`` for every candidate (default: all)."""
        if candidates is None:
            candidates = list(self.graph.nodes())
        else:
            candidates = list(candidates)
        scores = self.score_batch(u, candidates)
        return {node: float(value) for node, value in zip(candidates, scores)}

    def top_k(
        self,
        u: Node,
        k: int,
        candidates: Sequence[Node] | None = None,
        use_semantic_bound: bool = True,
        batch_size: int = 256,
    ) -> list[tuple[Node, float]]:
        """Return the *k* nodes most similar to *u*, best first.

        With a semantic measure attached, candidates are scanned in
        decreasing ``sem`` order and the Prop. 2.5 bound stops the scan
        early; scoring runs through the batched path either way, in
        blocks of *batch_size* candidates (identical results whatever the
        block length — only the overhead/pruning trade-off moves).
        """
        if candidates is None:
            candidates = list(self.graph.nodes())
        sem_bounds = None
        if use_semantic_bound and isinstance(self.measure, MatrixMeasure):
            # One vectorised gather instead of len(candidates) scalar
            # lookups; the floats are the same matrix elements, so the
            # bound ordering (and thus the result) is unchanged.
            candidates = list(candidates)
            sem_bounds = dict(
                zip(candidates, self.measure.similarities(u, candidates))
            )
        return top_k_similar(
            u,
            candidates,
            k,
            measure=self.measure,
            use_semantic_bound=use_semantic_bound,
            batch_score=self.score_batch,
            batch_size=batch_size,
            sem_bounds=sem_bounds,
        )

    def join(
        self,
        min_score: float,
        restrict_to: set[Node] | None = None,
    ) -> list[tuple[Node, Node, float]]:
        """Return all unordered pairs scoring above *min_score*, best first."""
        if self._table is not None:
            return self._join_from_table(min_score, restrict_to)
        if self.method in ("linear", "lowrank"):
            raise ConfigurationError(
                f"join() is not supported for method={self.method!r} — the "
                "walk index drives candidate generation; use method='mc' "
                "or method='iterative'"
            )
        return similarity_join(self.estimator, min_score, restrict_to=restrict_to)

    def _join_from_table(
        self, min_score: float, restrict_to: set[Node] | None
    ) -> list[tuple[Node, Node, float]]:
        if not 0 < min_score <= 1:
            raise ConfigurationError(
                f"min_score must lie in (0, 1], got {min_score!r}"
            )
        table = self._table
        matrix = table.result.matrix
        nodes = table.result.nodes
        allowed = None
        if restrict_to is not None:
            allowed = {table._position[node] for node in restrict_to}
        rows, cols = np.nonzero(np.triu(matrix > min_score, k=1))
        results = []
        for i, j in zip(rows, cols):
            if allowed is not None and (int(i) not in allowed or int(j) not in allowed):
                continue
            results.append((nodes[int(i)], nodes[int(j)], float(matrix[i, j])))
        results.sort(key=lambda row: (-row[2], str(row[0]), str(row[1])))
        return results

    def candidate_pairs(self, restrict_to: set[Node] | None = None):
        """Yield the non-zero-score candidate pairs of the MC walk index."""
        if self.walk_index is None:
            raise ConfigurationError(
                "candidate_pairs requires method='mc' (a walk index)"
            )
        return candidate_pairs(self.walk_index, restrict_to=restrict_to)

    # ------------------------------------------------------------------
    # Stats
    # ------------------------------------------------------------------
    def reset_stats(self) -> None:
        """Zero this engine's work counters in place."""
        self.stats.reset()

    def __repr__(self) -> str:
        if self.walk_index is not None:
            index = repr(self.walk_index)
        elif self._table is not None:
            index = repr(self._table)
        else:
            index = type(self.estimator).__name__
        return (
            f"QueryEngine(method={self.method!r}, decay={self.decay}, "
            f"theta={self.theta}, backend={self.backend_name!r}, index={index})"
        )
