"""The precomputed reverse-random-walk index (Section 4.1).

SimRank's scalable MC framework (Fogaras & Rácz [9]) pre-samples ``n_w``
*reverse* walks of length ``t`` from every node; a single-pair query then
couples the i-th walk from ``u`` with the i-th walk from ``v`` and inspects
their first meeting.  SemSim's Importance-Sampling estimator reuses exactly
this index — that is the whole point of Section 4.3: the proposal
distribution ``Q`` is sampled per *node*, keeping storage at
``O(n * n_w * t)`` instead of the naive per-pair ``O(n² * n_w * t)``.

Walks are stored as one dense int32 array with ``-1`` padding after a dead
end, so coupling two walks is pure array arithmetic.

Two proposal policies are provided (ablation A2): ``UNIFORM`` (the paper's
choice of ``Q``) and ``WEIGHTED`` (steps proportional to edge weight).
Indexes persist to ``.npz`` via :func:`save_walk_index` /
:func:`load_walk_index`, so the preprocessing cost (Section 5.2) is paid
once per graph.
"""

from __future__ import annotations

import enum
import json
from pathlib import Path
import numpy as np

from repro.errors import ConfigurationError, GraphError, NodeNotFoundError
from repro.hin.graph import GraphIndex, HIN, Node
from repro.utils.rng import ensure_rng


class WalkPolicy(enum.Enum):
    """How the proposal distribution ``Q`` picks the next in-neighbour."""

    UNIFORM = "uniform"
    WEIGHTED = "weighted"


class WalkIndex:
    """``n_w`` truncated reverse walks per node, plus their ``Q`` step odds.

    Attributes
    ----------
    walks:
        int32 array of shape ``(n, num_walks, length + 1)``; ``walks[v, i,
        0] == v`` and ``-1`` marks steps past a dead end.
    """

    def __init__(
        self,
        graph: HIN,
        num_walks: int = 150,
        length: int = 15,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if num_walks < 1:
            raise ConfigurationError(f"num_walks must be >= 1, got {num_walks!r}")
        if length < 1:
            raise ConfigurationError(f"length must be >= 1, got {length!r}")
        self.graph = graph
        self.index: GraphIndex = graph.index()
        self.num_walks = num_walks
        self.length = length
        self.policy = policy
        rng = ensure_rng(seed)
        self.walks = self._sample_all(rng)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _sample_all(self, rng: np.random.Generator) -> np.ndarray:
        n = self.index.num_nodes
        total_walkers = n * self.num_walks
        steps = np.full((self.length + 1, total_walkers), -1, dtype=np.int32)
        steps[0] = np.repeat(np.arange(n, dtype=np.int32), self.num_walks)

        # Per-node cumulative step distributions under the chosen policy.
        cumulative: list[np.ndarray | None] = []
        for v in range(n):
            neighbours = self.index.in_lists[v]
            if neighbours.size == 0:
                cumulative.append(None)
                continue
            if self.policy is WalkPolicy.UNIFORM:
                masses = np.ones(neighbours.size)
            else:
                masses = self.index.in_weights[v].astype(np.float64)
            cumulative.append(np.cumsum(masses / masses.sum()))

        # Advance the entire walker population one step at a time, grouping
        # walkers by the node they currently stand on so each group is one
        # vectorised multinomial draw — the Python loop is O(t * n), not
        # O(t * n * n_w).
        for step in range(self.length):
            current = steps[step]
            alive = np.flatnonzero(current >= 0)
            if alive.size == 0:
                break
            order = np.argsort(current[alive], kind="stable")
            sorted_walkers = alive[order]
            sorted_nodes = current[sorted_walkers]
            boundaries = np.flatnonzero(np.diff(sorted_nodes)) + 1
            groups = np.split(sorted_walkers, boundaries)
            for group in groups:
                node = int(current[group[0]])
                cums = cumulative[node]
                if cums is None:
                    continue  # dead end: remains -1 from here on
                draws = rng.random(group.size)
                choices = np.searchsorted(cums, draws, side="right")
                np.clip(choices, 0, cums.size - 1, out=choices)
                steps[step + 1, group] = self.index.in_lists[node][choices]

        return np.ascontiguousarray(
            steps.T.reshape(n, self.num_walks, self.length + 1)
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_position(self, node: Node) -> int:
        """Return the numeric id of *node* in the underlying index."""
        try:
            return self.index.position[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def walks_from(self, node: Node) -> np.ndarray:
        """Return the ``(num_walks, length + 1)`` walk array of *node*."""
        return self.walks[self.node_position(node)]

    def first_meetings(self, u: Node, v: Node) -> np.ndarray:
        """Return the first-meeting step of each coupled walk (−1 if none).

        Coupling pairs the i-th walk from ``u`` with the i-th from ``v``;
        the meeting step is the smallest offset ``k >= 1`` where both walks
        are alive and stand on the same node.
        """
        walks_u = self.walks_from(u)
        walks_v = self.walks_from(v)
        alive = (walks_u >= 0) & (walks_v >= 0)
        same = (walks_u == walks_v) & alive
        same[:, 0] = False  # the start offset does not count as a meeting
        met_anywhere = same.any(axis=1)
        # argmax over booleans returns the first True column per row.
        first = same.argmax(axis=1)
        return np.where(met_anywhere, first, -1).astype(np.int64)

    def q_step_probability(self, current: int, chosen: int) -> float:
        """Return ``Q[current -> chosen]`` for one step of one walk."""
        neighbours = self.index.in_lists[current]
        if neighbours.size == 0:
            return 0.0
        if self.policy is WalkPolicy.UNIFORM:
            return 1.0 / neighbours.size
        weights = self.index.in_weights[current]
        total = float(weights.sum())
        matches = neighbours == chosen
        if not matches.any():
            return 0.0
        return float(weights[matches][0]) / total

    # ------------------------------------------------------------------
    # Accounting (preprocessing experiment)
    # ------------------------------------------------------------------
    @property
    def storage_entries(self) -> int:
        """Number of stored walk steps — the ``O(n * n_w * t)`` of §4.1."""
        return int(self.walks.size)

    @property
    def storage_bytes(self) -> int:
        """Actual bytes held by the walk array."""
        return int(self.walks.nbytes)

    def __repr__(self) -> str:
        return (
            f"WalkIndex(nodes={self.index.num_nodes}, num_walks={self.num_walks}, "
            f"length={self.length}, policy={self.policy.value})"
        )


def save_walk_index(index: WalkIndex, path: str | Path) -> None:
    """Persist *index* to a compressed ``.npz`` file.

    Stores the walk tensor plus enough metadata to verify compatibility on
    load.  Node identifiers are stored as strings; graphs with non-string
    ids round-trip as long as their ``str()`` forms are unique.
    """
    metadata = {
        "num_walks": index.num_walks,
        "length": index.length,
        "policy": index.policy.value,
        "nodes": [str(node) for node in index.index.nodes],
    }
    np.savez_compressed(
        path,
        walks=index.walks,
        metadata=np.frombuffer(json.dumps(metadata).encode("utf-8"), dtype=np.uint8),
    )


def load_walk_index(graph: HIN, path: str | Path) -> WalkIndex:
    """Load an index written by :func:`save_walk_index` for *graph*.

    The graph must contain the same nodes in the same order as when the
    index was built (edge changes are tolerated for loading but make the
    stored walks stale — rebuild or use
    :class:`~repro.core.dynamic.DynamicWalkIndex` in that case).
    """
    with np.load(path) as payload:
        walks = payload["walks"]
        metadata = json.loads(bytes(payload["metadata"].tobytes()).decode("utf-8"))
    current_nodes = [str(node) for node in graph.nodes()]
    if current_nodes != metadata["nodes"]:
        raise GraphError(
            "stored walk index does not match this graph's node set/order"
        )
    index = WalkIndex.__new__(WalkIndex)
    index.graph = graph
    index.index = graph.index()
    index.num_walks = int(metadata["num_walks"])
    index.length = int(metadata["length"])
    index.policy = WalkPolicy(metadata["policy"])
    index.walks = walks
    return index
