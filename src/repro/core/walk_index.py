"""The precomputed reverse-random-walk index (Section 4.1).

SimRank's scalable MC framework (Fogaras & Rácz [9]) pre-samples ``n_w``
*reverse* walks of length ``t`` from every node; a single-pair query then
couples the i-th walk from ``u`` with the i-th walk from ``v`` and inspects
their first meeting.  SemSim's Importance-Sampling estimator reuses exactly
this index — that is the whole point of Section 4.3: the proposal
distribution ``Q`` is sampled per *node*, keeping storage at
``O(n * n_w * t)`` instead of the naive per-pair ``O(n² * n_w * t)``.

Walks are stored as one dense int32 array with ``-1`` padding after a dead
end, so coupling two walks is pure array arithmetic.

Sampling is organised for scale:

* the proposal distribution is compiled into **CSR-style transition
  tables** (``indptr`` / ``targets`` / augmented cumulative probabilities),
  so advancing *every* live walker of a shard one step is a single
  ``searchsorted`` over a globally sorted array — no per-node Python loop;
* randomness is drawn from **per-node child generators** spawned with
  :class:`numpy.random.SeedSequence`, which makes the sampled tensor
  independent of how nodes are sharded across workers — ``workers=8``
  produces bit-identical walks to a serial build with the same seed;
* shards run on a :class:`concurrent.futures.ThreadPoolExecutor` (the hot
  loops are numpy calls that release the GIL).

Two proposal policies are provided (ablation A2): ``UNIFORM`` (the paper's
choice of ``Q``) and ``WEIGHTED`` (steps proportional to edge weight).
Indexes persist to ``.npz`` via :func:`save_walk_index` /
:func:`load_walk_index`, so the preprocessing cost (Section 5.2) is paid
once per graph.
"""

from __future__ import annotations

import enum
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.core.params import (
    validate_length,
    validate_num_walks,
    validate_workers,
)
from repro.errors import GraphError, NodeNotFoundError
from repro.hin.graph import GraphIndex, HIN, Node
from repro.obs.registry import get_registry, is_enabled
from repro.obs.trace import span
from repro.utils.rng import spawn_rngs

_WALKS_PER_SECOND = get_registry().gauge(
    "walk_index_walks_per_second",
    help="Sampling throughput (walks/second) of the latest walk-index build.",
)


class WalkPolicy(enum.Enum):
    """How the proposal distribution ``Q`` picks the next in-neighbour."""

    UNIFORM = "uniform"
    WEIGHTED = "weighted"


class _TransitionTables:
    """CSR view of the in-adjacency compiled for vectorised stepping.

    ``aug_cumprob`` holds each row's cumulative step probabilities *offset
    by the row id*: row ``v``'s entries lie in ``(v, v + 1]``, so the whole
    array is globally sorted and one ``searchsorted(aug_cumprob, v + r)``
    resolves a uniform draw ``r`` for any mix of current nodes ``v`` in a
    single call.
    """

    __slots__ = ("indptr", "targets", "aug_cumprob", "degrees", "weight_sums")

    def __init__(self, index: GraphIndex, policy: WalkPolicy) -> None:
        n = index.num_nodes
        degrees = np.array([lst.size for lst in index.in_lists], dtype=np.int64)
        if degrees.size:
            indptr = np.concatenate(([0], np.cumsum(degrees)))
        else:
            indptr = np.zeros(1, dtype=np.int64)
        total = int(indptr[-1])
        if total:
            targets = np.concatenate(index.in_lists).astype(np.int32)
            weights = np.concatenate(index.in_weights).astype(np.float64)
        else:
            targets = np.empty(0, dtype=np.int32)
            weights = np.empty(0, dtype=np.float64)
        self.indptr = indptr
        self.targets = targets
        self.degrees = degrees

        # Per-row weight totals (Q's normaliser under the WEIGHTED policy).
        sums = np.zeros(n, dtype=np.float64)
        if total:
            np.add.at(sums, np.repeat(np.arange(n), degrees), weights)
        self.weight_sums = sums

        masses = np.ones(total) if policy is WalkPolicy.UNIFORM else weights
        cums = np.cumsum(masses)
        rows = np.repeat(np.arange(n), degrees)
        prior = np.concatenate(([0.0], cums))[indptr[:-1]]
        within = cums - np.repeat(prior, degrees)
        row_totals = np.repeat(within[indptr[1:] - 1] if total else prior, degrees)
        with np.errstate(invalid="ignore", divide="ignore"):
            cumprob = within / row_totals
        nonempty_ends = indptr[1:][degrees > 0] - 1
        cumprob[nonempty_ends] = 1.0  # guard float drift at the row end
        self.aug_cumprob = cumprob + rows

    @classmethod
    def from_arrays(
        cls,
        indptr: np.ndarray,
        targets: np.ndarray,
        aug_cumprob: np.ndarray,
        degrees: np.ndarray,
        weight_sums: np.ndarray,
    ) -> "_TransitionTables":
        """Rehydrate tables from previously compiled arrays (no recompute).

        Used by the artifact store's warm-start path; arrays may be
        read-only memmaps — every consumer only reads them.
        """
        tables = cls.__new__(cls)
        tables.indptr = indptr
        tables.targets = targets
        tables.aug_cumprob = aug_cumprob
        tables.degrees = degrees
        tables.weight_sums = weight_sums
        return tables

    def step(self, current: np.ndarray, draws: np.ndarray) -> np.ndarray:
        """Advance walkers standing on *current* using uniform *draws*.

        Both inputs are 1-D and aligned; every ``current`` entry must be a
        node with at least one in-neighbour.  Returns the next node ids.
        """
        position = np.searchsorted(self.aug_cumprob, current + draws, side="right")
        np.minimum(position, self.indptr[current + 1] - 1, out=position)
        return self.targets[position]


class WalkIndex:
    """``n_w`` truncated reverse walks per node, plus their ``Q`` step odds.

    Attributes
    ----------
    walks:
        int32 array of shape ``(n, num_walks, length + 1)``; ``walks[v, i,
        0] == v`` and ``-1`` marks steps past a dead end.
    epoch:
        Mutation counter; always ``0`` for this immutable index.
        :class:`~repro.core.dynamic.DynamicWalkIndex` increments it on every
        graph update so estimators can detect stale snapshots (they record
        the epoch at construction and raise
        :class:`~repro.errors.StaleIndexError` on mismatch).

    Parameters
    ----------
    workers:
        Number of threads used to build the index (``None`` or ``1`` =
        serial).  The sampled walks are **bit-identical** for any worker
        count and a fixed *seed*, because randomness is spawned per node.
    shard_size:
        Nodes per construction shard; defaults to a size that gives each
        worker a few shards.  Affects neither results nor storage.
    """

    epoch: int = 0

    def __init__(
        self,
        graph: HIN,
        num_walks: int = 150,
        length: int = 15,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        seed: int | np.random.Generator | None = None,
        workers: int | None = None,
        shard_size: int | None = None,
    ) -> None:
        self.graph = graph
        self.index: GraphIndex = graph.index()
        self.num_walks = validate_num_walks(num_walks)
        self.length = validate_length(length)
        self.policy = policy
        self._tables: _TransitionTables | None = None
        self.walks = self._sample_all(
            seed, workers=validate_workers(workers), shard_size=shard_size
        )

    @classmethod
    def from_arrays(
        cls,
        graph: HIN,
        walks: np.ndarray,
        *,
        num_walks: int,
        length: int,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        tables: _TransitionTables | None = None,
    ) -> "WalkIndex":
        """Build an index around a pre-sampled walk tensor (no sampling).

        This is the warm-start constructor behind
        :func:`load_walk_index` and the artifact store: *walks* may be a
        read-only memmap, and *tables* (when given) skips recompiling the
        CSR proposal tables.  The tensor must match *graph* —
        ``(num_nodes, num_walks, length + 1)`` with ``walks[v, :, 0] == v``.
        """
        index = cls.__new__(cls)
        index.graph = graph
        index.index = graph.index()
        index.num_walks = validate_num_walks(num_walks)
        index.length = validate_length(length)
        index.policy = policy
        index._tables = tables
        expected = (index.index.num_nodes, index.num_walks, index.length + 1)
        if walks.shape != expected:
            raise GraphError(
                f"walk tensor shape {walks.shape} does not match this graph "
                f"and configuration (expected {expected})"
            )
        if not np.issubdtype(walks.dtype, np.integer):
            raise GraphError(
                f"walk tensor must hold integers, got dtype {walks.dtype}"
            )
        index.walks = walks
        return index

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    @property
    def tables(self) -> _TransitionTables:
        """The CSR transition tables of the proposal distribution ``Q``."""
        if self._tables is None:
            self._tables = _TransitionTables(self.index, self.policy)
        return self._tables

    def _sample_all(
        self,
        seed: int | np.random.Generator | None,
        workers: int | None = None,
        shard_size: int | None = None,
    ) -> np.ndarray:
        n = self.index.num_nodes
        if n == 0:
            return np.empty((0, self.num_walks, self.length + 1), dtype=np.int32)
        # One child generator per node: the draw stream consumed for node v
        # depends only on (seed, v), never on sharding or worker count.
        rngs = spawn_rngs(seed, n)
        effective_workers = max(1, workers or 1)
        if shard_size is None:
            shard_size = n if effective_workers == 1 else max(
                1, -(-n // (effective_workers * 4))
            )
        shards = [
            (lo, min(lo + shard_size, n)) for lo in range(0, n, shard_size)
        ]
        with span(
            "walk_index.build",
            nodes=n, num_walks=self.num_walks, length=self.length,
            workers=effective_workers, shards=len(shards),
        ) as build_span:
            if effective_workers == 1 or len(shards) == 1:
                parts = [
                    self._sample_shard(lo, hi, rngs[lo:hi]) for lo, hi in shards
                ]
            else:
                with ThreadPoolExecutor(max_workers=effective_workers) as pool:
                    parts = list(
                        pool.map(
                            lambda bounds: self._sample_shard(
                                bounds[0], bounds[1], rngs[bounds[0]:bounds[1]]
                            ),
                            shards,
                        )
                    )
            walks = np.ascontiguousarray(np.concatenate(parts, axis=0))
        if is_enabled() and build_span.wall_seconds:
            _WALKS_PER_SECOND.set(n * self.num_walks / build_span.wall_seconds)
        return walks

    def _sample_shard(
        self, lo: int, hi: int, rngs: Sequence[np.random.Generator]
    ) -> np.ndarray:
        """Sample the walk tensor of nodes ``[lo, hi)`` — one shard.

        All randomness is pre-drawn per node in a fixed ``(num_walks,
        length)`` shape (dead walkers simply waste their draws), so the
        stepping below is deterministic given the draws and the graph.
        """
        count = hi - lo
        # Worker-pool threads open their own span stacks (depth 0); the
        # shard spans still land in walk_index_sample_shard_seconds.
        with span("walk_index.sample_shard", lo=lo, hi=hi, nodes=count):
            tables = self.tables
            total_walkers = count * self.num_walks
            steps = np.full((self.length + 1, total_walkers), -1, dtype=np.int32)
            steps[0] = np.repeat(
                np.arange(lo, hi, dtype=np.int32), self.num_walks
            )
            draws = np.empty((total_walkers, self.length), dtype=np.float64)
            for offset, rng in enumerate(rngs):
                start = offset * self.num_walks
                draws[start:start + self.num_walks] = rng.random(
                    (self.num_walks, self.length)
                )
            for step in range(self.length):
                current = steps[step]
                movable = np.flatnonzero(current >= 0)
                if movable.size == 0:
                    break
                nodes_here = current[movable].astype(np.int64)
                live = tables.degrees[nodes_here] > 0
                movable = movable[live]
                if movable.size == 0:
                    continue
                steps[step + 1, movable] = tables.step(
                    nodes_here[live], draws[movable, step]
                )
            return steps.T.reshape(count, self.num_walks, self.length + 1)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def node_position(self, node: Node) -> int:
        """Return the numeric id of *node* in the underlying index."""
        try:
            return self.index.position[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def node_positions(self, nodes: Sequence[Node]) -> np.ndarray:
        """Return the numeric ids of *nodes* as one int64 array."""
        return np.fromiter(
            (self.node_position(node) for node in nodes),
            dtype=np.int64,
            count=len(nodes),
        )

    def walks_from(self, node: Node) -> np.ndarray:
        """Return the ``(num_walks, length + 1)`` walk array of *node*."""
        return self.walks[self.node_position(node)]

    def first_meetings(self, u: Node, v: Node) -> np.ndarray:
        """Return the first-meeting step of each coupled walk (−1 if none).

        Coupling pairs the i-th walk from ``u`` with the i-th from ``v``;
        the meeting step is the smallest offset ``k >= 1`` where both walks
        are alive and stand on the same node.
        """
        walks_u = self.walks_from(u)
        walks_v = self.walks_from(v)
        alive = (walks_u >= 0) & (walks_v >= 0)
        same = (walks_u == walks_v) & alive
        same[:, 0] = False  # the start offset does not count as a meeting
        met_anywhere = same.any(axis=1)
        # argmax over booleans returns the first True column per row.
        first = same.argmax(axis=1)
        return np.where(met_anywhere, first, -1).astype(np.int64)

    def first_meetings_batch(
        self, query: Node, candidates: Sequence[Node] | np.ndarray
    ) -> np.ndarray:
        """First-meeting steps of *query* against many candidates at once.

        Returns an int64 array of shape ``(len(candidates), num_walks)``
        whose row *i* equals ``first_meetings(query, candidates[i])`` — but
        computed in one stacked comparison over the walk tensor instead of
        one pass per candidate.
        """
        positions = (
            np.asarray(candidates, dtype=np.int64)
            if isinstance(candidates, np.ndarray)
            else self.node_positions(candidates)
        )
        walks_q = self.walks[self.node_position(query)]  # (n_w, t + 1)
        walks_c = self.walks[positions]                  # (m, n_w, t + 1)
        same = (walks_c == walks_q[None, :, :]) & (walks_c >= 0) & (
            walks_q[None, :, :] >= 0
        )
        same[:, :, 0] = False
        met_anywhere = same.any(axis=2)
        first = same.argmax(axis=2)
        return np.where(met_anywhere, first, -1).astype(np.int64)

    def q_step_probability(self, current: int, chosen: int) -> float:
        """Return ``Q[current -> chosen]`` for one step of one walk."""
        neighbours = self.index.in_lists[current]
        if neighbours.size == 0:
            return 0.0
        if self.policy is WalkPolicy.UNIFORM:
            return 1.0 / neighbours.size
        weights = self.index.in_weights[current]
        total = float(weights.sum())
        matches = neighbours == chosen
        if not matches.any():
            return 0.0
        return float(weights[matches][0]) / total

    # ------------------------------------------------------------------
    # Accounting (preprocessing experiment)
    # ------------------------------------------------------------------
    @property
    def storage_entries(self) -> int:
        """Number of stored walk steps — the ``O(n * n_w * t)`` of §4.1."""
        return int(self.walks.size)

    @property
    def storage_bytes(self) -> int:
        """Actual bytes held by the walk array."""
        return int(self.walks.nbytes)

    def __repr__(self) -> str:
        return (
            f"WalkIndex(nodes={self.index.num_nodes}, num_walks={self.num_walks}, "
            f"length={self.length}, policy={self.policy.value})"
        )


def save_walk_index(index: WalkIndex, path: str | Path) -> None:
    """Persist *index* to a versioned compressed ``.npz`` file.

    Thin shim over :func:`repro.store.walk_io.save_walks_npz`.  Node
    identifiers are stored as strings; graphs with non-string ids
    round-trip as long as their ``str()`` forms are unique.
    """
    from repro.store.walk_io import save_walks_npz

    save_walks_npz(
        path,
        index.walks,
        num_walks=index.num_walks,
        length=index.length,
        policy=index.policy.value,
        nodes=[str(node) for node in index.index.nodes],
    )


def load_walk_index(graph: HIN, path: str | Path) -> WalkIndex:
    """Load an index written by :func:`save_walk_index` for *graph*.

    Thin shim over :func:`repro.store.walk_io.load_walks_npz` plus the
    graph-compatibility check: the graph must contain the same nodes in
    the same order as when the index was built (edge changes are tolerated
    for loading but make the stored walks stale — rebuild or use
    :class:`~repro.core.dynamic.DynamicWalkIndex` in that case).  Corrupt,
    truncated or wrong-version files raise
    :class:`~repro.errors.GraphError` with a message naming the problem.
    """
    from repro.store.walk_io import load_walks_npz

    walks, metadata = load_walks_npz(path)
    current_nodes = [str(node) for node in graph.nodes()]
    if current_nodes != metadata["nodes"]:
        raise GraphError(
            "stored walk index does not match this graph's node set/order"
        )
    try:
        policy = WalkPolicy(metadata["policy"])
    except ValueError:
        raise GraphError(
            f"stored walk index uses unknown proposal policy "
            f"{metadata['policy']!r}"
        ) from None
    return WalkIndex.from_arrays(
        graph,
        walks,
        num_walks=int(metadata["num_walks"]),
        length=int(metadata["length"]),
        policy=policy,
    )
