"""SemSim — SimRank boosted with semantics (Equation 1, Section 2.2).

SemSim weights every neighbour-pair contribution by the edge weights leading
to the pair and normalises by the semantics-aware factor

    ``N(u, v) = sum_{a in I(u)} sum_{b in I(v)} W(a,u) W(b,v) sem(a, b)``

then scales the whole score by ``sem(u, v)``.  Any measure satisfying the
three axioms of Section 2.2 can be injected; ``ConstantMeasure(1.0)``
recovers weighted SimRank exactly.

Key analytical facts, all covered by the test-suite:

* symmetry, self-similarity 1, monotone convergence (Theorem 2.3);
* per-iteration improvement bounded by ``sem(u,v) * c^{k+1}`` (Prop. 2.4);
* ``sim(u, v) <= sem(u, v)`` (Prop. 2.5) — the hook for every pruning
  technique in the paper.
"""

from __future__ import annotations

import numpy as np

from repro.core.iterative import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    FixedPointResult,
    iterate_fixed_point,
)
from repro.core.params import validate_decay
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure


def semsim_scores(
    graph: HIN,
    measure: SemanticMeasure,
    decay: float = 0.6,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    restrict_edge_labels: bool = False,
    sem_matrix: np.ndarray | None = None,
    sparse_adjacency: bool = False,
) -> FixedPointResult:
    """Compute all-pairs SemSim scores by fixed-point iteration.

    Set ``restrict_edge_labels=True`` for the Section 2.2 variant that only
    pairs neighbours reached through identically labelled edges (the paper's
    ablation found it less accurate at the same cost; we keep it for the
    reproduction of that claim).  ``sparse_adjacency=True`` switches the
    per-iteration sandwich products to CSR adjacency — same results, faster
    on sparse graphs.
    """
    return iterate_fixed_point(
        graph,
        measure=measure,
        decay=decay,
        max_iterations=max_iterations,
        tolerance=tolerance,
        use_weights=True,
        restrict_edge_labels=restrict_edge_labels,
        sem_matrix=sem_matrix,
        sparse_adjacency=sparse_adjacency,
    )


class SemSim:
    """Object-style wrapper holding a converged all-pairs SemSim table.

    Example
    -------
    >>> from repro.datasets import figure1_network
    >>> data = figure1_network()
    >>> engine = SemSim(data.graph, data.measure, decay=0.8, max_iterations=3)
    >>> engine.similarity("John", "Aditi") > engine.similarity("Bo", "Aditi")
    True
    """

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure,
        decay: float = 0.6,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = DEFAULT_TOLERANCE,
        restrict_edge_labels: bool = False,
        sem_matrix: np.ndarray | None = None,
    ) -> None:
        decay = validate_decay(decay)
        self.graph = graph
        self.measure = measure
        self.decay = decay
        self.result = semsim_scores(
            graph,
            measure,
            decay=decay,
            max_iterations=max_iterations,
            tolerance=tolerance,
            restrict_edge_labels=restrict_edge_labels,
            sem_matrix=sem_matrix,
        )
        self._position = {node: i for i, node in enumerate(self.result.nodes)}

    @classmethod
    def from_result(
        cls,
        graph: HIN,
        measure: SemanticMeasure,
        decay: float,
        result: FixedPointResult,
    ) -> "SemSim":
        """Wrap an already-computed score table without iterating.

        The warm-start constructor used by the artifact store: *result*
        holds the persisted all-pairs table (possibly a read-only memmap),
        and queries against the returned object are plain lookups into
        those exact bytes.
        """
        engine = cls.__new__(cls)
        engine.graph = graph
        engine.measure = measure
        engine.decay = validate_decay(decay)
        engine.result = result
        engine._position = {node: i for i, node in enumerate(result.nodes)}
        return engine

    def similarity(self, u: Node, v: Node) -> float:
        """Return ``sim(u, v)``."""
        return float(self.result.matrix[self._position[u], self._position[v]])

    def matrix(self) -> np.ndarray:
        """Return the full score matrix (rows/cols follow ``result.nodes``)."""
        return self.result.matrix

    def __repr__(self) -> str:
        return (
            f"SemSim(nodes={len(self.result.nodes)}, decay={self.decay}, "
            f"iterations={self.result.trace.iterations})"
        )
