"""Estimator accuracy gauges, registered once for the core package.

The counters mirrored by :class:`~repro.core.montecarlo.EstimatorStats`
say how much *work* an estimator did; these gauges say how much
*statistical quality* the latest answer carried — the numbers an operator
reads next to a latency dashboard to judge whether a fast answer was also
a trustworthy one:

``engine_final_residual{engine=}``
    the stopping-rule residual the last fixed-point solve ended on (the
    iterative engine's accuracy: how far from the fixed point it stopped);
``engine_walk_count{engine, estimator}``
    the per-node walk budget ``n_w`` behind the MC estimators — the
    sample size every estimate divides by;
``engine_effective_walks{engine, estimator}``
    mean **met** coupled walks per scored pair of the latest batch — the
    effective sample size actually contributing to each estimate (far
    below ``n_w`` for dissimilar pairs, which is exactly the variance
    story the paper's confidence bounds are about).

Kept in one module (mirroring :mod:`repro.sched.metrics`) so the
iterative solver, both MC estimators and the shard-worker engine share
families instead of re-registering, and so ``docs/observability.md`` has
one source of truth.
"""

from __future__ import annotations

from repro.obs.registry import get_registry

_REGISTRY = get_registry()

ENGINE_FINAL_RESIDUAL = _REGISTRY.gauge(
    "engine_final_residual",
    help="Stopping-rule residual (max absolute off-diagonal change) the "
    "last fixed-point solve ended on — below the tolerance when it "
    "converged, above it when the iteration cap cut the solve short.",
    labelnames=("engine",),
)
ENGINE_WALK_COUNT = _REGISTRY.gauge(
    "engine_walk_count",
    help="Per-node walk budget n_w of the MC walk index behind the "
    "estimator — the sample size every estimate divides by.",
    labelnames=("engine", "estimator"),
)
ENGINE_EFFECTIVE_WALKS = _REGISTRY.gauge(
    "engine_effective_walks",
    help="Mean met coupled walks per scored pair of the latest batch — "
    "the effective sample size actually contributing to each estimate.",
    labelnames=("engine", "estimator"),
)
