"""SemSim over uncertain graphs (Section 7 future work).

"In practice, information networks are often dynamic and may induce
uncertainty" — extracted relations come with confidence scores rather than
certainties.  The standard semantics is *possible worlds*: each edge ``e``
exists independently with probability ``p(e)``, and the similarity of a
pair is its expectation over worlds:

    ``E[sim(u, v)] = Σ_G  P[G] · sim_G(u, v)``

Exact summation is exponential, so :class:`UncertainSemSim` estimates the
expectation by sampling worlds (each world is a deterministic HIN scored
with the ordinary engine) and averaging — with the per-world machinery
unchanged, exactly the modularity the paper's framework affords.

:class:`UncertainHIN` wraps a base graph with per-edge existence
probabilities (defaulting to 1, i.e. certain).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.semsim import semsim_scores
from repro.errors import ConfigurationError, EdgeNotFoundError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure
from repro.utils.rng import ensure_rng


class UncertainHIN:
    """A HIN whose edges carry independent existence probabilities."""

    def __init__(self, base: HIN) -> None:
        self.base = base
        self._probability: dict[tuple[Node, Node], float] = {}

    def set_edge_probability(self, source: Node, target: Node, probability: float) -> None:
        """Declare ``source -> target`` to exist with *probability*."""
        if not self.base.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        if not 0 < probability <= 1:
            raise ConfigurationError(
                f"probability must lie in (0, 1], got {probability!r}"
            )
        self._probability[(source, target)] = float(probability)

    def edge_probability(self, source: Node, target: Node) -> float:
        """Return the existence probability (1.0 when never declared)."""
        if not self.base.has_edge(source, target):
            raise EdgeNotFoundError(source, target)
        return self._probability.get((source, target), 1.0)

    @property
    def num_uncertain_edges(self) -> int:
        """Number of edges with probability < 1."""
        return sum(1 for p in self._probability.values() if p < 1.0)

    def sample_world(self, rng: np.random.Generator) -> HIN:
        """Draw one possible world (a deterministic HIN)."""
        world = HIN()
        for node in self.base.nodes():
            world.add_node(node, label=self.base.node_label(node))
        for source, target, weight, label in self.base.edges():
            probability = self._probability.get((source, target), 1.0)
            if probability >= 1.0 or rng.random() < probability:
                world.add_edge(source, target, weight=weight, label=label)
        return world

    def __repr__(self) -> str:
        return (
            f"UncertainHIN(base={self.base!r}, "
            f"uncertain_edges={self.num_uncertain_edges})"
        )


@dataclass
class UncertainScore:
    """Expected similarity plus the across-world spread."""

    mean: float
    std: float
    worlds: int


class UncertainSemSim:
    """Possible-world expectation of SemSim by world sampling.

    Each sampled world is scored with the exact iterative engine, so the
    estimate converges to the true expectation as ``num_worlds`` grows;
    the per-pair across-world standard deviation doubles as an uncertainty
    signal (it is 0 when no uncertain edge influences the pair).
    """

    def __init__(
        self,
        graph: UncertainHIN,
        measure: SemanticMeasure,
        decay: float = 0.6,
        num_worlds: int = 20,
        max_iterations: int = 30,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        if num_worlds < 1:
            raise ConfigurationError(f"num_worlds must be >= 1, got {num_worlds!r}")
        self.graph = graph
        self.measure = measure
        self.decay = decay
        self.num_worlds = num_worlds
        rng = ensure_rng(seed)

        nodes = list(graph.base.nodes())
        self._position = {node: i for i, node in enumerate(nodes)}
        tables = []
        for _ in range(num_worlds):
            world = graph.sample_world(rng)
            result = semsim_scores(
                world, measure, decay=decay, max_iterations=max_iterations
            )
            tables.append(result.matrix)
        stack = np.stack(tables)
        self._mean = stack.mean(axis=0)
        self._std = stack.std(axis=0)

    def similarity(self, u: Node, v: Node) -> float:
        """Return the estimated expected similarity."""
        return float(self._mean[self._position[u], self._position[v]])

    def score(self, u: Node, v: Node) -> UncertainScore:
        """Return the expectation with its across-world spread."""
        i, j = self._position[u], self._position[v]
        return UncertainScore(
            mean=float(self._mean[i, j]),
            std=float(self._std[i, j]),
            worlds=self.num_worlds,
        )

    def __repr__(self) -> str:
        return (
            f"UncertainSemSim(worlds={self.num_worlds}, decay={self.decay}, "
            f"uncertain_edges={self.graph.num_uncertain_edges})"
        )
