"""SemSim core: the paper's contribution plus its SimRank scaffolding.

Layered as the paper presents it:

* :mod:`repro.core.iterative` — the shared fixed-point machinery
  (Section 2.3), both a vectorised numpy engine and a literal dict-based
  reference engine;
* :mod:`repro.core.semsim` / :mod:`repro.core.simrank` — the public
  measure-level entry points;
* :mod:`repro.core.decay` — decay-factor upper bounds (Theorem 2.3(5));
* :mod:`repro.core.sarw` / :mod:`repro.core.pair_engine` — the random
  surfer-pairs model (Section 3);
* :mod:`repro.core.walk_index` / :mod:`repro.core.montecarlo` /
  :mod:`repro.core.naive_mc` — the Monte-Carlo frameworks (Section 4),
  including the Importance-Sampling estimator of Algorithm 1 and its
  pruning;
* :mod:`repro.core.sling` — the SLING-style precomputed-probability index;
* :mod:`repro.core.topk` — single-source / top-k queries with semantic
  candidate pruning (Prop. 2.5).
"""

from repro.core.iterative import IterationTrace, iterate_fixed_point
from repro.core.simrank import SimRank, simrank_scores
from repro.core.semsim import SemSim, semsim_scores
from repro.core.decay import decay_contraction_bound, decay_paper_bound
from repro.core.sarw import SemanticAwareWalker, sarw_step_distribution
from repro.core.pair_engine import semsim_via_pair_graph, simrank_via_pair_graph
from repro.core.walk_index import WalkIndex, WalkPolicy
from repro.core.montecarlo import MonteCarloSemSim, MonteCarloSimRank
from repro.core.naive_mc import NaivePairSampler
from repro.core.sling import SlingIndex
from repro.core.topk import ConfidentRanking, top_k_confident, top_k_similar
from repro.core.bounds import (
    deviation_probability,
    interchange_probability,
    plan_index,
    required_truncation,
    required_walks,
)
from repro.core.single_source import (
    batch_similarity,
    single_source_exact,
    single_source_mc,
)
from repro.core.dynamic import DynamicWalkIndex
from repro.core.join import candidate_pairs, similarity_join
from repro.core.local import LocalScore, local_semsim
from repro.core.uncertain import UncertainHIN, UncertainSemSim
from repro.core.walk_index import load_walk_index, save_walk_index

__all__ = [
    "IterationTrace",
    "iterate_fixed_point",
    "SimRank",
    "simrank_scores",
    "SemSim",
    "semsim_scores",
    "decay_paper_bound",
    "decay_contraction_bound",
    "SemanticAwareWalker",
    "sarw_step_distribution",
    "semsim_via_pair_graph",
    "simrank_via_pair_graph",
    "WalkIndex",
    "WalkPolicy",
    "MonteCarloSemSim",
    "MonteCarloSimRank",
    "NaivePairSampler",
    "SlingIndex",
    "top_k_similar",
    "top_k_confident",
    "ConfidentRanking",
    "required_truncation",
    "required_walks",
    "deviation_probability",
    "interchange_probability",
    "plan_index",
    "single_source_mc",
    "single_source_exact",
    "batch_similarity",
    "DynamicWalkIndex",
    "LocalScore",
    "local_semsim",
    "candidate_pairs",
    "similarity_join",
    "UncertainHIN",
    "UncertainSemSim",
    "save_walk_index",
    "load_walk_index",
]
