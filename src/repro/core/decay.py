"""Decay-factor upper bounds (Theorem 2.3(5)).

SemSim's uniqueness guarantee is weaker than SimRank's: the fixed point is
unique whenever ``0 <= c < min(min_{u,v} N(u,v), 1)``, where ``N`` is the
semantics-aware normaliser.  The paper finds this bound by "simply iterating
over all node-pairs" in ``O(n² d²)`` and reports it exceeds 0.6 (the common
SimRank default) on every dataset; the bundled datasets reproduce that.

Two bounds are exposed:

* :func:`decay_paper_bound` — the literal Theorem 2.3(5) quantity
  ``min(min N(u, v), 1)``;
* :func:`decay_contraction_bound` — the classical Banach contraction
  condition for the Eq. (3) operator, ``min over pairs of
  N(u,v) / (sem(u,v) * sum_{a,b} W(a,u) W(b,v))`` capped at 1, which is the
  sharpest simple bound guaranteeing ``R_{k+1}`` differences shrink by a
  factor < 1.
"""

from __future__ import annotations

import numpy as np

from repro.hin.graph import HIN
from repro.semantics.base import SemanticMeasure, semantic_matrix


def _normaliser_matrices(graph: HIN, measure: SemanticMeasure):
    nodes = list(graph.nodes())
    sem = semantic_matrix(measure, nodes)
    weights = graph.index().weighted_in_adjacency()
    normaliser = weights.T @ sem @ weights
    raw = weights.T @ np.ones_like(sem) @ weights
    return nodes, sem, normaliser, raw


def decay_paper_bound(graph: HIN, measure: SemanticMeasure) -> float:
    """Return ``min(min_{u != v, N > 0} N(u, v), 1)`` — Theorem 2.3(5) verbatim.

    Pairs with no in-neighbours (``N = 0``) impose nothing: their score is 0
    by definition regardless of ``c``.
    """
    _, _, normaliser, _ = _normaliser_matrices(graph, measure)
    n = normaliser.shape[0]
    off_diagonal = ~np.eye(n, dtype=bool)
    candidates = normaliser[off_diagonal]
    candidates = candidates[candidates > 0]
    if candidates.size == 0:
        return 1.0
    return float(min(candidates.min(), 1.0))


def decay_contraction_bound(graph: HIN, measure: SemanticMeasure) -> float:
    """Return the contraction-based uniqueness bound, capped at 1.

    The Eq. (3) operator maps score tables to score tables with per-pair
    Lipschitz constant ``sem(u,v) * c * (sum W W) / N(u,v)``; requiring this
    below 1 for every pair yields

        ``c < min_{u != v} N(u, v) / (sem(u, v) * sum_{a,b} W(a,u) W(b,v))``.

    Because ``N <= sum W W`` (semantics only discounts) and ``sem <= 1``,
    the bound is at most ``1 / min-neighbour-semantics`` and at least the
    minimum average neighbour semantics — on real data comfortably above
    0.6, as Section 5.1 reports.
    """
    _, sem, normaliser, raw = _normaliser_matrices(graph, measure)
    n = normaliser.shape[0]
    off_diagonal = ~np.eye(n, dtype=bool)
    valid = off_diagonal & (raw > 0)
    if not valid.any():
        return 1.0
    ratios = normaliser[valid] / (sem[valid] * raw[valid])
    return float(min(ratios.min(), 1.0))
