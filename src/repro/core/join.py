"""Similarity join — discover all pairs above a score threshold.

The paper's reference [46] (Zheng et al.) studies SimRank-based similarity
*joins*: find every node pair whose similarity exceeds a threshold without
scoring all ``n²`` pairs.  The walk index enables the classic
fingerprint-bucket strategy:

1. **Candidate generation** — two nodes can only have a non-zero MC score
   if some coupled walk meets, i.e. their i-th walks stand on the same node
   at the same offset.  Bucketing all walks by ``(walk id, offset, node)``
   surfaces exactly those pairs, in time linear in the index size plus the
   bucket sizes — never touching non-candidate pairs.
2. **Candidate scoring** — each distinct candidate pair is scored once
   with the full estimator (SimRank MC or SemSim's Algorithm 1); pairs
   below *min_score* are dropped.

For SemSim the Prop. 2.5 gate applies before scoring: candidates whose
semantic similarity is already ≤ the threshold can be skipped outright.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator

import numpy as np

from repro.core.montecarlo import MonteCarloSemSim, MonteCarloSimRank
from repro.core.single_source import batch_similarity
from repro.core.walk_index import WalkIndex
from repro.errors import ConfigurationError
from repro.hin.graph import Node


def candidate_pairs(
    walk_index: WalkIndex,
    restrict_to: set[Node] | None = None,
) -> Iterator[tuple[Node, Node]]:
    """Yield every unordered pair whose coupled walks meet somewhere.

    This is a *superset* of the pairs with positive MC score (a meeting at
    offset k only counts for the estimator if it is the first one), and
    exactly the set of pairs any walk-index estimator can score non-zero.
    """
    index = walk_index.index
    nodes = index.nodes
    allowed: set[int] | None = None
    if restrict_to is not None:
        allowed = {index.position[node] for node in restrict_to}
    seen: set[tuple[int, int]] = set()
    walks = walk_index.walks  # (n, num_walks, length + 1)
    for walk_id in range(walk_index.num_walks):
        for offset in range(1, walk_index.length + 1):
            buckets: dict[int, list[int]] = defaultdict(list)
            column = walks[:, walk_id, offset]
            for source in np.flatnonzero(column >= 0):
                source = int(source)
                if allowed is not None and source not in allowed:
                    continue
                buckets[int(column[source])].append(source)
            for members in buckets.values():
                if len(members) < 2:
                    continue
                for i, a in enumerate(members):
                    for b in members[i + 1:]:
                        key = (a, b) if a < b else (b, a)
                        if key not in seen:
                            seen.add(key)
                            yield nodes[key[0]], nodes[key[1]]


def similarity_join(
    estimator: MonteCarloSemSim | MonteCarloSimRank,
    min_score: float,
    restrict_to: set[Node] | None = None,
) -> list[tuple[Node, Node, float]]:
    """Return all unordered pairs scoring above *min_score*, best first.

    Works with either MC estimator; with :class:`MonteCarloSemSim` the
    semantic gate (Prop. 2.5) skips candidates whose semantic upper bound
    cannot clear the threshold.
    """
    if not 0 < min_score <= 1:
        raise ConfigurationError(f"min_score must lie in (0, 1], got {min_score!r}")
    walk_index = estimator.walk_index
    semantic_gate = getattr(estimator, "measure", None)
    survivors: list[tuple[Node, Node]] = []
    for u, v in candidate_pairs(walk_index, restrict_to=restrict_to):
        if semantic_gate is not None and semantic_gate.similarity(u, v) <= min_score:
            continue  # Prop. 2.5: sim <= sem <= threshold
        survivors.append((u, v))
    # Score every surviving candidate through the batched query path
    # (grouped by first node — one stacked-array pass per group).
    scores = batch_similarity(estimator, survivors)
    results = [
        (u, v, score)
        for (u, v), score in zip(survivors, scores)
        if score > min_score
    ]
    results.sort(key=lambda row: (-row[2], str(row[0]), str(row[1])))
    return results
