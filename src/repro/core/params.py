"""Shared constructor-parameter validation.

Every engine in the library takes some subset of the same five knobs —
``decay`` (the SimRank/SemSim decay factor ``c``), ``num_walks`` (MC sample
size ``n_w``), ``length`` (walk truncation ``t``), ``theta`` (the pruning /
semantic threshold of Section 4.4) and ``seed`` (RNG seeding).  This module
centralises the **validators**, so an out-of-range value raises the *same*
:class:`~repro.errors.ConfigurationError` message no matter which engine
rejected it.

The transitional legacy keyword aliases (``c``, ``walks``, ``walk_length``,
``sem_threshold``, ...) that rode along with PR 1 have been removed:
constructors now accept only the canonical spellings, and an old spelling
fails loudly with the standard unexpected-keyword ``TypeError``.
:class:`~repro.api.QueryEngine` is the single documented construction path
for the full stack.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


def validate_decay(value: float) -> float:
    """Validate the decay factor ``c`` (must lie strictly inside (0, 1))."""
    if not 0 < value < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {value!r}")
    return float(value)


def validate_num_walks(value: int) -> int:
    """Validate the MC sample size ``n_w`` (must be >= 1)."""
    if value < 1:
        raise ConfigurationError(f"num_walks must be >= 1, got {value!r}")
    return int(value)


def validate_length(value: int) -> int:
    """Validate the walk truncation ``t`` (must be >= 1)."""
    if value < 1:
        raise ConfigurationError(f"length must be >= 1, got {value!r}")
    return int(value)


def validate_theta(value: float | None) -> float | None:
    """Validate the pruning threshold θ (``None`` disables pruning)."""
    if value is not None and not 0 <= value <= 1:
        raise ConfigurationError(f"theta must lie in [0, 1], got {value!r}")
    return None if value is None else float(value)


def validate_workers(value: int | None) -> int | None:
    """Validate a worker count (``None`` = serial; otherwise >= 1)."""
    if value is not None and value < 1:
        raise ConfigurationError(f"workers must be >= 1, got {value!r}")
    return value


SeedLike = "int | np.random.Generator | None"
