"""Shared constructor-parameter validation and legacy keyword shims.

Every engine in the library takes some subset of the same five knobs —
``decay`` (the SimRank/SemSim decay factor ``c``), ``num_walks`` (MC sample
size ``n_w``), ``length`` (walk truncation ``t``), ``theta`` (the pruning /
semantic threshold of Section 4.4) and ``seed`` (RNG seeding).  Historically
a few constructors spelled these differently (``sem_threshold`` on
:class:`~repro.core.sling.SlingIndex`, ``walks`` on the CLI, ...).  This
module centralises

* the **validators**, so an out-of-range value raises the *same*
  :class:`~repro.errors.ConfigurationError` message no matter which engine
  rejected it, and
* the **deprecation shims**: old keyword spellings keep working everywhere
  but emit a :class:`DeprecationWarning` naming the canonical keyword.

Engines accept the legacy spellings via ``**legacy`` catch-all kwargs and
call :func:`resolve_legacy_kwargs` first thing in ``__init__``.

Each ``(owner, alias)`` pair warns **once per process**: a serving loop that
constructs thousands of engines with a stale keyword gets one
:class:`DeprecationWarning` plus one structured ``deprecated_kwarg`` log
event, not a warning flood.  Tests use :func:`reset_deprecation_state` to
re-arm the warnings.
"""

from __future__ import annotations

import threading
import warnings

import numpy as np

from repro.errors import ConfigurationError
from repro.obs.logging import get_logger, log_event

_LOG = get_logger("core.params")

#: ``(owner, alias)`` pairs that already warned this process.
_EMITTED: set[tuple[str, str]] = set()
_EMITTED_LOCK = threading.Lock()


def reset_deprecation_state() -> None:
    """Re-arm the once-per-process deprecation warnings (testing aid)."""
    with _EMITTED_LOCK:
        _EMITTED.clear()

#: Legacy keyword -> canonical keyword, shared by every engine constructor.
LEGACY_ALIASES: dict[str, str] = {
    # decay factor c
    "c": "decay",
    "decay_factor": "decay",
    # MC sample size n_w
    "walks": "num_walks",
    "n_walks": "num_walks",
    "sample_size": "num_walks",
    # walk truncation t
    "walk_length": "length",
    "t": "length",
    # pruning / semantic threshold
    "sem_threshold": "theta",
    "prune_threshold": "theta",
    # RNG seeding
    "rng": "seed",
    "random_state": "seed",
}


def resolve_legacy_kwargs(
    owner: str,
    legacy: dict[str, object],
    current: dict[str, object],
    defaults: dict[str, object] | None = None,
) -> dict[str, object]:
    """Fold deprecated keyword spellings into their canonical names.

    *legacy* is the ``**legacy`` catch-all of an engine constructor;
    *current* maps canonical keyword names to the values the caller passed
    (or defaults); *defaults* maps canonical names to the constructor's
    signature defaults.  Returns *current* updated in place: each
    recognised alias fills in its canonical entry and emits a
    :class:`DeprecationWarning` plus a structured ``deprecated_kwarg`` log
    event — both at most once per process per ``(owner, alias)`` pair;
    unknown keywords raise ``TypeError`` just like a normal
    unexpected-keyword error would.  Passing an alias alongside a canonical
    keyword that was explicitly set to a *different* value raises
    ``TypeError`` rather than silently picking one.
    """
    for name, value in legacy.items():
        canonical = LEGACY_ALIASES.get(name)
        if canonical is None or canonical not in current:
            raise TypeError(
                f"{owner}.__init__() got an unexpected keyword argument {name!r}"
            )
        if (
            defaults is not None
            and canonical in defaults
            and current[canonical] != defaults[canonical]
            and current[canonical] != value
        ):
            raise TypeError(
                f"{owner}.__init__() got both {canonical!r} and its "
                f"deprecated alias {name!r} with conflicting values"
            )
        with _EMITTED_LOCK:
            first_use = (owner, name) not in _EMITTED
            if first_use:
                _EMITTED.add((owner, name))
        if first_use:
            warnings.warn(
                f"{owner}: keyword {name!r} is deprecated, use {canonical!r}",
                DeprecationWarning,
                stacklevel=3,
            )
            log_event(
                _LOG, "deprecated_kwarg",
                owner=owner, alias=name, canonical=canonical,
            )
        current[canonical] = value
    return current


# ---------------------------------------------------------------------------
# Validators — one error message per parameter, shared by all engines.
# ---------------------------------------------------------------------------

def validate_decay(value: float) -> float:
    """Validate the decay factor ``c`` (must lie strictly inside (0, 1))."""
    if not 0 < value < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {value!r}")
    return float(value)


def validate_num_walks(value: int) -> int:
    """Validate the MC sample size ``n_w`` (must be >= 1)."""
    if value < 1:
        raise ConfigurationError(f"num_walks must be >= 1, got {value!r}")
    return int(value)


def validate_length(value: int) -> int:
    """Validate the walk truncation ``t`` (must be >= 1)."""
    if value < 1:
        raise ConfigurationError(f"length must be >= 1, got {value!r}")
    return int(value)


def validate_theta(value: float | None) -> float | None:
    """Validate the pruning threshold θ (``None`` disables pruning)."""
    if value is not None and not 0 <= value <= 1:
        raise ConfigurationError(f"theta must lie in [0, 1], got {value!r}")
    return None if value is None else float(value)


def validate_workers(value: int | None) -> int | None:
    """Validate a worker count (``None`` = serial; otherwise >= 1)."""
    if value is not None and value < 1:
        raise ConfigurationError(f"workers must be >= 1, got {value!r}")
    return value


SeedLike = "int | np.random.Generator | None"
