"""SimRank (Jeh & Widom [13]) — the paper's point of departure.

Plain SimRank assumes an unweighted, label-less graph:

    ``simrank(u, v) = c / (|I(u)| |I(v)|)
                      * sum_{a in I(u)} sum_{b in I(v)} simrank(a, b)``

with ``simrank(u, u) = 1`` and 0 for pairs with an empty in-neighbour set.
This module exposes it through the shared fixed-point engine (it is SemSim
with ``sem ≡ 1`` and weights ignored) plus a ``weighted`` switch that keeps
edge weights — useful as an intermediate baseline between SimRank and
SemSim.
"""

from __future__ import annotations

import numpy as np

from repro.core.iterative import (
    DEFAULT_MAX_ITERATIONS,
    DEFAULT_TOLERANCE,
    FixedPointResult,
    iterate_fixed_point,
)
from repro.core.params import validate_decay
from repro.hin.graph import HIN, Node


def simrank_scores(
    graph: HIN,
    decay: float = 0.6,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    weighted: bool = False,
) -> FixedPointResult:
    """Compute all-pairs SimRank scores by fixed-point iteration.

    >>> g = HIN()
    >>> g.add_undirected_edge("a", "b")
    >>> result = simrank_scores(g, decay=0.8, max_iterations=5)
    >>> result.score("a", "a")
    1.0
    """
    return iterate_fixed_point(
        graph,
        measure=None,
        decay=decay,
        max_iterations=max_iterations,
        tolerance=tolerance,
        use_weights=weighted,
    )


class SimRank:
    """Object-style wrapper holding a converged all-pairs SimRank table.

    Computes once at construction; queries are O(1) lookups.  The interface
    mirrors :class:`repro.core.semsim.SemSim` so benchmark code can treat
    the two interchangeably.
    """

    def __init__(
        self,
        graph: HIN,
        decay: float = 0.6,
        max_iterations: int = DEFAULT_MAX_ITERATIONS,
        tolerance: float = DEFAULT_TOLERANCE,
        weighted: bool = False,
    ) -> None:
        decay = validate_decay(decay)
        self.graph = graph
        self.decay = decay
        self.result = simrank_scores(
            graph,
            decay=decay,
            max_iterations=max_iterations,
            tolerance=tolerance,
            weighted=weighted,
        )
        self._position = {node: i for i, node in enumerate(self.result.nodes)}

    @classmethod
    def from_result(
        cls, graph: HIN, decay: float, result: FixedPointResult
    ) -> "SimRank":
        """Wrap an already-computed score table without iterating.

        Warm-start counterpart of the normal constructor (see
        :meth:`repro.core.semsim.SemSim.from_result`).
        """
        engine = cls.__new__(cls)
        engine.graph = graph
        engine.decay = validate_decay(decay)
        engine.result = result
        engine._position = {node: i for i, node in enumerate(result.nodes)}
        return engine

    def similarity(self, u: Node, v: Node) -> float:
        """Return ``simrank(u, v)``."""
        return float(self.result.matrix[self._position[u], self._position[v]])

    def matrix(self) -> np.ndarray:
        """Return the full score matrix (rows/cols follow ``result.nodes``)."""
        return self.result.matrix

    def __repr__(self) -> str:
        return (
            f"SimRank(nodes={len(self.result.nodes)}, decay={self.decay}, "
            f"iterations={self.result.trace.iterations})"
        )
