"""Exact scores via the random surfer-pairs model (Theorem 3.3).

SemSim of pair ``(u, v)`` equals ``sem(u, v) * h(u, v)`` where ``h`` is the
expected ``c^tau`` over semantic-aware walks to the first singleton.  ``h``
satisfies the linear fixed point

    ``h(A) = 1``                                      for singleton ``A``
    ``h(A) = c * sum_B P[A -> B] * h(B)``             otherwise

solved here by sparse power iteration over the ``|V|²``-state pair space
(the operator is a ``c``-contraction, so the geometric tail bounds the
iteration count analytically).  Quadratic memory — use on the small
instances the paper reserves for its exact computations.

The SimRank variant swaps the semantic-aware transition for the uniform
one, providing the classical "expected-f meeting distance" SimRank solver
used as an oracle in tests.
"""

from __future__ import annotations

import numpy as np
import scipy.sparse as sp

from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure, semantic_matrix


def _pair_transition(
    graph: HIN,
    sem: np.ndarray | None,
    weighted: bool,
) -> tuple[list[Node], sp.csr_matrix]:
    """Build the pair-space transition matrix (rows sum to 1 or 0).

    ``sem=None`` yields the uniform SimRank transition; otherwise the
    semantic-aware distribution of Definition 3.1.  Singleton rows are
    empty (surfers halt on meeting).
    """
    nodes = list(graph.nodes())
    n = len(nodes)
    position = {node: i for i, node in enumerate(nodes)}
    in_edges = {
        node: [(position[src], weight if weighted else 1.0) for src, weight, _ in graph.in_edges(node)]
        for node in nodes
    }
    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    for i in range(n):
        for j in range(n):
            if i == j:
                continue
            edges_u = in_edges[nodes[i]]
            edges_v = in_edges[nodes[j]]
            if not edges_u or not edges_v:
                continue
            source = i * n + j
            masses: list[float] = []
            targets: list[int] = []
            for a, wa in edges_u:
                for b, wb in edges_v:
                    mass = wa * wb * (sem[a, b] if sem is not None else 1.0)
                    masses.append(mass)
                    targets.append(a * n + b)
            total = float(np.sum(masses))
            if total <= 0:
                continue
            for target, mass in zip(targets, masses):
                rows.append(source)
                cols.append(target)
                vals.append(mass / total)
    matrix = sp.csr_matrix((vals, (rows, cols)), shape=(n * n, n * n))
    return nodes, matrix


def _solve_meeting_values(
    transition: sp.csr_matrix,
    n: int,
    decay: float,
    tolerance: float = 1e-12,
) -> np.ndarray:
    """Solve ``h = c T h`` with ``h = 1`` pinned on singleton states."""
    singleton = np.zeros(n * n, dtype=bool)
    singleton[np.arange(n) * n + np.arange(n)] = True
    h = singleton.astype(np.float64)
    max_iters = max(8, int(np.ceil(np.log(tolerance / 10) / np.log(decay))) + 2)
    for _ in range(max_iters):
        updated = decay * (transition @ h)
        updated[singleton] = 1.0
        if np.max(np.abs(updated - h)) < tolerance:
            h = updated
            break
        h = updated
    return h


def semsim_via_pair_graph(
    graph: HIN,
    measure: SemanticMeasure,
    decay: float,
) -> dict[tuple[Node, Node], float]:
    """Exact SemSim for all pairs through the SARW model (Theorem 3.3)."""
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
    nodes = list(graph.nodes())
    sem = semantic_matrix(measure, nodes)
    _, transition = _pair_transition(graph, sem, weighted=True)
    n = len(nodes)
    h = _solve_meeting_values(transition, n, decay)
    return {
        (u, v): float(sem[i, j] * h[i * n + j])
        for i, u in enumerate(nodes)
        for j, v in enumerate(nodes)
    }


def simrank_via_pair_graph(
    graph: HIN,
    decay: float,
) -> dict[tuple[Node, Node], float]:
    """Exact SimRank for all pairs through the classical surfer model."""
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
    nodes, transition = _pair_transition(graph, sem=None, weighted=False)
    n = len(nodes)
    h = _solve_meeting_values(transition, n, decay)
    return {
        (u, v): float(h[i * n + j])
        for i, u in enumerate(nodes)
        for j, v in enumerate(nodes)
    }
