"""Top-k similarity search with semantic candidate pruning.

Prop. 2.5 (``sim(u, v) <= sem(u, v)``) turns the semantic measure into a
free admissible upper bound: scanning candidates in decreasing ``sem``
order, the search can stop as soon as the bound of the next candidate
cannot beat the current k-th best score.  This is the query pattern behind
the link-prediction and entity-resolution experiments (Section 5.3).

:func:`top_k_confident` additionally reports which of the returned ranks
are *statistically separated* under the estimator's confidence intervals —
the practical reading of Prop. 4.3 (far-apart scores essentially never
interchange; close ones may).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ConfigurationError
from repro.hin.graph import Node
from repro.semantics.base import SemanticMeasure

ScoreFunction = Callable[[Node, Node], float]
BatchScoreFunction = Callable[[Node, Sequence[Node]], Sequence[float]]


def top_k_similar(
    query: Node,
    candidates: Iterable[Node],
    k: int,
    score: ScoreFunction | None = None,
    measure: SemanticMeasure | None = None,
    use_semantic_bound: bool = True,
    batch_score: BatchScoreFunction | None = None,
    batch_size: int = 256,
    sem_bounds: dict[Node, float] | None = None,
) -> list[tuple[Node, float]]:
    """Return the *k* candidates most similar to *query*, best first.

    Parameters
    ----------
    query:
        The query node (excluded from the result if present in
        *candidates*).
    candidates:
        Candidate nodes to rank.
    k:
        How many results to return.
    score:
        Any similarity oracle ``(u, v) -> float`` — an exact table, an MC
        estimator, or a baseline measure.
    measure:
        When given (and *use_semantic_bound* is true) candidates are
        visited in decreasing ``sem(query, .)`` order and the scan stops
        early once the semantic upper bound can no longer improve the
        result set — sound for SemSim-family scores by Prop. 2.5.
    batch_score:
        Optional vectorised oracle ``(u, [v...]) -> [float...]`` (e.g.
        :meth:`~repro.core.montecarlo.MonteCarloSemSim.similarity_batch`).
        Candidates are then evaluated in blocks of *batch_size*; results
        are identical to the scalar scan — the per-candidate semantic-bound
        stop is applied when consuming each block, so the same candidates
        enter the heap in the same order.
    batch_size:
        Block length for the *batch_score* path (>= 1).  Larger blocks
        amortise per-call overhead but evaluate more candidates past the
        semantic-bound stop; the result is identical either way.
    sem_bounds:
        Pre-computed ``sem(query, .)`` bounds keyed by candidate.  When the
        caller already holds the values (e.g. one vectorised gather from a
        :class:`~repro.semantics.cache.MatrixMeasure`) this skips the
        per-candidate ``measure.similarity`` loop; the floats must match
        what *measure* would return, and the result is then identical.

    Ties break deterministically by the string form of the node id.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k!r}")
    if batch_size < 1:
        raise ConfigurationError(f"batch_size must be >= 1, got {batch_size!r}")
    if score is None and batch_score is None:
        raise ConfigurationError("top_k_similar needs a score or batch_score oracle")
    pool = [c for c in candidates if c != query]
    bounded = use_semantic_bound and (measure is not None or sem_bounds is not None)
    if bounded:
        if sem_bounds is not None:
            sem_bound = {c: float(sem_bounds[c]) for c in pool}
        else:
            sem_bound = {c: measure.similarity(query, c) for c in pool}
        ordered = sorted(pool, key=lambda c: (-sem_bound[c], str(c)))
    else:
        ordered = pool

    # Min-heap of (score, tiebreak, node) holding the current best k.
    heap: list[tuple[float, str, Node]] = []

    def consume(candidate: Node, value: float) -> bool:
        """Push one evaluated candidate; False once the scan may stop."""
        if bounded and len(heap) == k and sem_bound[candidate] <= heap[0][0]:
            return False  # no remaining candidate can enter the top-k
        entry = (value, str(candidate), candidate)
        if len(heap) < k:
            heapq.heappush(heap, entry)
        elif entry > heap[0]:
            heapq.heapreplace(heap, entry)
        return True

    if batch_score is None:
        for candidate in ordered:
            if bounded and len(heap) == k and sem_bound[candidate] <= heap[0][0]:
                break
            if not consume(candidate, score(query, candidate)):
                break
    else:
        stopped = False
        for start in range(0, len(ordered), batch_size):
            block = ordered[start:start + batch_size]
            if bounded and len(heap) == k and sem_bound[block[0]] <= heap[0][0]:
                break
            values = batch_score(query, block)
            for candidate, value in zip(block, values):
                if not consume(candidate, float(value)):
                    stopped = True
                    break
            if stopped:
                break
    ranked = sorted(heap, key=lambda item: (-item[0], item[1]))
    return [(node, value) for value, _, node in ranked]


@dataclass
class ConfidentRanking:
    """A top-k result annotated with interval-based separation flags.

    ``separated[i]`` is True when rank ``i``'s lower confidence bound
    clears rank ``i+1``'s upper bound — i.e. that boundary of the ranking
    is statistically settled at the interval's confidence level (the last
    entry's flag compares against the best *excluded* candidate).
    """

    ranking: list[tuple[Node, float, float]]  # (node, estimate, half_width)
    separated: list[bool]

    def nodes(self) -> list[Node]:
        """Return the ranked nodes without their interval annotations."""
        return [node for node, _, _ in self.ranking]


def top_k_confident(
    query: Node,
    candidates: Sequence[Node],
    k: int,
    estimator,
    z: float = 1.96,
) -> ConfidentRanking:
    """Top-k with per-boundary statistical separation flags.

    *estimator* must expose ``similarity_with_interval(u, v, z)`` (e.g.
    :class:`repro.core.montecarlo.MonteCarloSemSim`).  Every candidate is
    evaluated once; the ranking is by point estimate, and each adjacent
    boundary is flagged separated when the intervals do not overlap —
    unseparated boundaries are exactly where Prop. 4.3 licenses possible
    interchanges.
    """
    if k < 1:
        raise ConfigurationError(f"k must be >= 1, got {k!r}")
    evaluated: list[tuple[float, float, Node]] = []
    for candidate in candidates:
        if candidate == query:
            continue
        estimate, half = estimator.similarity_with_interval(query, candidate, z)
        evaluated.append((estimate, half, candidate))
    evaluated.sort(key=lambda item: (-item[0], str(item[2])))
    top = evaluated[:k]
    ranking = [(node, estimate, half) for estimate, half, node in top]
    separated: list[bool] = []
    for i in range(len(top)):
        if i + 1 < len(evaluated):
            next_estimate, next_half, _ = evaluated[i + 1]
            separated.append(top[i][0] - top[i][1] > next_estimate + next_half)
        else:
            separated.append(True)  # nothing below to swap with
    return ConfidentRanking(ranking=ranking, separated=separated)
