"""SLING-style precomputed-probability index (Section 5.2, "Execution
Times").

SLING [39] accelerates SimRank MC queries by pre-materialising walk-step
probabilities.  The paper reports adapting it to SemSim by "storing
probabilities only for node-pairs with semantic similarity scores >= 0.1",
trading memory for a large speedup on both measures.

The dominant per-step cost of Algorithm 1 is the O(d²) denominator

    ``SO(u, v) = sum_{a in I(u)} sum_{b in I(v)} W(a,u) W(b,v) sem(a,b)``;

:class:`SlingIndex` precomputes it for every pair whose semantic similarity
passes the threshold, which removes the d² factor from indexed steps.  The
index plugs into :class:`~repro.core.montecarlo.MonteCarloSemSim` through
its ``pair_index`` parameter, and reports its memory footprint for the
speed/space trade-off the paper tabulates.
"""

from __future__ import annotations

import sys

from repro.core.params import validate_theta
from repro.errors import ConfigurationError
from repro.hin.graph import HIN
from repro.semantics.base import SemanticMeasure


class SlingIndex:
    """Precomputed ``SO(u, v)`` denominators for semantically close pairs.

    The semantic cut-off is the canonical ``theta`` keyword.
    """

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure,
        theta: float = 0.1,
    ) -> None:
        theta = validate_theta(theta)
        if theta is None:
            raise ConfigurationError("theta must lie in [0, 1], got None")
        self.graph = graph
        self.measure = measure
        self.theta = theta
        index = graph.index()
        self._table: dict[tuple[int, int], float] = {}

        nodes = index.nodes
        n = index.num_nodes
        for pos_u in range(n):
            neighbours_u = index.in_lists[pos_u]
            if neighbours_u.size == 0:
                continue
            weights_u = index.in_weights[pos_u]
            for pos_v in range(n):
                if pos_u == pos_v:
                    continue
                if measure.similarity(nodes[pos_u], nodes[pos_v]) < theta:
                    continue
                neighbours_v = index.in_lists[pos_v]
                if neighbours_v.size == 0:
                    continue
                weights_v = index.in_weights[pos_v]
                total = 0.0
                for a, wa in zip(neighbours_u, weights_u):
                    node_a = nodes[int(a)]
                    for b, wb in zip(neighbours_v, weights_v):
                        total += wa * wb * measure.similarity(node_a, nodes[int(b)])
                self._table[(pos_u, pos_v)] = float(total)

    def so_lookup(self, pos_u: int, pos_v: int) -> float | None:
        """Return the cached ``SO`` value, or ``None`` on a miss."""
        return self._table.get((pos_u, pos_v))

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Number of indexed pairs."""
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        """Approximate resident size of the table."""
        entry_overhead = sys.getsizeof((0, 0)) + sys.getsizeof(0.0)
        return sys.getsizeof(self._table) + self.num_entries * entry_overhead

    def __repr__(self) -> str:
        return (
            f"SlingIndex(entries={self.num_entries}, "
            f"threshold={self.theta})"
        )
