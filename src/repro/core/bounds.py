"""Analytical error bounds of the MC framework (Props 4.1-4.3).

These turn the paper's concentration results into planning utilities:

* :func:`required_truncation` — the walk length ``t > log_c(eps/2)`` that
  caps the truncation bias (Prop. 4.2's first condition);
* :func:`required_walks` — the sample size
  ``n_w >= 14/(3 eps²) (log(2/delta) + 2 log n)`` giving an
  ``(eps, delta)`` guarantee (Prop. 4.2's second condition);
* :func:`deviation_probability` — the Bernstein-style tail of Prop. 4.1;
* :func:`interchange_probability` — Prop. 4.3's bound on two candidates
  swapping places in a similarity ranking.

All bounds are distribution-free and therefore conservative; the Table-4
benchmark shows actual errors far below them.
"""

from __future__ import annotations

import math

from repro.core.params import validate_decay
from repro.errors import ConfigurationError


def required_truncation(decay: float, epsilon: float) -> int:
    """Return the smallest ``t`` with truncation bias below *epsilon*.

    From Section 4.3: the bias of truncated walks is at most ``c^{t+1}``,
    so ``t > log_c(eps/2)`` suffices for the Prop. 4.2 guarantee.

    >>> required_truncation(0.6, 0.05)
    8
    """
    decay = validate_decay(decay)
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    return max(1, math.ceil(math.log(epsilon / 2.0, decay)))


def required_walks(epsilon: float, delta: float, num_nodes: int) -> int:
    """Return the Prop. 4.2 sample size for an ``(eps, delta)`` guarantee.

    ``n_w >= 14 / (3 eps²) * (log(2/delta) + 2 log n)`` — the union bound
    over all ``n²`` pairs is what brings in the ``2 log n`` term.
    """
    if not 0 < epsilon < 1:
        raise ConfigurationError(f"epsilon must lie in (0, 1), got {epsilon!r}")
    if not 0 < delta < 1:
        raise ConfigurationError(f"delta must lie in (0, 1), got {delta!r}")
    if num_nodes < 1:
        raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes!r}")
    return math.ceil(
        14.0 / (3.0 * epsilon ** 2)
        * (math.log(2.0 / delta) + 2.0 * math.log(max(2, num_nodes)))
    )


def deviation_probability(epsilon: float, num_walks: int) -> float:
    """Return Prop. 4.1's bound on ``P[|estimate - mean| > eps]``.

    ``2 exp(-n_w eps² / (2 (1 + eps/3)))`` — a Bernstein-style tail for the
    bounded per-walk contributions.
    """
    if not 0 < epsilon:
        raise ConfigurationError(f"epsilon must be > 0, got {epsilon!r}")
    if num_walks < 1:
        raise ConfigurationError(f"num_walks must be >= 1, got {num_walks!r}")
    exponent = -num_walks * epsilon ** 2 / (2.0 * (1.0 + epsilon / 3.0))
    return min(1.0, 2.0 * math.exp(exponent))


def interchange_probability(score_gap: float, num_walks: int) -> float:
    """Return Prop. 4.3's bound on two candidates swapping rank order.

    For ``delta = sim(u, v) - sim(u, v') > 0``:
    ``P[estimate ranks v' above v] <= 2 exp(-n_w delta² / (2 + 2 delta/3))``.
    """
    if score_gap <= 0:
        raise ConfigurationError(f"score_gap must be > 0, got {score_gap!r}")
    if num_walks < 1:
        raise ConfigurationError(f"num_walks must be >= 1, got {num_walks!r}")
    exponent = -num_walks * score_gap ** 2 / (2.0 + 2.0 * score_gap / 3.0)
    return min(1.0, 2.0 * math.exp(exponent))


def plan_index(
    decay: float,
    epsilon: float,
    delta: float,
    num_nodes: int,
) -> tuple[int, int]:
    """Return ``(num_walks, length)`` meeting an ``(eps, delta)`` target.

    Convenience wrapper bundling Prop. 4.2's two conditions; pass the
    result straight to :class:`repro.core.walk_index.WalkIndex`.

    >>> plan_index(0.6, 0.1, 0.05, 1000)  # doctest: +SKIP
    (8279, 6)
    """
    return (
        required_walks(epsilon, delta, num_nodes),
        required_truncation(decay, epsilon),
    )
