"""Monte-Carlo similarity estimators (Section 4).

:class:`MonteCarloSimRank` is the classical Fogaras-Rácz estimator:
``(1/n_w) * sum c^{tau_l}`` over coupled pre-sampled walks.

:class:`MonteCarloSemSim` is the paper's Importance-Sampling estimator
(Algorithm 1).  The walks come from the *proposal* distribution ``Q``
(uniform, sampled per node), while the quantity of interest is an
expectation under the semantic-aware distribution ``P``; each met coupled
walk therefore contributes its likelihood ratio

    ``s(w) = prod_i  P[w_i -> w_{i+1}] * c / Q[w_i -> w_{i+1}]``

and the estimate is ``sem(u, v) / n_w * sum_w s(w)`` — unbiased for any
``Q`` supported wherever ``P`` is (Eq. 4).

Pruning (Section 4.4) applies two cuts, each bounding the error by θ:

* the *semantic gate* — ``sem(u, v) <= theta`` short-circuits to 0
  (justified by Prop. 2.5);
* the *walk cut* — the running product ``s(w)`` can only shrink (each
  factor is ≤ θ-tested), so once it drops to ≤ θ the walk's final value is
  frozen there (Def. 4.5).

Both estimators expose a **batched query path**
(:meth:`MonteCarloSemSim.similarity_batch`): a whole candidate set
``{(u, v_i)}`` is estimated in one numpy pass — first-meeting detection,
likelihood-ratio products and the θ walk-cut all run on stacked
``(num_pairs, num_walks, length)`` arrays instead of per-pair
``similarity()`` calls.  The batch path reproduces the scalar path's
arithmetic operation-for-operation, so the two agree to float precision;
when it cannot run vectorised (no dense semantic matrix is available) it
falls back to scalar queries and counts the fallback in the stats.

A note on the paper's Algorithm 1 listing: it accumulates ``Pw`` and ``Qw``
cumulatively *and* multiplies ``Pw/Qw`` into ``sim_w`` at every step, which
would square earlier step ratios.  We implement the intent defined by
Def. 4.5 — per-step ratios multiplied once — which is also what makes the
estimator unbiased (verified statistically in the tests).
"""

from __future__ import annotations

import threading
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.backends import (
    BackendConfig,
    ComputeBackend,
    WalkScoreRequest,
    kernel_timer,
    resolve_backend,
)
from repro.core.metrics import ENGINE_EFFECTIVE_WALKS, ENGINE_WALK_COUNT
from repro.core.params import validate_decay, validate_theta
from repro.core.walk_index import WalkIndex, WalkPolicy
from repro.errors import ConfigurationError, StaleIndexError
from repro.hin.graph import Node
from repro.obs.registry import get_registry, is_enabled
from repro.semantics.base import SemanticMeasure
from repro.semantics.cache import MatrixMeasure

#: Counter fields of :class:`EstimatorStats`, with the help text of the
#: mirrored registry families (``estimator_<field>_total``).
_STAT_HELP: dict[str, str] = {
    "queries": "Pairs scored, through either the scalar or the batch path.",
    "walks_examined": "Coupled walks whose meeting status was checked.",
    "walks_met": "Coupled walks that met and paid the IS correction.",
    "walks_pruned": "Met walks frozen early by the theta walk-cut (Def. 4.5).",
    "so_evaluations": "SO(u, v) denominators computed from scratch.",
    "sem_gate_hits": "Pairs short-circuited to 0 by the Prop. 2.5 semantic gate.",
    "batch_queries": "Calls to a similarity_batch entry point.",
    "batch_pairs": "Total pairs submitted through similarity_batch.",
    "vectorized_pairs": "Batch pairs scored on the stacked-array fast path.",
    "scalar_fallbacks": "Batch pairs that fell back to scalar similarity().",
}


class EstimatorStats:
    """Work counters for one estimator instance.

    Stats are **per engine**: every estimator (and every
    :class:`repro.api.QueryEngine`) owns a fresh instance, so counters
    never leak across reused components; call :meth:`reset` to zero an
    instance in place between measurement windows.

    Mutation is **thread-safe**: every instance owns one lock, and
    :meth:`add` (the hot-path entry every estimator records through),
    attribute assignment, :meth:`reset` and :meth:`as_dict` all take it,
    so concurrent serving workers recording into one engine's stats never
    lose updates and snapshots are internally consistent.  Prefer
    :meth:`add` over ``stats.field += n`` in concurrent code — the
    augmented assignment spans two attribute operations and is not
    atomic.

    When constructed with *method* and *estimator* identity labels, every
    positive increment is additionally mirrored into the process-wide
    metrics registry as ``estimator_<field>_total{method=..., estimator=...}``
    series.  The mirror is one-way: the registry counters are monotonic
    across the process lifetime and :meth:`reset` never touches them — it
    zeroes only this instance's view, so two engines sharing a label set
    reset independently while the global series keeps the full history.

    Counters
    --------
    queries:
        Pairs scored, through either the scalar or the batch path
        (identity pairs included).
    walks_examined:
        Coupled walks whose meeting status was checked.
    walks_met:
        Coupled walks that met and therefore paid the IS correction.
    walks_pruned:
        Met walks frozen early by the θ walk-cut (Def. 4.5).
    so_evaluations:
        ``SO(u, v)`` denominators computed from scratch.  The batch path
        deduplicates identical ``(u, v)`` step pairs before evaluating, so
        this can be far below the scalar path's count for the same work.
    sem_gate_hits:
        Pairs short-circuited to 0 by the Prop. 2.5 semantic gate.
    batch_queries:
        Calls to a ``similarity_batch`` entry point.
    batch_pairs:
        Total pairs submitted through ``similarity_batch``.
    vectorized_pairs:
        Batch pairs scored on the stacked-array fast path.
    scalar_fallbacks:
        Batch pairs that fell back to per-pair ``similarity()`` calls
        (no dense semantic matrix available).
    """

    __slots__ = ("_values", "_cells", "_lock")

    _FIELDS = tuple(_STAT_HELP)

    def __init__(
        self,
        method: str | None = None,
        estimator: str | None = None,
        **counts: int,
    ) -> None:
        object.__setattr__(self, "_values", dict.fromkeys(self._FIELDS, 0))
        object.__setattr__(self, "_lock", threading.Lock())
        cells: dict[str, object] = {}
        if method is not None and estimator is not None:
            registry = get_registry()
            for field, help_text in _STAT_HELP.items():
                family = registry.counter(
                    f"estimator_{field}_total",
                    help=f"{help_text} Process-wide, monotonic across resets.",
                    labelnames=("method", "estimator"),
                )
                cells[field] = family.labels(method=method, estimator=estimator)
        object.__setattr__(self, "_cells", cells)
        for field, value in counts.items():
            setattr(self, field, value)

    def __getattr__(self, name: str):
        values = object.__getattribute__(self, "_values")
        try:
            return values[name]
        except KeyError:
            raise AttributeError(
                f"{type(self).__name__} has no counter {name!r}"
            ) from None

    def __setattr__(self, name: str, value: int) -> None:
        if name not in self._values:
            raise AttributeError(
                f"{type(self).__name__} has no counter {name!r}"
            )
        with self._lock:
            values = self._values
            delta = value - values[name]
            values[name] = value
        if delta > 0:
            cell = self._cells.get(name)
            if cell is not None and is_enabled():
                cell.inc(delta)

    def add(self, **deltas: int) -> None:
        """Atomically add *deltas* to the named counters.

        This is the thread-safe mutation path: ``stats.queries += 1`` is a
        read-modify-write spanning two attribute operations and can lose
        updates under concurrent workers, whereas one :meth:`add` call
        applies every delta under the instance lock.  All estimator and
        engine hot paths record through this method; the registry mirror
        is updated outside the lock (registry children have their own
        registry-wide lock, and the mirrored series are monotonic, so the
        order of mirror increments does not matter).
        """
        values = self._values
        with self._lock:
            for field, delta in deltas.items():
                if field not in values:
                    raise AttributeError(
                        f"{type(self).__name__} has no counter {field!r}"
                    )
                values[field] += delta
        if self._cells and is_enabled():
            cells = self._cells
            for field, delta in deltas.items():
                if delta > 0:
                    cells[field].inc(delta)

    def reset(self) -> None:
        """Zero this instance's counters in place.

        Only the per-engine view moves; the mirrored process-wide registry
        series stay monotonic (resetting an engine must never erase another
        engine's — or the process's — history).
        """
        with self._lock:
            values = self._values
            for field in self._FIELDS:
                values[field] = 0

    def as_dict(self) -> dict[str, int]:
        """Counter values as a plain ``{field: value}`` dict."""
        with self._lock:
            return dict(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{f}={self._values[f]}" for f in self._FIELDS)
        return f"EstimatorStats({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EstimatorStats):
            return self._values == other._values
        return NotImplemented


class AccuracyGauges:
    """Pre-resolved accuracy gauge children for one MC estimator.

    One instance per estimator (same lifetime pattern as the stats
    mirror); :meth:`update` refreshes ``engine_walk_count`` and
    ``engine_effective_walks`` after a batch — the gauges describe the
    *latest* batch, which is the operator-facing "how trustworthy was
    that answer" reading, not a lifetime aggregate.
    """

    __slots__ = ("_walks", "_effective")

    def __init__(self, estimator: str) -> None:
        self._walks = ENGINE_WALK_COUNT.labels(engine="mc", estimator=estimator)
        self._effective = ENGINE_EFFECTIVE_WALKS.labels(
            engine="mc", estimator=estimator
        )

    def update(self, num_walks: int, walks_met: int, pairs: int) -> None:
        if pairs <= 0 or not is_enabled():
            return
        self._walks.set(float(num_walks))
        self._effective.set(walks_met / pairs)


class MonteCarloSimRank:
    """Classical MC SimRank over a :class:`WalkIndex` (Section 4.1).

    *backend* selects the compute kernels for the batched path — a
    registered name, a ready :class:`~repro.backends.ComputeBackend`, or
    ``None`` for the ``REPRO_BACKEND``/default resolution (see
    :func:`repro.backends.resolve_backend`).
    """

    def __init__(
        self,
        walk_index: WalkIndex,
        decay: float = 0.6,
        backend: ComputeBackend | str | None = None,
        backend_config: BackendConfig | None = None,
    ) -> None:
        self.walk_index = walk_index
        self.decay = validate_decay(decay)
        self.backend = resolve_backend(backend, backend_config)
        self.stats = EstimatorStats(method="mc", estimator="simrank")
        self._accuracy = AccuracyGauges("simrank")
        self._epoch = int(getattr(walk_index, "epoch", 0))

    def _check_epoch(self) -> None:
        current = int(getattr(self.walk_index, "epoch", 0))
        if current != self._epoch:
            raise StaleIndexError(self._epoch, current)

    def similarity(self, u: Node, v: Node) -> float:
        """Return the MC SimRank estimate ``(1/n_w) * sum c^tau``."""
        self._check_epoch()
        self.stats.add(queries=1)
        if u == v:
            return 1.0
        meetings = self.walk_index.first_meetings(u, v)
        met = meetings[meetings >= 0]
        self.stats.add(
            walks_examined=int(meetings.size), walks_met=int(met.size)
        )
        if met.size == 0:
            return 0.0
        return float(np.sum(self.decay ** met) / self.walk_index.num_walks)

    def similarity_batch(
        self, u: Node, candidates: Sequence[Node]
    ) -> np.ndarray:
        """Estimate ``sim(u, v)`` for every candidate in one numpy pass."""
        self._check_epoch()
        m = len(candidates)
        self.stats.add(
            batch_queries=1, batch_pairs=m, vectorized_pairs=m, queries=m
        )
        if m == 0:
            return np.empty(0, dtype=np.float64)
        index = self.walk_index
        meetings = index.first_meetings_batch(u, candidates)  # (m, n_w)
        positions = index.node_positions(candidates)
        identity = positions == index.node_position(u)
        met = meetings >= 0
        met[identity] = False
        self.stats.add(
            walks_examined=int((~identity).sum()) * index.num_walks,
            walks_met=int(met.sum()),
        )
        self._accuracy.update(index.num_walks, int(met.sum()), m)
        with kernel_timer(self.backend.name, "simrank_scores"):
            scores = self.backend.simrank_scores(
                meetings, met, self.decay, index.num_walks
            )
        scores[identity] = 1.0
        return scores


class MonteCarloSemSim:
    """IS-based MC SemSim — Algorithm 1, with optional pruning and index.

    Parameters
    ----------
    walk_index:
        The shared per-node walk index (proposal ``Q``).
    measure:
        The semantic measure ``sem``.
    decay:
        The decay factor ``c``.
    theta:
        Pruning threshold; ``None`` disables pruning entirely (the unbiased
        estimator).  Lemma 4.7 wants ``theta <= 1 - c`` to keep pruned
        scores inside [0, 1]; we warn-by-exception only on clearly invalid
        values and leave the Lemma's recommendation to callers.
    pair_index:
        Optional :class:`repro.core.sling.SlingIndex`-compatible cache of
        the SARW step denominators ``SO(u, v)``; cuts the O(d²) inner loop
        for indexed pairs (the Fig. 4 "SLING" configuration).
    backend:
        Compute backend for the batched kernels — a registered name, a
        ready :class:`~repro.backends.ComputeBackend`, or ``None`` for
        the ``REPRO_BACKEND``/default resolution.  numpy-family backends
        are bit-identical; others agree within their declared tolerance.
    backend_config:
        Optional :class:`~repro.backends.BackendConfig` forwarded to a
        backend resolved by name.
    """

    def __init__(
        self,
        walk_index: WalkIndex,
        measure: SemanticMeasure,
        decay: float = 0.6,
        theta: float | None = 0.05,
        pair_index: "SupportsSoLookup | None" = None,
        backend: ComputeBackend | str | None = None,
        backend_config: BackendConfig | None = None,
    ) -> None:
        self.walk_index = walk_index
        self.measure = measure
        self.decay = validate_decay(decay)
        self.theta = validate_theta(theta)
        self.pair_index = pair_index
        self.backend = resolve_backend(backend, backend_config)
        self.stats = EstimatorStats(method="mc", estimator="semsim")
        self._accuracy = AccuracyGauges("semsim")
        graph_index = walk_index.index
        self._nodes = graph_index.nodes
        self._in_lists = graph_index.in_lists
        self._in_weights = graph_index.in_weights
        # weight_to[v][a] = W(a, v) for O(1) edge-weight lookups by position.
        self._weight_to: list[dict[int, float]] = [
            dict(zip(map(int, graph_index.in_lists[v]), map(float, graph_index.in_weights[v])))
            for v in range(graph_index.num_nodes)
        ]
        # Fast path: a MatrixMeasure whose node order matches the index lets
        # the O(d²) SO sum collapse to one vectorised bilinear form, and is
        # what unlocks the fully vectorised batch path below.
        self._sem_matrix: np.ndarray | None = None
        if isinstance(measure, MatrixMeasure) and measure.nodes == list(self._nodes):
            self._sem_matrix = measure.matrix
        # Lazy batch lookup tables (edge-weight keys, Q normalisers) and
        # SO caches: the dense matrix for the MatrixMeasure fast path (built
        # once as W sem Wᵀ, read by scalar and batch alike so the two paths
        # always see bit-identical denominators), the dict for lazy measures.
        self._edge_keys: np.ndarray | None = None
        self._edge_weights: np.ndarray | None = None
        self._so_matrix: np.ndarray | None = None
        self._so_cache: dict[tuple[int, int], float] = {}
        # Per-(node, walk, step) edge weight and proposal probability along
        # the stored walks — the walks never change, so these are gathered
        # once and reused by every batch query.
        self._step_weights: np.ndarray | None = None
        self._step_q: np.ndarray | None = None
        # Everything above snapshots the graph as of now; a later index
        # mutation invalidates it, detected via the epoch check below.
        self._epoch = int(getattr(walk_index, "epoch", 0))

    def _check_epoch(self) -> None:
        current = int(getattr(self.walk_index, "epoch", 0))
        if current != self._epoch:
            raise StaleIndexError(self._epoch, current)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def attach_precomputed(
        self,
        so_matrix: np.ndarray | None = None,
        step_weights: np.ndarray | None = None,
        step_q: np.ndarray | None = None,
    ) -> None:
        """Adopt preprocessing tables computed by a previous run.

        The artifact store's warm-start path hands back the exact arrays a
        cold build produced (typically as read-only memmaps), so queries
        against them are bit-identical to a fresh build while skipping the
        ``SO = W sem Wᵀ`` products and the per-step gathers entirely.
        Shapes are validated against this estimator's walk index; a table
        that does not fit raises :class:`ConfigurationError`.
        """
        n = len(self._nodes)
        steps_shape = (n, self.walk_index.num_walks, self.walk_index.length)
        if so_matrix is not None:
            if so_matrix.shape != (n, n):
                raise ConfigurationError(
                    f"precomputed SO matrix shape {so_matrix.shape} does not "
                    f"match {n} nodes"
                )
            self._so_matrix = so_matrix
        for name, table in (("step_weights", step_weights), ("step_q", step_q)):
            if table is not None and table.shape != steps_shape:
                raise ConfigurationError(
                    f"precomputed {name} shape {table.shape} does not match "
                    f"the walk tensor (expected {steps_shape})"
                )
        if step_weights is not None:
            self._step_weights = step_weights
        if step_q is not None:
            self._step_q = step_q

    def similarity(self, u: Node, v: Node) -> float:
        """Return the Algorithm-1 estimate of ``sim(u, v)``."""
        self._check_epoch()
        self.stats.add(queries=1)
        if u == v:
            return 1.0
        sem_uv = self.measure.similarity(u, v)
        if self.theta is not None and sem_uv <= self.theta:
            self.stats.add(sem_gate_hits=1)
            return 0.0
        walks_u = self.walk_index.walks_from(u)
        walks_v = self.walk_index.walks_from(v)
        meetings = self.walk_index.first_meetings(u, v)
        total = 0.0
        met = so_evals = pruned = 0
        for walk_id in np.flatnonzero(meetings >= 0):
            met += 1
            score, evals, cut = self._walk_score(
                walks_u[walk_id], walks_v[walk_id], int(meetings[walk_id])
            )
            total += score
            so_evals += evals
            pruned += cut
        self.stats.add(
            walks_examined=int(meetings.size), walks_met=met,
            so_evaluations=so_evals, walks_pruned=pruned,
        )
        return sem_uv * total / self.walk_index.num_walks

    def similarity_batch(
        self, u: Node, candidates: Sequence[Node]
    ) -> np.ndarray:
        """Estimate ``sim(u, v_i)`` for a whole candidate set in one pass.

        Agrees with per-candidate :meth:`similarity` calls to float
        precision (the arithmetic is replayed in the same operation order
        on stacked arrays).  Requires a dense semantic matrix to run
        vectorised — built automatically when *measure* is a
        :class:`~repro.semantics.cache.MatrixMeasure` in index node order;
        otherwise every pair falls back to the scalar path (counted in
        ``stats.scalar_fallbacks``).
        """
        self._check_epoch()
        m = len(candidates)
        self.stats.add(batch_queries=1, batch_pairs=m)
        if m == 0:
            return np.empty(0, dtype=np.float64)
        if self._sem_matrix is None:
            self.stats.add(scalar_fallbacks=m)
            return np.array(
                [self.similarity(u, v) for v in candidates], dtype=np.float64
            )
        self.stats.add(vectorized_pairs=m, queries=m)

        index = self.walk_index
        pos_u = index.node_position(u)
        positions = index.node_positions(candidates)
        scores = np.zeros(m, dtype=np.float64)

        identity = positions == pos_u
        scores[identity] = 1.0

        sem_row = self._sem_matrix[pos_u, positions]
        if self.theta is not None:
            gated = (sem_row <= self.theta) & ~identity
            self.stats.add(sem_gate_hits=int(gated.sum()))
        else:
            gated = np.zeros(m, dtype=bool)
        active = ~identity & ~gated
        active_idx = np.flatnonzero(active)
        if active_idx.size == 0:
            return scores
        self.stats.add(walks_examined=int(active_idx.size) * index.num_walks)

        meetings = index.first_meetings_batch(u, positions[active_idx])
        totals = self._batch_walk_scores(pos_u, positions[active_idx], meetings)
        scores[active_idx] = sem_row[active_idx] * totals / index.num_walks
        return scores

    def similarity_with_interval(
        self, u: Node, v: Node, z: float = 1.96
    ) -> tuple[float, float]:
        """Return ``(estimate, half_width)`` with an empirical CLT interval.

        The per-coupled-walk contributions are i.i.d. (the walk index pairs
        independent samples), so ``z * std / sqrt(n_w)`` scaled by
        ``sem(u, v)`` is the usual normal-approximation half-width.  For a
        distribution-free (much looser) alternative, combine the point
        estimate with :func:`repro.core.bounds.deviation_probability`.
        """
        self._check_epoch()
        self.stats.add(queries=1)
        if u == v:
            return 1.0, 0.0
        sem_uv = self.measure.similarity(u, v)
        if self.theta is not None and sem_uv <= self.theta:
            self.stats.add(sem_gate_hits=1)
            return 0.0, 0.0
        walks_u = self.walk_index.walks_from(u)
        walks_v = self.walk_index.walks_from(v)
        meetings = self.walk_index.first_meetings(u, v)
        contributions = np.zeros(self.walk_index.num_walks)
        met = so_evals = pruned = 0
        for walk_id in np.flatnonzero(meetings >= 0):
            met += 1
            score, evals, cut = self._walk_score(
                walks_u[walk_id], walks_v[walk_id], int(meetings[walk_id])
            )
            contributions[walk_id] = score
            so_evals += evals
            pruned += cut
        self.stats.add(
            walks_examined=int(meetings.size), walks_met=met,
            so_evaluations=so_evals, walks_pruned=pruned,
        )
        estimate = sem_uv * float(contributions.mean())
        spread = float(contributions.std(ddof=1)) if contributions.size > 1 else 0.0
        half_width = sem_uv * z * spread / np.sqrt(self.walk_index.num_walks)
        return estimate, float(half_width)

    # ------------------------------------------------------------------
    # Internals — scalar path
    # ------------------------------------------------------------------
    def _walk_score(
        self, walk_u: np.ndarray, walk_v: np.ndarray, meeting: int
    ) -> tuple[float, int, int]:
        """Likelihood-ratio score of one met coupled walk (Def. 4.5).

        Returns ``(score, so_evaluations, pruned)`` so the per-step loop
        stays free of stats bookkeeping — callers fold the tallies into
        :class:`EstimatorStats` once per public query, which is what keeps
        the registry-mirrored counters off this hot path.
        """
        score = 1.0
        so_evals = 0
        for step in range(meeting):
            current_u = int(walk_u[step])
            current_v = int(walk_v[step])
            next_u = int(walk_u[step + 1])
            next_v = int(walk_v[step + 1])
            numerator = (
                self.measure.similarity(self._nodes[next_u], self._nodes[next_v])
                * self._weight_to[current_u][next_u]
                * self._weight_to[current_v][next_v]
            )
            so, fresh = self._so_value(current_u, current_v)
            so_evals += fresh
            if so <= 0:
                return 0.0, so_evals, 0
            p_step = numerator / so
            q_step = (
                self.walk_index.q_step_probability(current_u, next_u)
                * self.walk_index.q_step_probability(current_v, next_v)
            )
            if q_step <= 0:
                return 0.0, so_evals, 0
            score *= p_step * self.decay / q_step
            if self.theta is not None and score <= self.theta:
                # Def. 4.5: freeze the walk's value at its first ≤ θ bound.
                return score, so_evals, 1
        return score, so_evals, 0

    def _so_denominator(self, pos_u: int, pos_v: int) -> float:
        """``SO(u, v)``, counting fresh evaluations into the stats."""
        value, fresh = self._so_value(pos_u, pos_v)
        if fresh:
            self.stats.add(so_evaluations=fresh)
        return value

    def _so_value(self, pos_u: int, pos_v: int) -> tuple[float, int]:
        """``SO(u, v) = sum_{a,b} W(a,u) W(b,v) sem(a,b)`` — the O(d²) core.

        Returns ``(value, fresh)`` where *fresh* is 1 when the denominator
        was computed from scratch and 0 on a ``pair_index`` hit; callers
        own the ``so_evaluations`` bookkeeping.
        """
        if self.pair_index is not None:
            cached = self.pair_index.so_lookup(pos_u, pos_v)
            if cached is not None:
                return cached, 0
        if self._sem_matrix is not None:
            self._ensure_so_matrix()
            return float(self._so_matrix[pos_u, pos_v]), 1
        neighbours_u = self._in_lists[pos_u]
        neighbours_v = self._in_lists[pos_v]
        weights_u = self._in_weights[pos_u]
        weights_v = self._in_weights[pos_v]
        total = 0.0
        nodes = self._nodes
        similarity = self.measure.similarity
        for a, wa in zip(neighbours_u, weights_u):
            node_a = nodes[int(a)]
            for b, wb in zip(neighbours_v, weights_v):
                total += wa * wb * similarity(node_a, nodes[int(b)])
        return float(total), 1

    # ------------------------------------------------------------------
    # Internals — vectorised batch path
    # ------------------------------------------------------------------
    def _ensure_so_matrix(self) -> None:
        """Materialise all SO denominators at once: ``SO = W sem Wᵀ``.

        ``W`` is the sparse in-weight matrix (``W[v, a] = W(a, v)``), so the
        build costs O(nnz · n) — negligible next to the n² semantic matrix
        that gates this path.  One shared table keeps the scalar and batch
        paths bit-identical.
        """
        if self._so_matrix is not None or self._sem_matrix is None:
            return
        n = len(self._nodes)
        rows = np.concatenate(
            [np.full(self._in_lists[v].size, v, dtype=np.int64) for v in range(n)]
            or [np.empty(0, dtype=np.int64)]
        )
        cols = (
            np.concatenate([lst for lst in self._in_lists])
            if n
            else np.empty(0, dtype=np.int64)
        )
        data = (
            np.concatenate([w for w in self._in_weights])
            if n
            else np.empty(0, dtype=np.float64)
        )
        weight_matrix = sp.csr_matrix(
            (data.astype(np.float64), (rows, cols.astype(np.int64))), shape=(n, n)
        )
        left = np.asarray(weight_matrix @ self._sem_matrix)          # W sem
        self._so_matrix = np.asarray(weight_matrix @ left.T).T       # W sem Wᵀ

    def _ensure_step_tables(self) -> None:
        """Precompute ``W`` and ``Q`` for every stored walk step.

        ``_step_weights[v, w, s]`` is the edge weight of walk *w* of node
        *v* at step *s* (0 where the walk has ended) and ``_step_q`` the
        matching proposal probability.  Values are produced by the exact
        same lookups the per-query path used, so gathering from these
        tables is bit-identical to recomputing them.
        """
        if self._step_weights is not None:
            return
        walks = self.walk_index.walks
        current = walks[:, :, :-1].astype(np.int64)
        nxt = walks[:, :, 1:].astype(np.int64)
        valid = (current >= 0) & (nxt >= 0)
        cur0 = np.where(valid, current, 0)
        nxt0 = np.where(valid, nxt, 0)
        weights = self._edge_weight_lookup(cur0, nxt0)
        q = self._q_probability_lookup(cur0, weights)
        self._step_weights = np.where(valid, weights, 0.0)
        self._step_q = np.where(valid, q, 0.0)

    def _ensure_edge_tables(self) -> None:
        """Build the sorted ``(current, next) -> W(next, current)`` table.

        Edge weights are keyed by ``current * n + next`` into one globally
        sorted int64 array, so looking up the weight of every step of every
        stacked walk is a single ``searchsorted``.
        """
        if self._edge_keys is not None:
            return
        n = len(self._nodes)
        keys = []
        weights = []
        for v in range(n):
            neighbours = self._in_lists[v]
            if neighbours.size:
                keys.append(v * np.int64(n) + neighbours.astype(np.int64))
                weights.append(self._in_weights[v].astype(np.float64))
        if keys:
            all_keys = np.concatenate(keys)
            all_weights = np.concatenate(weights)
            order = np.argsort(all_keys)
            self._edge_keys = all_keys[order]
            self._edge_weights = all_weights[order]
        else:
            self._edge_keys = np.empty(0, dtype=np.int64)
            self._edge_weights = np.empty(0, dtype=np.float64)

    def _edge_weight_lookup(self, current: np.ndarray, chosen: np.ndarray) -> np.ndarray:
        """Vectorised ``W(chosen, current)`` for aligned index arrays."""
        self._ensure_edge_tables()
        n = len(self._nodes)
        queries = current.astype(np.int64) * np.int64(n) + chosen.astype(np.int64)
        position = np.searchsorted(self._edge_keys, queries)
        position = np.minimum(position, max(self._edge_keys.size - 1, 0))
        hit = (
            self._edge_keys[position] == queries
            if self._edge_keys.size
            else np.zeros(queries.shape, dtype=bool)
        )
        return np.where(hit, self._edge_weights[position], 0.0)

    def _q_probability_lookup(
        self, current: np.ndarray, edge_weight: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``Q[current -> chosen]`` (edge weight already known)."""
        tables = self.walk_index.tables
        degrees = tables.degrees[current]
        if self.walk_index.policy is WalkPolicy.UNIFORM:
            with np.errstate(divide="ignore"):
                return np.where(degrees > 0, 1.0 / degrees, 0.0)
        sums = tables.weight_sums[current]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(sums > 0, edge_weight / sums, 0.0)

    def _cached_so(self, pos_u: int, pos_v: int) -> float:
        """Memoised ``SO(u, v)`` for the backend's pair_index path.

        Consults the same ``_so_cache``/``pair_index``/stat-counting chain
        as the pre-seam batch path, so whichever backend asks — and in
        whatever block order — every (pair → value) is identical and each
        fresh evaluation is counted exactly once.
        """
        pair = (pos_u, pos_v)
        cached = self._so_cache.get(pair)
        if cached is None:
            cached = self._so_denominator(pos_u, pos_v)
            self._so_cache[pair] = cached
        return cached

    def _batch_walk_scores(
        self, pos_u: int, positions: np.ndarray, meetings: np.ndarray
    ) -> np.ndarray:
        """Sum of per-walk likelihood-ratio scores for each candidate.

        *meetings* is the ``(m, num_walks)`` first-meeting array for
        ``(pos_u, positions[i])``; the return value's entry *i* equals the
        scalar path's ``sum_w _walk_score(...)`` for candidate *i*.  The
        arithmetic itself lives in the compute backend — this method
        prepares the request (step tables, SO source) and folds the
        kernel's work counters back into the stats.
        """
        self._ensure_step_tables()
        if self.pair_index is None:
            self._ensure_so_matrix()
            so_matrix, so_lookup = self._so_matrix, None
        else:
            # _cached_so owns caching and so_evaluations counting, so the
            # pair_index is consulted exactly as in the scalar path.
            so_matrix, so_lookup = None, self._cached_so
        request = WalkScoreRequest(
            walks=self.walk_index.walks,
            pos_u=pos_u,
            positions=positions,
            meetings=meetings,
            sem_matrix=self._sem_matrix,
            step_weights=self._step_weights,
            step_q=self._step_q,
            decay=self.decay,
            theta=self.theta,
            so_matrix=so_matrix,
            so_lookup=so_lookup,
        )
        with kernel_timer(self.backend.name, "batch_walk_scores"):
            result = self.backend.batch_walk_scores(request)
        self.stats.add(
            walks_met=result.walks_met,
            so_evaluations=result.so_evaluations,
            walks_pruned=result.walks_pruned,
        )
        self._accuracy.update(
            self.walk_index.num_walks, result.walks_met, int(positions.size)
        )
        return result.totals


class SupportsSoLookup:
    """Protocol-ish base: anything with ``so_lookup(pos_u, pos_v)``."""

    def so_lookup(self, pos_u: int, pos_v: int) -> float | None:  # pragma: no cover
        """Return the cached ``SO`` denominator or ``None`` on a miss."""
        raise NotImplementedError
