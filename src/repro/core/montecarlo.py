"""Monte-Carlo similarity estimators (Section 4).

:class:`MonteCarloSimRank` is the classical Fogaras-Rácz estimator:
``(1/n_w) * sum c^{tau_l}`` over coupled pre-sampled walks.

:class:`MonteCarloSemSim` is the paper's Importance-Sampling estimator
(Algorithm 1).  The walks come from the *proposal* distribution ``Q``
(uniform, sampled per node), while the quantity of interest is an
expectation under the semantic-aware distribution ``P``; each met coupled
walk therefore contributes its likelihood ratio

    ``s(w) = prod_i  P[w_i -> w_{i+1}] * c / Q[w_i -> w_{i+1}]``

and the estimate is ``sem(u, v) / n_w * sum_w s(w)`` — unbiased for any
``Q`` supported wherever ``P`` is (Eq. 4).

Pruning (Section 4.4) applies two cuts, each bounding the error by θ:

* the *semantic gate* — ``sem(u, v) <= theta`` short-circuits to 0
  (justified by Prop. 2.5);
* the *walk cut* — the running product ``s(w)`` can only shrink (each
  factor is ≤ θ-tested), so once it drops to ≤ θ the walk's final value is
  frozen there (Def. 4.5).

A note on the paper's Algorithm 1 listing: it accumulates ``Pw`` and ``Qw``
cumulatively *and* multiplies ``Pw/Qw`` into ``sim_w`` at every step, which
would square earlier step ratios.  We implement the intent defined by
Def. 4.5 — per-step ratios multiplied once — which is also what makes the
estimator unbiased (verified statistically in the tests).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import Node
from repro.core.walk_index import WalkIndex
from repro.semantics.base import SemanticMeasure
from repro.semantics.cache import MatrixMeasure


@dataclass
class EstimatorStats:
    """Work counters for one estimator instance (used by the benchmarks)."""

    queries: int = 0
    walks_examined: int = 0
    walks_met: int = 0
    walks_pruned: int = 0
    so_evaluations: int = 0
    sem_gate_hits: int = 0


class MonteCarloSimRank:
    """Classical MC SimRank over a :class:`WalkIndex` (Section 4.1)."""

    def __init__(self, walk_index: WalkIndex, decay: float = 0.6) -> None:
        if not 0 < decay < 1:
            raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
        self.walk_index = walk_index
        self.decay = decay
        self.stats = EstimatorStats()

    def similarity(self, u: Node, v: Node) -> float:
        """Return the MC SimRank estimate ``(1/n_w) * sum c^tau``."""
        self.stats.queries += 1
        if u == v:
            return 1.0
        meetings = self.walk_index.first_meetings(u, v)
        self.stats.walks_examined += meetings.size
        met = meetings[meetings >= 0]
        self.stats.walks_met += met.size
        if met.size == 0:
            return 0.0
        return float(np.sum(self.decay ** met) / self.walk_index.num_walks)


class MonteCarloSemSim:
    """IS-based MC SemSim — Algorithm 1, with optional pruning and index.

    Parameters
    ----------
    walk_index:
        The shared per-node walk index (proposal ``Q``).
    measure:
        The semantic measure ``sem``.
    decay:
        The decay factor ``c``.
    theta:
        Pruning threshold; ``None`` disables pruning entirely (the unbiased
        estimator).  Lemma 4.7 wants ``theta <= 1 - c`` to keep pruned
        scores inside [0, 1]; we warn-by-exception only on clearly invalid
        values and leave the Lemma's recommendation to callers.
    pair_index:
        Optional :class:`repro.core.sling.SlingIndex`-compatible cache of
        the SARW step denominators ``SO(u, v)``; cuts the O(d²) inner loop
        for indexed pairs (the Fig. 4 "SLING" configuration).
    """

    def __init__(
        self,
        walk_index: WalkIndex,
        measure: SemanticMeasure,
        decay: float = 0.6,
        theta: float | None = 0.05,
        pair_index: "SupportsSoLookup | None" = None,
    ) -> None:
        if not 0 < decay < 1:
            raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
        if theta is not None and not 0 <= theta <= 1:
            raise ConfigurationError(f"theta must lie in [0, 1], got {theta!r}")
        self.walk_index = walk_index
        self.measure = measure
        self.decay = decay
        self.theta = theta
        self.pair_index = pair_index
        self.stats = EstimatorStats()
        graph_index = walk_index.index
        self._nodes = graph_index.nodes
        self._in_lists = graph_index.in_lists
        self._in_weights = graph_index.in_weights
        # weight_to[v][a] = W(a, v) for O(1) edge-weight lookups by position.
        self._weight_to: list[dict[int, float]] = [
            dict(zip(map(int, graph_index.in_lists[v]), map(float, graph_index.in_weights[v])))
            for v in range(graph_index.num_nodes)
        ]
        # Fast path: a MatrixMeasure whose node order matches the index lets
        # the O(d²) SO sum collapse to one vectorised bilinear form.
        self._sem_matrix: np.ndarray | None = None
        if isinstance(measure, MatrixMeasure) and measure.nodes == list(self._nodes):
            self._sem_matrix = measure.matrix

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def similarity(self, u: Node, v: Node) -> float:
        """Return the Algorithm-1 estimate of ``sim(u, v)``."""
        self.stats.queries += 1
        if u == v:
            return 1.0
        sem_uv = self.measure.similarity(u, v)
        if self.theta is not None and sem_uv <= self.theta:
            self.stats.sem_gate_hits += 1
            return 0.0
        walks_u = self.walk_index.walks_from(u)
        walks_v = self.walk_index.walks_from(v)
        meetings = self.walk_index.first_meetings(u, v)
        self.stats.walks_examined += meetings.size
        total = 0.0
        for walk_id in np.flatnonzero(meetings >= 0):
            self.stats.walks_met += 1
            total += self._walk_score(
                walks_u[walk_id], walks_v[walk_id], int(meetings[walk_id])
            )
        return sem_uv * total / self.walk_index.num_walks

    def similarity_with_interval(
        self, u: Node, v: Node, z: float = 1.96
    ) -> tuple[float, float]:
        """Return ``(estimate, half_width)`` with an empirical CLT interval.

        The per-coupled-walk contributions are i.i.d. (the walk index pairs
        independent samples), so ``z * std / sqrt(n_w)`` scaled by
        ``sem(u, v)`` is the usual normal-approximation half-width.  For a
        distribution-free (much looser) alternative, combine the point
        estimate with :func:`repro.core.bounds.deviation_probability`.
        """
        self.stats.queries += 1
        if u == v:
            return 1.0, 0.0
        sem_uv = self.measure.similarity(u, v)
        if self.theta is not None and sem_uv <= self.theta:
            self.stats.sem_gate_hits += 1
            return 0.0, 0.0
        walks_u = self.walk_index.walks_from(u)
        walks_v = self.walk_index.walks_from(v)
        meetings = self.walk_index.first_meetings(u, v)
        self.stats.walks_examined += meetings.size
        contributions = np.zeros(self.walk_index.num_walks)
        for walk_id in np.flatnonzero(meetings >= 0):
            self.stats.walks_met += 1
            contributions[walk_id] = self._walk_score(
                walks_u[walk_id], walks_v[walk_id], int(meetings[walk_id])
            )
        estimate = sem_uv * float(contributions.mean())
        spread = float(contributions.std(ddof=1)) if contributions.size > 1 else 0.0
        half_width = sem_uv * z * spread / np.sqrt(self.walk_index.num_walks)
        return estimate, float(half_width)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _walk_score(self, walk_u: np.ndarray, walk_v: np.ndarray, meeting: int) -> float:
        """Likelihood-ratio score of one met coupled walk (Def. 4.5)."""
        score = 1.0
        for step in range(meeting):
            current_u = int(walk_u[step])
            current_v = int(walk_v[step])
            next_u = int(walk_u[step + 1])
            next_v = int(walk_v[step + 1])
            numerator = (
                self.measure.similarity(self._nodes[next_u], self._nodes[next_v])
                * self._weight_to[current_u][next_u]
                * self._weight_to[current_v][next_v]
            )
            so = self._so_denominator(current_u, current_v)
            if so <= 0:
                return 0.0
            p_step = numerator / so
            q_step = (
                self.walk_index.q_step_probability(current_u, next_u)
                * self.walk_index.q_step_probability(current_v, next_v)
            )
            if q_step <= 0:
                return 0.0
            score *= p_step * self.decay / q_step
            if self.theta is not None and score <= self.theta:
                # Def. 4.5: freeze the walk's value at its first ≤ θ bound.
                self.stats.walks_pruned += 1
                return score
        return score

    def _so_denominator(self, pos_u: int, pos_v: int) -> float:
        """``SO(u, v) = sum_{a,b} W(a,u) W(b,v) sem(a,b)`` — the O(d²) core."""
        if self.pair_index is not None:
            cached = self.pair_index.so_lookup(pos_u, pos_v)
            if cached is not None:
                return cached
        self.stats.so_evaluations += 1
        neighbours_u = self._in_lists[pos_u]
        neighbours_v = self._in_lists[pos_v]
        weights_u = self._in_weights[pos_u]
        weights_v = self._in_weights[pos_v]
        if self._sem_matrix is not None:
            block = self._sem_matrix[np.ix_(neighbours_u, neighbours_v)]
            return float(weights_u @ block @ weights_v)
        total = 0.0
        nodes = self._nodes
        similarity = self.measure.similarity
        for a, wa in zip(neighbours_u, weights_u):
            node_a = nodes[int(a)]
            for b, wb in zip(neighbours_v, weights_v):
                total += wa * wb * similarity(node_a, nodes[int(b)])
        return float(total)


class SupportsSoLookup:
    """Protocol-ish base: anything with ``so_lookup(pos_u, pos_v)``."""

    def so_lookup(self, pos_u: int, pos_v: int) -> float | None:  # pragma: no cover
        """Return the cached ``SO`` denominator or ``None`` on a miss."""
        raise NotImplementedError
