"""Semantic-Aware Random Walks (Definition 3.1).

A surfer on the (reversed) pair graph ``G²`` standing at ``(u, u')`` moves
to ``(v, v')`` with probability proportional to

    ``W(v, u) * W(v', u') * sem(v, v')``

— pairs of semantically close targets are preferred, but *every* neighbour
pair keeps positive probability (the paper contrasts this with meta-path
approaches that hard-restrict to same-label steps).

:class:`SemanticAwareWalker` samples coupled walks under this distribution
directly over ``G`` (never materialising ``G²``) and reports first-meeting
times, which is all Theorem 3.3 needs:

    ``sim(u, v) = sem(u, v) * E_P[c^tau]``.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.errors import NodeNotFoundError
from repro.hin.graph import HIN, Node
from repro.hin.pair_graph import Pair
from repro.semantics.base import SemanticMeasure
from repro.utils.rng import ensure_rng


def sarw_step_distribution(
    graph: HIN,
    measure: SemanticMeasure,
    pair: Pair,
) -> list[tuple[Pair, float]]:
    """Return the full next-step distribution from *pair* (Definition 3.1).

    The returned probabilities sum to 1 (or the list is empty when either
    component has no in-neighbour).  Singleton pairs return the empty list:
    surfers halt at their first meeting.

    >>> # Example 3.2 reproduces with the Figure-2 graph in the tests.
    """
    u, v = pair
    if u not in graph:
        raise NodeNotFoundError(u)
    if v not in graph:
        raise NodeNotFoundError(v)
    if u == v:
        return []
    targets: list[Pair] = []
    masses: list[float] = []
    for a, weight_a, _ in graph.in_edges(u):
        for b, weight_b, _ in graph.in_edges(v):
            targets.append((a, b))
            masses.append(weight_a * weight_b * measure.similarity(a, b))
    total = float(sum(masses))
    if total <= 0:
        return []
    return [(target, mass / total) for target, mass in zip(targets, masses)]


@dataclass
class CoupledWalk:
    """One sampled SARW: the sequence of pairs and its step probabilities."""

    pairs: list[Pair]
    step_probabilities: list[float]

    @property
    def length(self) -> int:
        """``l(w)`` — the number of *steps* (edges) taken."""
        return len(self.pairs) - 1

    @property
    def probability(self) -> float:
        """``P[w]`` — the product of the step probabilities."""
        result = 1.0
        for p in self.step_probabilities:
            result *= p
        return result

    @property
    def met(self) -> bool:
        """Whether the walk terminated at a singleton pair."""
        return bool(self.pairs) and self.pairs[-1][0] == self.pairs[-1][1]


class SemanticAwareWalker:
    """Samples semantic-aware coupled walks from a base graph.

    Step distributions are memoised per visited pair, so long sampling
    campaigns amortise the ``|I(u)| * |I(v)|`` enumeration cost.
    """

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        self.measure = measure
        self._rng = ensure_rng(seed)
        self._distributions: dict[Pair, list[tuple[Pair, float]]] = {}

    def step_distribution(self, pair: Pair) -> list[tuple[Pair, float]]:
        """Memoised :func:`sarw_step_distribution`."""
        cached = self._distributions.get(pair)
        if cached is None:
            cached = sarw_step_distribution(self.graph, self.measure, pair)
            self._distributions[pair] = cached
        return cached

    def sample_walk(self, start: Pair, max_steps: int) -> CoupledWalk:
        """Sample one SARW from *start*, truncated at *max_steps* steps.

        The walk halts early when it reaches a singleton pair (the surfers
        met) or a pair with no outgoing move.
        """
        pairs = [start]
        probabilities: list[float] = []
        current = start
        for _ in range(max_steps):
            if current[0] == current[1]:
                break
            distribution = self.step_distribution(current)
            if not distribution:
                break
            masses = np.array([p for _, p in distribution])
            choice = int(self._rng.choice(len(distribution), p=masses / masses.sum()))
            current, probability = distribution[choice]
            pairs.append(current)
            probabilities.append(probability)
        return CoupledWalk(pairs, probabilities)

    def estimate_similarity(
        self,
        u: Node,
        v: Node,
        decay: float,
        num_walks: int,
        max_steps: int,
    ) -> float:
        """Direct MC estimate of ``sem(u, v) * E_P[c^tau]`` (Theorem 3.3).

        This is the *naive* estimator of Section 4.2 for a single pair; the
        scalable path is :class:`repro.core.montecarlo.MonteCarloSemSim`.
        """
        if num_walks < 1:
            return 0.0
        total = 0.0
        for _ in range(num_walks):
            walk = self.sample_walk((u, v), max_steps)
            if walk.met:
                total += decay ** walk.length
        return self.measure.similarity(u, v) * total / num_walks
