"""Semantic-Aware Random Walks (Definition 3.1).

A surfer on the (reversed) pair graph ``G²`` standing at ``(u, u')`` moves
to ``(v, v')`` with probability proportional to

    ``W(v, u) * W(v', u') * sem(v, v')``

— pairs of semantically close targets are preferred, but *every* neighbour
pair keeps positive probability (the paper contrasts this with meta-path
approaches that hard-restrict to same-label steps).

:class:`SemanticAwareWalker` samples coupled walks under this distribution
directly over ``G`` (never materialising ``G²``) and reports first-meeting
times, which is all Theorem 3.3 needs:

    ``sim(u, v) = sem(u, v) * E_P[c^tau]``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
import numpy as np

from repro.errors import NodeNotFoundError
from repro.hin.graph import HIN, Node
from repro.hin.pair_graph import Pair
from repro.semantics.base import SemanticMeasure
from repro.semantics.cache import MatrixMeasure
from repro.utils.rng import ensure_rng


def sarw_step_distribution(
    graph: HIN,
    measure: SemanticMeasure,
    pair: Pair,
) -> list[tuple[Pair, float]]:
    """Return the full next-step distribution from *pair* (Definition 3.1).

    The returned probabilities sum to 1 (or the list is empty when either
    component has no in-neighbour).  Singleton pairs return the empty list:
    surfers halt at their first meeting.

    >>> # Example 3.2 reproduces with the Figure-2 graph in the tests.
    """
    u, v = pair
    if u not in graph:
        raise NodeNotFoundError(u)
    if v not in graph:
        raise NodeNotFoundError(v)
    if u == v:
        return []
    targets: list[Pair] = []
    masses: list[float] = []
    for a, weight_a, _ in graph.in_edges(u):
        for b, weight_b, _ in graph.in_edges(v):
            targets.append((a, b))
            masses.append(weight_a * weight_b * measure.similarity(a, b))
    total = float(sum(masses))
    if total <= 0:
        return []
    return [(target, mass / total) for target, mass in zip(targets, masses)]


@dataclass
class CoupledWalk:
    """One sampled SARW: the sequence of pairs and its step probabilities."""

    pairs: list[Pair]
    step_probabilities: list[float]

    @property
    def length(self) -> int:
        """``l(w)`` — the number of *steps* (edges) taken."""
        return len(self.pairs) - 1

    @property
    def probability(self) -> float:
        """``P[w]`` — the product of the step probabilities."""
        result = 1.0
        for p in self.step_probabilities:
            result *= p
        return result

    @property
    def met(self) -> bool:
        """Whether the walk terminated at a singleton pair."""
        return bool(self.pairs) and self.pairs[-1][0] == self.pairs[-1][1]


class SemanticAwareWalker:
    """Samples semantic-aware coupled walks from a base graph.

    Step distributions are memoised per visited pair, so long sampling
    campaigns amortise the ``|I(u)| * |I(v)|`` enumeration cost.  The memo
    is bounded (least-recently-used eviction): long-lived serving processes
    visit an unbounded stream of pairs, and the pre-seam unbounded dict
    grew without limit.  The cap comes from
    :attr:`repro.backends.BackendConfig.step_memo_cap` when a *backend* or
    *config* is supplied, else defaults to the ``BackendConfig`` default.

    When a *backend* is given **and** the measure is a
    :class:`~repro.semantics.cache.MatrixMeasure`, the ``|I(u)| * |I(v)|``
    mass enumeration is delegated to the backend's vectorised
    :meth:`~repro.backends.ComputeBackend.step_masses` kernel.  The masses
    are mathematically identical but float summation order may differ from
    the scalar loop, so seeded walk streams are only reproducible against
    the same configuration — the default (no backend) path is untouched
    and keeps the historical streams bit-for-bit.
    """

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure,
        seed: int | np.random.Generator | None = None,
        *,
        backend=None,
        config=None,
    ) -> None:
        from repro.backends import BackendConfig, resolve_backend

        self.graph = graph
        self.measure = measure
        self._rng = ensure_rng(seed)
        self._distributions: OrderedDict[Pair, list[tuple[Pair, float]]] = (
            OrderedDict()
        )
        if backend is None and config is None:
            self.backend = None
            self._memo_cap = BackendConfig().step_memo_cap
        else:
            self.backend = resolve_backend(backend, config)
            self._memo_cap = self.backend.config.step_memo_cap
        self._vectorised = self.backend is not None and isinstance(
            measure, MatrixMeasure
        )

    def step_distribution(self, pair: Pair) -> list[tuple[Pair, float]]:
        """Memoised :func:`sarw_step_distribution` (bounded, LRU)."""
        memo = self._distributions
        try:
            cached = memo[pair]
        except KeyError:
            cached = self._compute_distribution(pair)
            memo[pair] = cached
            if self._memo_cap is not None and len(memo) > self._memo_cap:
                memo.popitem(last=False)
        else:
            memo.move_to_end(pair)
        return cached

    def _compute_distribution(self, pair: Pair) -> list[tuple[Pair, float]]:
        if not self._vectorised:
            return sarw_step_distribution(self.graph, self.measure, pair)
        u, v = pair
        if u not in self.graph:
            raise NodeNotFoundError(u)
        if v not in self.graph:
            raise NodeNotFoundError(v)
        if u == v:
            return []
        in_u = list(self.graph.in_edges(u))
        in_v = list(self.graph.in_edges(v))
        if not in_u or not in_v:
            return []
        sources_u = [a for a, _, _ in in_u]
        sources_v = [b for b, _, _ in in_v]
        weights_u = np.array([w for _, w, _ in in_u], dtype=np.float64)
        weights_v = np.array([w for _, w, _ in in_v], dtype=np.float64)
        sem_block = self.measure.block(sources_u, sources_v)
        masses = self.backend.step_masses(weights_u, weights_v, sem_block)
        total = float(masses.sum())
        if total <= 0:
            return []
        return [
            ((a, b), float(mass) / total)
            for (a, b), mass in zip(
                ((a, b) for a in sources_u for b in sources_v), masses
            )
        ]

    def sample_walk(self, start: Pair, max_steps: int) -> CoupledWalk:
        """Sample one SARW from *start*, truncated at *max_steps* steps.

        The walk halts early when it reaches a singleton pair (the surfers
        met) or a pair with no outgoing move.
        """
        pairs = [start]
        probabilities: list[float] = []
        current = start
        for _ in range(max_steps):
            if current[0] == current[1]:
                break
            distribution = self.step_distribution(current)
            if not distribution:
                break
            masses = np.array([p for _, p in distribution])
            choice = int(self._rng.choice(len(distribution), p=masses / masses.sum()))
            current, probability = distribution[choice]
            pairs.append(current)
            probabilities.append(probability)
        return CoupledWalk(pairs, probabilities)

    def estimate_similarity(
        self,
        u: Node,
        v: Node,
        decay: float,
        num_walks: int,
        max_steps: int,
    ) -> float:
        """Direct MC estimate of ``sem(u, v) * E_P[c^tau]`` (Theorem 3.3).

        This is the *naive* estimator of Section 4.2 for a single pair; the
        scalable path is :class:`repro.core.montecarlo.MonteCarloSemSim`.
        """
        if num_walks < 1:
            return 0.0
        total = 0.0
        for _ in range(num_walks):
            walk = self.sample_walk((u, v), max_steps)
            if walk.met:
                total += decay ** walk.length
        return self.measure.similarity(u, v) * total / num_walks
