"""Single-source similarity queries (Section 7 future work, after [17, 46]).

``sim(u, v)`` for a fixed ``u`` and *every* ``v`` is the primitive behind
top-k search, link prediction and entity resolution.  Three strategies:

* :func:`single_source_mc` — couples the query node's pre-sampled walks
  against every candidate's walks through the estimator's batched query
  path: one stacked-array pass detects every meeting, the IS correction
  runs vectorised over the met walks only, and the Prop. 2.5 semantic gate
  skips candidates outright.
* :func:`single_source_exact` — one linear solve over the pair graph
  restricted to states reachable from ``{u} × V`` (exact to a declared
  residual bound; memory scales with the touched state set, never N²).
* batching helper :func:`batch_similarity` for evaluating many explicit
  pairs against one estimator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.montecarlo import MonteCarloSemSim
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure


def single_source_mc(
    estimator: MonteCarloSemSim,
    query: Node,
    candidates: Sequence[Node] | None = None,
) -> dict[Node, float]:
    """Estimate ``sim(query, v)`` for every candidate via the walk index.

    A thin wrapper over the estimator's batched query path: first-meeting
    detection, likelihood-ratio products and the θ walk-cut all run on
    stacked arrays (see :meth:`MonteCarloSemSim.similarity_batch`).  With
    pruning enabled on *estimator*, candidates below the semantic threshold
    are gated to 0 without touching their walks (Prop. 2.5).
    """
    index = estimator.walk_index
    if candidates is None:
        candidates = list(index.index.nodes)
    else:
        candidates = list(candidates)
    scores = estimator.similarity_batch(query, candidates)
    return {node: float(value) for node, value in zip(candidates, scores)}


def single_source_exact(
    graph: HIN,
    measure: SemanticMeasure,
    query: Node,
    decay: float = 0.6,
    *,
    tolerance: float = 1e-10,
    max_states: int | None = None,
) -> dict[Node, float]:
    """Exact single-source SemSim via the linearized per-query solve.

    Delegates to :class:`~repro.linear.LinearSemSim`: one sparse linear
    system over the pair states reachable from ``{query} × V``, solved to
    *tolerance* — never the all-pairs table, never quadratic memory.

    *max_states* bounds the reachable pair-state set (default: the
    solver's guard).  Exceeding it raises
    :class:`~repro.errors.ConfigurationError`; construct a
    ``QueryEngine(estimator="linear")`` directly to tune the budget, or
    ``estimator="lowrank"`` for an approximate answer in O(N·r) memory.
    """
    from repro.linear import LinearSemSim  # local: core must not cycle

    if query not in graph:
        raise ConfigurationError(f"query node {query!r} is not in the graph")
    solver = LinearSemSim(
        graph, measure, decay=decay, tolerance=tolerance,
        max_states=max_states,
    )
    candidates = list(graph.nodes())
    scores = solver.similarity_batch(query, candidates)
    return {v: float(s) for v, s in zip(candidates, scores)}


def batch_similarity(
    estimator,
    pairs: Iterable[tuple[Node, Node]],
) -> list[float]:
    """Evaluate many explicit pairs against one estimator.

    When *estimator* exposes ``similarity_batch`` (the MC estimators),
    pairs are grouped by their first node and each group is scored in one
    vectorised pass; any other object with a ``similarity(u, v)`` method
    falls back to per-pair calls.  Output order follows input order either
    way.
    """
    pair_list = list(pairs)
    batch = getattr(estimator, "similarity_batch", None)
    if batch is None:
        return [estimator.similarity(u, v) for u, v in pair_list]
    groups: dict[Node, list[int]] = {}
    for i, (u, _) in enumerate(pair_list):
        groups.setdefault(u, []).append(i)
    out: list[float] = [0.0] * len(pair_list)
    for u, indices in groups.items():
        scores = batch(u, [pair_list[i][1] for i in indices])
        for i, value in zip(indices, scores):
            out[i] = float(value)
    return out
