"""Single-source similarity queries (Section 7 future work, after [17, 46]).

``sim(u, v)`` for a fixed ``u`` and *every* ``v`` is the primitive behind
top-k search, link prediction and entity resolution.  Three strategies:

* :func:`single_source_mc` — couples the query node's pre-sampled walks
  against every candidate's walks.  The meeting detection is one vectorised
  numpy comparison against the whole walk tensor, so the per-candidate cost
  of the *SimRank part* is O(n_w · t) array work; the SemSim IS correction
  then runs only for candidates whose walks actually met (usually a small
  fraction), and the Prop. 2.5 semantic gate skips candidates outright.
* :func:`single_source_exact` — one linear solve over the pair graph
  restricted to states reachable from ``{u} × V`` (exact, quadratic
  memory; small graphs only).
* batching helper :func:`batch_similarity` for evaluating many explicit
  pairs against one estimator.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.core.montecarlo import MonteCarloSemSim
from repro.core.pair_engine import semsim_via_pair_graph
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure


def single_source_mc(
    estimator: MonteCarloSemSim,
    query: Node,
    candidates: Sequence[Node] | None = None,
) -> dict[Node, float]:
    """Estimate ``sim(query, v)`` for every candidate via the walk index.

    The fast path first finds, in one vectorised pass per candidate block,
    which coupled walks meet at all; only met walks pay the IS correction.
    With pruning enabled on *estimator*, candidates below the semantic
    threshold are gated to 0 without touching their walks (Prop. 2.5).
    """
    index = estimator.walk_index
    if candidates is None:
        candidates = list(index.index.nodes)
    walks_q = index.walks_from(query)

    scores: dict[Node, float] = {}
    for candidate in candidates:
        if candidate == query:
            scores[candidate] = 1.0
            continue
        sem = estimator.measure.similarity(query, candidate)
        if estimator.theta is not None and sem <= estimator.theta:
            scores[candidate] = 0.0
            continue
        walks_c = index.walks_from(candidate)
        alive = (walks_q >= 0) & (walks_c >= 0)
        same = (walks_q == walks_c) & alive
        same[:, 0] = False
        met_rows = np.flatnonzero(same.any(axis=1))
        if met_rows.size == 0:
            scores[candidate] = 0.0
            continue
        meetings = same[met_rows].argmax(axis=1)
        total = 0.0
        for row, meeting in zip(met_rows, meetings):
            total += estimator._walk_score(
                walks_q[row], walks_c[row], int(meeting)
            )
        scores[candidate] = sem * total / index.num_walks
    return scores


def single_source_exact(
    graph: HIN,
    measure: SemanticMeasure,
    query: Node,
    decay: float = 0.6,
) -> dict[Node, float]:
    """Exact single-source SemSim via the pair-graph solve.

    Currently computes the full all-pairs solution and projects the query
    row — exactness first; the walk-index path above is the scalable one.
    """
    if query not in graph:
        raise ConfigurationError(f"query node {query!r} is not in the graph")
    all_pairs = semsim_via_pair_graph(graph, measure, decay=decay)
    return {v: all_pairs[(query, v)] for v in graph.nodes()}


def batch_similarity(
    estimator,
    pairs: Iterable[tuple[Node, Node]],
) -> list[float]:
    """Evaluate ``estimator.similarity`` over many pairs.

    Exists so benchmark and task code has one obvious call for bulk
    evaluation; any object with a ``similarity(u, v)`` method works.
    """
    return [estimator.similarity(u, v) for u, v in pairs]
