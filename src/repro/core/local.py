"""Localised single-pair computation with a provable truncation bound.

The iterative form computes *all* pairs even when one score is wanted —
the first disadvantage Section 3 lists.  But ``R_k(u, v)`` only depends on
pairs within ``k`` reverse-hops of ``(u, v)``: running ``k`` iterations on
the subgraph induced by the union of the two ``k``-hop in-neighbourhoods
yields *exactly* ``R_k(u, v)``, and Prop. 2.4 bounds the tail:

    ``R_k(u, v) <= sim(u, v) <= R_k(u, v) + sem(u, v) * c^{k+1} / (1 - c)``

so the half-width of the returned interval is controlled by ``k`` alone.
For queries about well-localised nodes this touches a tiny fraction of the
graph — the deterministic counterpart of the MC single-pair estimator.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from repro.core.iterative import iterate_fixed_point
from repro.errors import ConfigurationError, NodeNotFoundError
from repro.hin.graph import HIN, Node
from repro.semantics.base import SemanticMeasure


@dataclass
class LocalScore:
    """A localised single-pair result with its rigorous error interval."""

    lower: float
    upper: float
    subgraph_nodes: int
    iterations: int

    @property
    def midpoint(self) -> float:
        """Centre of the score interval."""
        return 0.5 * (self.lower + self.upper)

    @property
    def half_width(self) -> float:
        """Half the interval width — the rigorous error bound."""
        return 0.5 * (self.upper - self.lower)


def _reverse_ball(graph: HIN, source: Node, radius: int) -> set[Node]:
    """Nodes reachable from *source* within *radius* reverse hops."""
    distances = {source: 0}
    queue: deque[Node] = deque([source])
    while queue:
        current = queue.popleft()
        depth = distances[current]
        if depth >= radius:
            continue
        for neighbour in graph.in_neighbors(current):
            if neighbour not in distances:
                distances[neighbour] = depth + 1
                queue.append(neighbour)
    return set(distances)


def local_semsim(
    graph: HIN,
    measure: SemanticMeasure,
    u: Node,
    v: Node,
    decay: float = 0.6,
    iterations: int = 8,
) -> LocalScore:
    """Return a rigorous interval for ``sim(u, v)`` from a local subgraph.

    Runs exactly *iterations* update steps on the union of the two
    ``iterations``-hop reverse neighbourhoods.  The lower bound is
    ``R_k(u, v)`` (monotone from below, Theorem 2.3); the upper bound adds
    the geometric tail of Prop. 2.4.
    """
    if u not in graph:
        raise NodeNotFoundError(u)
    if v not in graph:
        raise NodeNotFoundError(v)
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
    if iterations < 1:
        raise ConfigurationError(f"iterations must be >= 1, got {iterations!r}")
    if u == v:
        return LocalScore(1.0, 1.0, 1, 0)

    ball = _reverse_ball(graph, u, iterations) | _reverse_ball(graph, v, iterations)
    subgraph = graph.subgraph(ball)
    result = iterate_fixed_point(
        subgraph,
        measure=measure,
        decay=decay,
        max_iterations=iterations,
        tolerance=0.0,
    )
    lower = result.score(u, v)
    sem_uv = measure.similarity(u, v)
    tail = sem_uv * decay ** (iterations + 1) / (1.0 - decay)
    upper = min(sem_uv, lower + tail)  # Prop. 2.5 caps the score anyway
    return LocalScore(
        lower=lower,
        upper=upper,
        subgraph_nodes=subgraph.num_nodes,
        iterations=iterations,
    )
