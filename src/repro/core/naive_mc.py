"""The naive pair-sampled MC framework (Section 4.2) — the strawman.

One *can* estimate SemSim by sampling SARWs from every node-pair directly
(same per-query time and error as SimRank's framework), but the sample set
then holds ``n_w`` walks per *pair*: ``O(n_w * t * n²)`` storage versus the
``O(n_w * t * n)`` of the per-node index.  The paper introduces Importance
Sampling precisely to avoid this quadratic blow-up.

:class:`NaivePairSampler` implements the strawman faithfully — sampling
true SARWs per pair via :class:`~repro.core.sarw.SemanticAwareWalker` — and
exposes the storage accounting that the ablation benchmark contrasts with
:class:`~repro.core.walk_index.WalkIndex`.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.core.params import (
    validate_decay,
    validate_length,
    validate_num_walks,
)
from repro.hin.graph import HIN, Node
from repro.hin.pair_graph import Pair
from repro.core.sarw import CoupledWalk, SemanticAwareWalker
from repro.semantics.base import SemanticMeasure


class NaivePairSampler:
    """Per-pair SARW sampling with the direct ``sem * mean(c^tau)`` estimate."""

    def __init__(
        self,
        graph: HIN,
        measure: SemanticMeasure,
        decay: float = 0.6,
        num_walks: int = 150,
        length: int = 15,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        self.measure = measure
        self.decay = validate_decay(decay)
        self.num_walks = validate_num_walks(num_walks)
        self.length = validate_length(length)
        self._walker = SemanticAwareWalker(graph, measure, seed=seed)
        self._samples: dict[Pair, list[CoupledWalk]] = {}

    def presample(self, pairs: Iterable[Pair]) -> None:
        """Materialise the walk sets for *pairs* (the framework's index)."""
        for pair in pairs:
            if pair not in self._samples:
                self._samples[pair] = [
                    self._walker.sample_walk(pair, self.length)
                    for _ in range(self.num_walks)
                ]

    def similarity(self, u: Node, v: Node) -> float:
        """Return the direct SARW estimate for the pair ``(u, v)``.

        Pairs not presampled are sampled on first touch (and retained,
        which is exactly the storage problem being demonstrated).
        """
        if u == v:
            return 1.0
        self.presample([(u, v)])
        walks = self._samples[(u, v)]
        total = sum(self.decay ** walk.length for walk in walks if walk.met)
        return self.measure.similarity(u, v) * total / self.num_walks

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    @property
    def sampled_pairs(self) -> int:
        """Number of pairs whose walk sets are held in memory."""
        return len(self._samples)

    @property
    def storage_entries(self) -> int:
        """Total walk steps stored — grows as ``O(pairs * n_w * t)``."""
        return sum(
            len(walk.pairs) for walks in self._samples.values() for walk in walks
        )

    def projected_storage_entries(self, num_nodes: int) -> int:
        """Walk steps an all-pairs index would need: ``n² * n_w * (t + 1)``."""
        return num_nodes * num_nodes * self.num_walks * (self.length + 1)

    def __repr__(self) -> str:
        return (
            f"NaivePairSampler(pairs={self.sampled_pairs}, "
            f"num_walks={self.num_walks}, length={self.length})"
        )
