"""Shared fixed-point machinery for SimRank-family measures (Section 2.3).

Both SimRank and SemSim iterate the same shape of update:

    ``R_{k+1}(u, v) = sem(u, v) * c / N(u, v)
                      * sum_{a in I(u)} sum_{b in I(v)}
                            R_k(a, b) * W(a, u) * W(b, v)``

with ``R_k(u, u) = 1`` pinned, ``R = 0`` for pairs with an empty in-neighbour
set, and the normaliser ``N(u, v) = sum sum W(a,u) W(b,v) sem(a,b)``.
Setting ``sem ≡ 1`` and unit weights recovers plain SimRank, where
``N = |I(u)| * |I(v)|``.

The numpy engine evaluates the double sum as a sandwich product
``W.T @ R @ W`` (and ``N = W.T @ S @ W``, computed once — it does not depend
on ``R``).  The dict engine spells out the quadruple loop and exists to be
obviously correct; property tests assert the two agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from repro.core.metrics import ENGINE_FINAL_RESIDUAL
from repro.errors import ConfigurationError
from repro.hin.graph import HIN, Node
from repro.obs.registry import get_registry, is_enabled
from repro.obs.trace import span
from repro.semantics.base import SemanticMeasure, semantic_matrix

#: Convergence threshold the paper uses when it reports "converged after 5
#: iterations" (average differences below 1e-3); we default tighter.
DEFAULT_TOLERANCE = 1e-4
DEFAULT_MAX_ITERATIONS = 100

_RESIDUAL = get_registry().gauge(
    "iterative_residual",
    help="Max absolute off-diagonal score change of the latest fixed-point "
    "iteration (the stopping-rule residual).",
)
_ITERATIONS = get_registry().counter(
    "iterative_iterations_total",
    help="Fixed-point update steps performed across all solves.",
)


@dataclass
class IterationTrace:
    """Per-iteration convergence diagnostics (the data behind Figure 3).

    ``avg_absolute_diff[k]`` / ``avg_relative_diff[k]`` record the mean
    absolute and mean relative change of off-diagonal scores between
    iterations ``k`` and ``k+1``; ``max_absolute_diff`` backs the stopping
    rule.
    """

    avg_absolute_diff: list[float] = field(default_factory=list)
    avg_relative_diff: list[float] = field(default_factory=list)
    max_absolute_diff: list[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of update steps performed."""
        return len(self.avg_absolute_diff)

    def record(self, previous: np.ndarray, current: np.ndarray) -> None:
        """Append diagnostics for one ``previous -> current`` step."""
        off_diagonal = ~np.eye(current.shape[0], dtype=bool)
        delta = np.abs(current - previous)[off_diagonal]
        self.avg_absolute_diff.append(float(delta.mean()) if delta.size else 0.0)
        self.max_absolute_diff.append(float(delta.max()) if delta.size else 0.0)
        currents = current[off_diagonal]
        positive = currents > 0
        if positive.any():
            relative = delta[positive] / currents[positive]
            self.avg_relative_diff.append(float(relative.mean()))
        else:
            self.avg_relative_diff.append(0.0)


@dataclass
class FixedPointResult:
    """All-pairs scores plus the node ordering and convergence trace."""

    nodes: list[Node]
    matrix: np.ndarray
    trace: IterationTrace
    converged: bool

    @classmethod
    def from_matrix(
        cls,
        nodes: Sequence[Node],
        matrix: np.ndarray,
        converged: bool = True,
    ) -> "FixedPointResult":
        """Wrap a previously computed score table (warm-start restore).

        The per-iteration trace is not part of persisted artifacts, so the
        restored result carries an empty one; scores and node order are
        exactly the stored arrays (*matrix* may be a read-only memmap).
        """
        return cls(list(nodes), matrix, IterationTrace(), converged)

    def score(self, u: Node, v: Node) -> float:
        """Return the computed similarity of a single pair."""
        i = self.nodes.index(u)
        j = self.nodes.index(v)
        return float(self.matrix[i, j])

    def as_dict(self) -> dict[tuple[Node, Node], float]:
        """Return scores as ``{(u, v): score}`` for all ordered pairs."""
        return {
            (u, v): float(self.matrix[i, j])
            for i, u in enumerate(self.nodes)
            for j, v in enumerate(self.nodes)
        }


def _label_partitioned_adjacency(
    graph: HIN, nodes: Sequence[Node]
) -> list[np.ndarray]:
    """Return one weighted in-adjacency matrix per distinct edge label."""
    position = {node: i for i, node in enumerate(nodes)}
    by_label: dict[str, np.ndarray] = {}
    n = len(nodes)
    for source, target, weight, label in graph.edges():
        matrix = by_label.get(label)
        if matrix is None:
            matrix = np.zeros((n, n))
            by_label[label] = matrix
        matrix[position[source], position[target]] = weight
    return list(by_label.values())


def iterate_fixed_point(
    graph: HIN,
    measure: SemanticMeasure | None,
    decay: float,
    max_iterations: int = DEFAULT_MAX_ITERATIONS,
    tolerance: float = DEFAULT_TOLERANCE,
    use_weights: bool = True,
    restrict_edge_labels: bool = False,
    sem_matrix: np.ndarray | None = None,
    sparse_adjacency: bool = False,
) -> FixedPointResult:
    """Run the Eq. (2)-(3) iteration to (near) fixed point.

    Parameters
    ----------
    graph:
        The HIN ``G``.
    measure:
        Semantic measure; ``None`` means ``sem ≡ 1`` (SimRank semantics).
    decay:
        The decay factor ``c`` in ``(0, 1)``.
    max_iterations, tolerance:
        Stop after *max_iterations* steps or when the maximum absolute score
        change drops below *tolerance*, whichever comes first.
    use_weights:
        ``False`` ignores edge weights (binary adjacency) — plain SimRank.
    restrict_edge_labels:
        The Section 2.2 variant that only compares neighbour pairs reached
        through identically labelled edges (kept for the ablation; the paper
        found it *less* accurate).
    sem_matrix:
        Optional pre-materialised semantic matrix (saves the quadratic
        evaluation when the caller already has one).
    sparse_adjacency:
        Store the adjacency matrices in CSR form.  The score table ``R``
        stays dense (it fills up), but on sparse graphs the two sandwich
        products per iteration become sparse-dense products — markedly
        faster once ``|E| << |V|²``.  Results are identical to the dense
        engine (asserted in the tests).
    """
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")
    if max_iterations < 1:
        raise ConfigurationError(f"max_iterations must be >= 1, got {max_iterations!r}")

    nodes = list(graph.nodes())
    n = len(nodes)
    trace = IterationTrace()
    if n == 0:
        return FixedPointResult(nodes, np.zeros((0, 0)), trace, True)

    if sem_matrix is not None:
        sem = np.asarray(sem_matrix, dtype=np.float64)
        if sem.shape != (n, n):
            raise ConfigurationError(
                f"sem_matrix shape {sem.shape} does not match {n} nodes"
            )
    elif measure is not None:
        sem = semantic_matrix(measure, nodes)
    else:
        sem = np.ones((n, n))

    if restrict_edge_labels:
        adjacencies = _label_partitioned_adjacency(graph, nodes)
    else:
        adjacencies = [graph.index().weighted_in_adjacency()]
    if not use_weights:
        adjacencies = [(matrix > 0).astype(np.float64) for matrix in adjacencies]
    if sparse_adjacency:
        adjacencies = [sp.csr_matrix(matrix) for matrix in adjacencies]

    def sandwich(matrix, table: np.ndarray) -> np.ndarray:
        product = matrix.T @ table @ matrix
        return np.asarray(product)

    # N(u, v) = sum_labels W_l.T @ S @ W_l — independent of R, computed once.
    normaliser = np.zeros((n, n))
    for matrix in adjacencies:
        normaliser += sandwich(matrix, sem)
    supported = normaliser > 0

    current = np.eye(n)
    converged = False
    with span("iterative.solve", nodes=n, max_iterations=max_iterations):
        for _ in range(max_iterations):
            accumulated = np.zeros((n, n))
            for matrix in adjacencies:
                accumulated += sandwich(matrix, current)
            updated = np.zeros((n, n))
            np.divide(
                decay * sem * accumulated, normaliser, out=updated, where=supported
            )
            np.fill_diagonal(updated, 1.0)
            trace.record(current, updated)
            current = updated
            if is_enabled():
                _ITERATIONS.inc()
                _RESIDUAL.set(trace.max_absolute_diff[-1])
            if trace.max_absolute_diff[-1] < tolerance:
                converged = True
                break
    if is_enabled() and trace.max_absolute_diff:
        ENGINE_FINAL_RESIDUAL.labels(engine="iterative").set(
            trace.max_absolute_diff[-1]
        )
    return FixedPointResult(nodes, current, trace, converged)


def reference_fixed_point(
    graph: HIN,
    measure: SemanticMeasure | None,
    decay: float,
    iterations: int,
    use_weights: bool = True,
) -> dict[tuple[Node, Node], float]:
    """Literal quadruple-loop implementation of Eq. (2)-(3).

    Runs exactly *iterations* update steps (no early stop) and returns all
    ordered-pair scores.  Exists as the obviously-correct oracle for the
    vectorised engine; do not use on graphs beyond a few hundred nodes.
    """
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")

    def sem(a: Node, b: Node) -> float:
        if measure is None:
            return 1.0
        return measure.similarity(a, b)

    def weight(a: Node, b: Node) -> float:
        return graph.edge_weight(a, b) if use_weights else 1.0

    nodes = list(graph.nodes())
    scores: dict[tuple[Node, Node], float] = {
        (u, v): 1.0 if u == v else 0.0 for u in nodes for v in nodes
    }
    for _ in range(iterations):
        updated: dict[tuple[Node, Node], float] = {}
        for u in nodes:
            for v in nodes:
                if u == v:
                    updated[(u, v)] = 1.0
                    continue
                in_u = graph.in_neighbors(u)
                in_v = graph.in_neighbors(v)
                if not in_u or not in_v:
                    updated[(u, v)] = 0.0
                    continue
                normaliser = 0.0
                total = 0.0
                for a in in_u:
                    for b in in_v:
                        pair_weight = weight(a, u) * weight(b, v)
                        normaliser += pair_weight * sem(a, b)
                        total += scores[(a, b)] * pair_weight
                if normaliser <= 0:
                    updated[(u, v)] = 0.0
                else:
                    updated[(u, v)] = sem(u, v) * decay * total / normaliser
        scores = updated
    return scores
