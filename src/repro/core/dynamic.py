"""Dynamic-graph support for the MC framework (Section 7 future work).

The paper's random-walk approach is "compatible with updates in the graph"
(its Related Work, citing READS [14]): when an edge ``source -> target``
changes, only the walks that *visit* ``target`` are affected — and because
reverse walks are memoryless, resampling each affected walk's suffix from
its first visit of ``target`` restores the exact sampling distribution of
a freshly built index.

:class:`DynamicWalkIndex` implements that maintenance strategy on top of
:class:`~repro.core.walk_index.WalkIndex` and exposes the same query API,
so estimators plug in unchanged.  Note that estimators snapshot edge
weights at construction; recreate them after updates (cheap — the walk
storage is shared, not copied).
"""

from __future__ import annotations

import numpy as np

from repro.core.walk_index import WalkIndex, WalkPolicy
from repro.hin.graph import DEFAULT_EDGE_LABEL, DEFAULT_WEIGHT, HIN, Node
from repro.utils.rng import ensure_rng


class DynamicWalkIndex:
    """A reverse-walk index that tracks edge insertions and deletions.

    Wraps a private copy of the graph (updates through this class only) and
    keeps the walk tensor consistent with it.  Query methods mirror
    :class:`WalkIndex`.
    """

    def __init__(
        self,
        graph: HIN,
        num_walks: int = 150,
        length: int = 15,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        seed: int | np.random.Generator | None = None,
    ) -> None:
        self.graph = graph.copy()
        self._rng = ensure_rng(seed)
        self._inner = WalkIndex(
            self.graph, num_walks=num_walks, length=length,
            policy=policy, seed=self._rng,
        )
        self.updates_applied = 0
        self.walks_resampled = 0

    # ------------------------------------------------------------------
    # WalkIndex-compatible query API
    # ------------------------------------------------------------------
    @property
    def index(self):
        """Mirror of :class:`WalkIndex`.index for drop-in use."""
        return self._inner.index

    @property
    def num_walks(self) -> int:
        """Mirror of :class:`WalkIndex`.num_walks for drop-in use."""
        return self._inner.num_walks

    @property
    def length(self) -> int:
        """Mirror of :class:`WalkIndex`.length for drop-in use."""
        return self._inner.length

    @property
    def policy(self) -> WalkPolicy:
        """Mirror of :class:`WalkIndex`.policy for drop-in use."""
        return self._inner.policy

    @property
    def walks(self) -> np.ndarray:
        """Mirror of :class:`WalkIndex`.walks for drop-in use."""
        return self._inner.walks

    def node_position(self, node: Node) -> int:
        """See :meth:`WalkIndex.node_position`."""
        return self._inner.node_position(node)

    def walks_from(self, node: Node) -> np.ndarray:
        """See :meth:`WalkIndex.walks_from`."""
        return self._inner.walks_from(node)

    def first_meetings(self, u: Node, v: Node) -> np.ndarray:
        """See :meth:`WalkIndex.first_meetings`."""
        return self._inner.first_meetings(u, v)

    def q_step_probability(self, current: int, chosen: int) -> float:
        """See :meth:`WalkIndex.q_step_probability`."""
        return self._inner.q_step_probability(current, chosen)

    @property
    def storage_entries(self) -> int:
        """Mirror of :class:`WalkIndex`.storage_entries for drop-in use."""
        return self._inner.storage_entries

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_edge(
        self,
        source: Node,
        target: Node,
        weight: float = DEFAULT_WEIGHT,
        label: str = DEFAULT_EDGE_LABEL,
    ) -> int:
        """Insert ``source -> target``; returns the number of resampled walks.

        New endpoints are created (each new node receives its own fresh
        walk set).
        """
        new_nodes = [n for n in (source, target) if n not in self.graph]
        self.graph.add_edge(source, target, weight=weight, label=label)
        return self._after_change(target, new_nodes)

    def remove_edge(self, source: Node, target: Node) -> int:
        """Delete ``source -> target``; returns the number of resampled walks."""
        self.graph.remove_edge(source, target)
        return self._after_change(target, [])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _after_change(self, target: Node, new_nodes: list[Node]) -> int:
        """Refresh the numeric index and repair affected walks.

        Only walks visiting *target* before their last step are affected:
        the step taken *from* ``target`` draws from ``I(target)``, which is
        exactly what changed.
        """
        old_walks = self._inner.walks
        old_count = old_walks.shape[0]
        self._inner.index = self.graph.index()

        if new_nodes:
            # Extend the tensor with fresh walk sets for the new nodes.
            extra = len(new_nodes)
            grown = np.full(
                (old_count + extra, self.num_walks, self.length + 1),
                -1,
                dtype=old_walks.dtype,
            )
            grown[:old_count] = old_walks
            for offset, node in enumerate(new_nodes):
                position = self._inner.index.position[node]
                # New nodes are appended, so positions line up.
                assert position == old_count + offset
                grown[position, :, 0] = position
                for walk_id in range(self.num_walks):
                    self._resample_suffix(grown, position, walk_id, 0)
            self._inner.walks = grown

        walks = self._inner.walks
        target_pos = self._inner.index.position[target]
        # First visit of the changed node in each walk (excluding the final
        # offset — a visit there has no outgoing step to repair).
        visited = walks[:, :, : self.length] == target_pos
        affected_nodes, affected_walks = np.nonzero(visited.any(axis=2))
        resampled = 0
        for node_pos, walk_id in zip(affected_nodes, affected_walks):
            first = int(visited[node_pos, walk_id].argmax())
            self._resample_suffix(walks, int(node_pos), int(walk_id), first)
            resampled += 1
        self.updates_applied += 1
        self.walks_resampled += resampled
        return resampled

    def _resample_suffix(
        self, walks: np.ndarray, node_pos: int, walk_id: int, from_step: int
    ) -> None:
        """Redraw one walk's steps after *from_step* under the current graph."""
        index = self._inner.index
        current = int(walks[node_pos, walk_id, from_step])
        for step in range(from_step, self.length):
            if current < 0:
                walks[node_pos, walk_id, step + 1] = -1
                continue
            neighbours = index.in_lists[current]
            if neighbours.size == 0:
                walks[node_pos, walk_id, step + 1 :] = -1
                return
            if self._inner.policy is WalkPolicy.UNIFORM:
                choice = int(self._rng.integers(neighbours.size))
            else:
                weights = index.in_weights[current].astype(np.float64)
                cums = np.cumsum(weights / weights.sum())
                choice = int(np.searchsorted(cums, self._rng.random(), side="right"))
                choice = min(choice, cums.size - 1)
            current = int(neighbours[choice])
            walks[node_pos, walk_id, step + 1] = current

    def __repr__(self) -> str:
        return (
            f"DynamicWalkIndex(nodes={self.index.num_nodes}, "
            f"num_walks={self.num_walks}, length={self.length}, "
            f"updates={self.updates_applied})"
        )
