"""Dynamic-graph support for the MC framework (Section 7 future work).

The paper's random-walk approach is "compatible with updates in the graph"
(its Related Work, citing READS [14]): when the in-adjacency of a node
changes, only the walks that *visit* that node are affected — and because
reverse walks are memoryless, re-stepping each affected walk from its first
visit restores the sampling distribution of a freshly built index.

:class:`DynamicWalkIndex` goes one step further than distribution
equivalence: it replays the **exact draw schedule** of a from-scratch
build.  :class:`~repro.core.walk_index.WalkIndex` pre-draws one uniform
float per ``(node, walk, step)`` from a per-node child generator spawned
off the seed, and dead walkers simply waste their draws — so each walk is
a pure function of ``(draws, transition tables)``.  Child ``v`` of
``SeedSequence(seed)`` equals ``SeedSequence(entropy=seed,
spawn_key=(v,))``, so any node's draw block can be regenerated on demand,
including blocks for nodes appended after the initial build.  Repair after
a mutation therefore recompiles the transition tables, finds every row
whose compiled stepping data changed **bitwise**, and re-steps affected
walk suffixes with the regenerated draws through the same vectorised
``tables.step`` arithmetic.  The maintained tensor is *bit-identical* to
``WalkIndex(mutated_graph, seed=seed)`` — the property
``tests/properties/test_dynamic_identity.py`` proves under randomized
mutation schedules.

The bitwise row diff matters: the table compile computes cumulative
probabilities with one global ``cumsum``, so under the WEIGHTED policy an
untouched row's probabilities can shift by an ulp after a mutation
elsewhere.  Diffing the recompiled tables (instead of assuming only the
mutated node's row changed) keeps the identity exact for every policy.

Each successful mutation increments :attr:`DynamicWalkIndex.epoch`.
Estimators record the epoch at construction and raise
:class:`~repro.errors.StaleIndexError` when queried across a mutation —
they snapshot edge weights, so recreate them after updates (cheap: the
walk storage is reused, not resampled).
"""

from __future__ import annotations

import hashlib
import json

import numpy as np

from repro.core.walk_index import WalkIndex, WalkPolicy, _TransitionTables
from repro.errors import ConfigurationError, EdgeNotFoundError, GraphError
from repro.hin.graph import (
    DEFAULT_EDGE_LABEL,
    DEFAULT_NODE_LABEL,
    DEFAULT_WEIGHT,
    HIN,
    Node,
)

#: One applied mutation: ``(kind, source, target, weight_repr, label)`` with
#: every field a string so the log is JSON- and hash-stable.
MutationRecord = tuple[str, str, str, str, str]


def _seed_entropy(seed: int | None) -> int:
    """Normalise *seed* to the :class:`~numpy.random.SeedSequence` entropy.

    Incremental maintenance re-derives per-node draw streams from the seed,
    which an opaque, already-advanced ``Generator`` cannot provide — so only
    integers (or ``None``, capturing fresh OS entropy once) are accepted.
    """
    if seed is None:
        return int(np.random.SeedSequence().entropy)
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    raise ConfigurationError(
        "DynamicWalkIndex requires an integer seed (or None to capture a "
        f"random one), got {type(seed).__name__}: incremental maintenance "
        "regenerates per-node draw streams from the seed entropy"
    )


def _changed_rows(old: _TransitionTables, new: _TransitionTables) -> np.ndarray:
    """Boolean mask over *new*'s rows whose stepping data differs from *old*.

    Rows past ``old``'s node count (appended nodes) are always changed.
    Equal-degree rows contribute aligned subsequences to both flattened edge
    arrays, so the comparison is a single vectorised pass — no per-row loop.
    """
    old_n = old.degrees.size
    new_n = new.degrees.size
    changed = np.ones(new_n, dtype=bool)
    common = min(old_n, new_n)
    if common == 0:
        return changed
    deg_eq = np.zeros(max(old_n, new_n), dtype=bool)
    deg_eq[:common] = old.degrees[:common] == new.degrees[:common]
    changed[:common] = ~deg_eq[:common]
    if not deg_eq.any():
        return changed
    old_rows = np.repeat(np.arange(old_n), old.degrees)
    new_rows = np.repeat(np.arange(new_n), new.degrees)
    old_mask = deg_eq[old_rows]
    new_mask = deg_eq[new_rows]
    diff = (old.targets[old_mask] != new.targets[new_mask]) | (
        old.aug_cumprob[old_mask] != new.aug_cumprob[new_mask]
    )
    if diff.any():
        changed[np.unique(old_rows[old_mask][diff])] = True
    return changed


class DynamicWalkIndex:
    """A reverse-walk index that tracks graph mutations bit-exactly.

    Wraps a private copy of the graph (updates go through this class only)
    and keeps the walk tensor identical to what a from-scratch
    :class:`WalkIndex` build on the mutated graph would sample under the
    same seed.  Query methods mirror :class:`WalkIndex`, so estimators plug
    in unchanged — but must be recreated after mutations (enforced via
    :attr:`epoch` / :class:`~repro.errors.StaleIndexError`).

    Supported mutations: :meth:`add_edge` (insert or re-weight — the model
    has no parallel edges), :meth:`set_weight`, :meth:`remove_edge` and
    :meth:`add_node`.  Node removal is not supported (it would renumber the
    tensor); delete a node's edges instead.
    """

    def __init__(
        self,
        graph: HIN,
        num_walks: int = 150,
        length: int = 15,
        policy: WalkPolicy = WalkPolicy.UNIFORM,
        seed: int | None = None,
    ) -> None:
        self._entropy = _seed_entropy(seed)
        self.graph = graph.copy()
        self._inner = WalkIndex(
            self.graph, num_walks=num_walks, length=length,
            policy=policy, seed=self._entropy,
        )
        self.epoch = 0
        self.updates_applied = 0
        self.walks_resampled = 0
        self.mutation_log: list[MutationRecord] = []

    @classmethod
    def from_walk_index(
        cls,
        walk_index: "WalkIndex | DynamicWalkIndex",
        seed: int | None = None,
    ) -> "DynamicWalkIndex":
        """Promote an existing index to a mutable one without resampling.

        The walk tensor and graph are **copied**, so *walk_index* keeps
        serving unchanged — this is the copy-on-write entry point behind
        the serve layer's generation swaps.  *seed* must be the integer
        seed the source index was sampled with; when promoting another
        :class:`DynamicWalkIndex` it defaults to the source's own entropy,
        and the source's :attr:`epoch` carries over so estimator staleness
        stays monotone across generations.
        """
        if seed is None:
            if not isinstance(walk_index, DynamicWalkIndex):
                raise ConfigurationError(
                    "from_walk_index needs the integer seed the source "
                    "index was sampled with (only another DynamicWalkIndex "
                    "carries its own entropy)"
                )
            entropy = walk_index._entropy
        else:
            entropy = _seed_entropy(seed)
        source = (
            walk_index._inner
            if isinstance(walk_index, DynamicWalkIndex)
            else walk_index
        )
        dynamic = cls.__new__(cls)
        dynamic._entropy = entropy
        dynamic.graph = source.graph.copy()
        walks = np.array(source.walks, dtype=source.walks.dtype, copy=True)
        dynamic._inner = WalkIndex.from_arrays(
            dynamic.graph,
            walks,
            num_walks=source.num_walks,
            length=source.length,
            policy=source.policy,
        )
        dynamic.epoch = int(getattr(walk_index, "epoch", 0))
        dynamic.updates_applied = 0
        dynamic.walks_resampled = 0
        dynamic.mutation_log = []
        return dynamic

    # ------------------------------------------------------------------
    # WalkIndex-compatible query API
    # ------------------------------------------------------------------
    @property
    def index(self):
        """Mirror of :class:`WalkIndex`.index for drop-in use."""
        return self._inner.index

    @property
    def num_walks(self) -> int:
        """Mirror of :class:`WalkIndex`.num_walks for drop-in use."""
        return self._inner.num_walks

    @property
    def length(self) -> int:
        """Mirror of :class:`WalkIndex`.length for drop-in use."""
        return self._inner.length

    @property
    def policy(self) -> WalkPolicy:
        """Mirror of :class:`WalkIndex`.policy for drop-in use."""
        return self._inner.policy

    @property
    def walks(self) -> np.ndarray:
        """Mirror of :class:`WalkIndex`.walks for drop-in use."""
        return self._inner.walks

    @property
    def tables(self) -> _TransitionTables:
        """Mirror of :class:`WalkIndex`.tables for drop-in use."""
        return self._inner.tables

    @property
    def entropy(self) -> int:
        """The seed entropy every per-node draw stream derives from."""
        return self._entropy

    def node_position(self, node: Node) -> int:
        """See :meth:`WalkIndex.node_position`."""
        return self._inner.node_position(node)

    def node_positions(self, nodes) -> np.ndarray:
        """See :meth:`WalkIndex.node_positions`."""
        return self._inner.node_positions(nodes)

    def walks_from(self, node: Node) -> np.ndarray:
        """See :meth:`WalkIndex.walks_from`."""
        return self._inner.walks_from(node)

    def first_meetings(self, u: Node, v: Node) -> np.ndarray:
        """See :meth:`WalkIndex.first_meetings`."""
        return self._inner.first_meetings(u, v)

    def first_meetings_batch(self, query: Node, candidates) -> np.ndarray:
        """See :meth:`WalkIndex.first_meetings_batch`."""
        return self._inner.first_meetings_batch(query, candidates)

    def q_step_probability(self, current: int, chosen: int) -> float:
        """See :meth:`WalkIndex.q_step_probability`."""
        return self._inner.q_step_probability(current, chosen)

    @property
    def storage_entries(self) -> int:
        """Mirror of :class:`WalkIndex`.storage_entries for drop-in use."""
        return self._inner.storage_entries

    @property
    def storage_bytes(self) -> int:
        """Mirror of :class:`WalkIndex`.storage_bytes for drop-in use."""
        return self._inner.storage_bytes

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def add_edge(
        self,
        source: Node,
        target: Node,
        weight: float = DEFAULT_WEIGHT,
        label: str = DEFAULT_EDGE_LABEL,
    ) -> int:
        """Insert (or re-weight) ``source -> target``; returns walks re-stepped.

        New endpoints are created, each receiving the walk set a fresh
        build would sample for a node at its position.
        """
        return self._apply(
            ("add_edge", str(source), str(target), repr(float(weight)), label),
            lambda: self.graph.add_edge(source, target, weight=weight, label=label),
            (source, target),
        )

    def set_weight(self, source: Node, target: Node, weight: float) -> int:
        """Re-weight the existing edge ``source -> target`` (label kept)."""
        label = self.graph.edge_label(source, target)
        return self._apply(
            ("set_weight", str(source), str(target), repr(float(weight)), label),
            lambda: self.graph.add_edge(source, target, weight=weight, label=label),
            (),
        )

    def remove_edge(self, source: Node, target: Node) -> int:
        """Delete ``source -> target``; returns the number of walks re-stepped."""
        return self._apply(
            ("remove_edge", str(source), str(target), "", ""),
            lambda: self.graph.remove_edge(source, target),
            (),
        )

    def add_node(self, node: Node, label: str = DEFAULT_NODE_LABEL) -> int:
        """Append an isolated *node* with its own (dead-end) walk set."""
        if node in self.graph:
            raise GraphError(f"node {node!r} already exists in the graph")
        return self._apply(
            ("add_node", str(node), "", "", label),
            lambda: self.graph.add_node(node, label=label),
            (node,),
        )

    def mutation_log_hash(self) -> str:
        """SHA-256 over the JSON-encoded mutation log (lineage addressing)."""
        payload = json.dumps(self.mutation_log, separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _apply(self, record, mutate, node_candidates) -> int:
        # Compile (or reuse) the pre-mutation tables before touching the
        # graph: the bitwise row diff below needs both sides.
        old_tables = self._inner.tables
        old_count = self._inner.index.num_nodes
        new_nodes = [n for n in node_candidates if n not in self.graph]
        mutate()  # validation errors raise here, leaving state untouched
        self._inner.index = self.graph.index()
        new_tables = _TransitionTables(self._inner.index, self.policy)
        self._inner._tables = new_tables
        self._grow_for(new_nodes, old_count)
        resampled = self._repair(old_tables, new_tables)
        self.epoch += 1
        self.updates_applied += 1
        self.walks_resampled += resampled
        self.mutation_log.append(record)
        return resampled

    def _grow_for(self, new_nodes, old_count: int) -> None:
        """Extend the tensor with start-only rows for appended nodes.

        Their remaining steps are filled by :meth:`_repair` — a brand-new
        row is always a bitwise-changed row, so the generic re-step pass
        picks its walks up at offset 0.
        """
        if not new_nodes:
            return
        walks = self._inner.walks
        grown = np.full(
            (old_count + len(new_nodes), self.num_walks, self.length + 1),
            -1,
            dtype=walks.dtype,
        )
        grown[:old_count] = walks
        for offset, node in enumerate(new_nodes):
            position = self._inner.index.position[node]
            # Appended nodes land at the end of insertion order, so a fresh
            # build spawns the same per-node draw stream at this position.
            assert position == old_count + offset
            grown[position, :, 0] = position
        self._inner.walks = grown

    def _repair(self, old_tables, new_tables) -> int:
        """Re-step every walk whose remaining path could differ; return count."""
        changed = _changed_rows(old_tables, new_tables)
        if not changed.any():
            return 0
        walks = self._inner.walks
        # Sentinel slot at index n stays False so dead (-1) steps never match.
        lookup = np.zeros(self._inner.index.num_nodes + 1, dtype=bool)
        lookup[np.flatnonzero(changed)] = True
        # A visit at the final offset has no outgoing step to repair.
        visited = lookup[walks[:, :, : self.length]]
        node_ids, walk_ids = np.nonzero(visited.any(axis=2))
        if node_ids.size == 0:
            return 0
        starts = visited[node_ids, walk_ids].argmax(axis=1).astype(np.int64)
        self._restep(node_ids, walk_ids, starts)
        return int(node_ids.size)

    def _restep(
        self, node_ids: np.ndarray, walk_ids: np.ndarray, starts: np.ndarray
    ) -> None:
        """Replay walk suffixes with the original draws on the new tables.

        Mirrors :meth:`WalkIndex._sample_shard` step for step — same draw
        tensor layout, same ``tables.step`` arithmetic — so the repaired
        suffix is bitwise what a fresh build would sample.
        """
        walks = self._inner.walks
        tables = self._inner.tables
        degrees = tables.degrees
        uniq, inverse = np.unique(node_ids, return_inverse=True)
        draws = np.empty(
            (uniq.size, self.num_walks, self.length), dtype=np.float64
        )
        for slot, position in enumerate(uniq):
            draws[slot] = self._node_draws(int(position))
        current = walks[node_ids, walk_ids, starts].astype(np.int64)
        for step in range(int(starts.min()), self.length):
            active = np.flatnonzero(starts <= step)
            cur = current[active]
            nxt = np.full(active.size, -1, dtype=np.int64)
            movable = np.flatnonzero(cur >= 0)
            if movable.size:
                nodes_here = cur[movable]
                live = degrees[nodes_here] > 0
                movable = movable[live]
                if movable.size:
                    sel = active[movable]
                    step_draws = draws[inverse[sel], walk_ids[sel], step]
                    nxt[movable] = tables.step(nodes_here[live], step_draws)
            walks[node_ids[active], walk_ids[active], step + 1] = nxt
            current[active] = nxt

    def _node_draws(self, position: int) -> np.ndarray:
        # Child *position* of SeedSequence(entropy) is reachable directly via
        # spawn_key — the same stream spawn_rngs() hands the shard builder.
        seq = np.random.SeedSequence(entropy=self._entropy, spawn_key=(position,))
        return np.random.default_rng(seq).random((self.num_walks, self.length))

    def __repr__(self) -> str:
        return (
            f"DynamicWalkIndex(nodes={self.index.num_nodes}, "
            f"num_walks={self.num_walks}, length={self.length}, "
            f"epoch={self.epoch}, updates={self.updates_applied})"
        )
