"""The serving layer's metric families, registered once for the package.

Kept in one module so :mod:`repro.serve.retry`, ``breaker``, ``manager``
and ``service`` share the same children instead of re-registering, and so
``docs/serving.md`` has a single source of truth to document.
"""

from __future__ import annotations

from repro.obs.registry import get_registry

_REGISTRY = get_registry()

SERVE_REQUESTS = _REGISTRY.counter(
    "serve_requests_total",
    help="QueryService requests by outcome "
    "(ok, degraded, deadline_exceeded, error).",
    labelnames=("outcome",),
)
SERVE_RETRIES = _REGISTRY.counter(
    "serve_retries_total",
    help="Retry attempts performed by the serving layer, per I/O operation.",
    labelnames=("operation",),
)
DEGRADED_QUERIES = _REGISTRY.counter(
    "degraded_queries_total",
    help="Queries answered from the iterative fallback while the primary "
    "index was unavailable.",
)
CIRCUIT_STATE = _REGISTRY.gauge(
    "circuit_state",
    help="Circuit-breaker state per breaker: 0=closed, 1=open, 2=half-open.",
    labelnames=("name",),
)
CIRCUIT_TRANSITIONS = _REGISTRY.counter(
    "circuit_transitions_total",
    help="Circuit-breaker state transitions, by breaker and target state.",
    labelnames=("name", "to"),
)
SERVE_REBUILDS = _REGISTRY.counter(
    "serve_rebuilds_total",
    help="Primary-index rebuild attempts by outcome (ok, failed).",
    labelnames=("outcome",),
)
INDEX_GENERATION = _REGISTRY.gauge(
    "index_generation",
    help="Generation counter of the engine currently published for serving "
    "(bumped by every activation, rebuild and live-mutation swap).",
)
MUTATIONS_APPLIED = _REGISTRY.counter(
    "mutations_applied_total",
    help="Graph mutations applied through the live-update path, by kind "
    "(add_edge, set_weight, remove_edge, add_node).",
    labelnames=("kind",),
)
INDEX_SWAP_SECONDS = _REGISTRY.histogram(
    "index_swap_seconds",
    help="Wall time of one live-update cycle: apply-incremental, persist "
    "the new generation, atomic swap.",
)
