"""Serving-layer exceptions.

All derive from :class:`~repro.errors.ReproError`, so existing callers
that catch the library root keep working; the CLI maps them to exit
code 2 like every other deliberate error.
"""

from __future__ import annotations

from repro.errors import ReproError


class ServeError(ReproError):
    """Base class for serving-layer failures."""


class DeadlineExceeded(ServeError):
    """A request could not complete within its per-request deadline."""

    def __init__(self, deadline_ms: float, elapsed_ms: float) -> None:
        super().__init__(
            f"request exceeded its {deadline_ms:.0f} ms deadline "
            f"({elapsed_ms:.1f} ms elapsed)"
        )
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms


class CircuitOpenError(ServeError):
    """The breaker is open: the failing dependency is quarantined."""

    def __init__(self, name: str, retry_after: float | None = None) -> None:
        detail = (
            f"; next probe in {retry_after:.3f} s" if retry_after is not None
            else ""
        )
        super().__init__(f"circuit {name!r} is open{detail}")
        self.name = name
        self.retry_after = retry_after


class IndexUnavailableError(ServeError):
    """No engine can serve: the primary failed and no fallback exists."""


class MutationRejectedError(ServeError):
    """A live mutation cannot be applied by this runtime.

    Raised by the sharded runtime (shard workers pin immutable walk-tensor
    snapshots at epoch 0; mutating only the head engine would leave the
    shards answering from a different epoch) and by degraded stacks (the
    iterative fallback has no incremental maintenance path).
    """

    def __init__(self, reason: str, *, head_epoch: int = 0,
                 shard_epoch: int | None = None) -> None:
        super().__init__(reason)
        self.head_epoch = head_epoch
        self.shard_epoch = shard_epoch
