"""The index-quarantine circuit breaker.

Fail-closed persistence means a corrupt artifact raises on *every* open —
and keeps raising until someone repairs or rebuilds it.  Retrying such an
index on every request burns the whole retry budget per query.  The
breaker turns that into the classic three-state machine:

``CLOSED``
    normal operation; consecutive failures are counted, success resets;
``OPEN``
    after ``failure_threshold`` consecutive failures the dependency is
    quarantined — callers fail fast (no I/O at all) until ``cooldown``
    seconds of virtual-or-real time pass;
``HALF_OPEN``
    after the cooldown exactly one probe is let through; success closes
    the circuit, failure re-opens it and re-arms the cooldown.

The clock is injectable, so the fault suite drives cooldowns with a
:class:`~repro.testing.faults.VirtualClock` instead of sleeping.  A clock
that jumps *backwards* (skew) re-arms the cooldown from the new time
rather than dividing by a negative interval — the breaker stays safe, just
conservative, under skew.
"""

from __future__ import annotations

import enum
import threading
import time
from typing import Callable

from repro.obs.logging import get_logger, log_event
from repro.obs.registry import is_enabled
from repro.serve.metrics import CIRCUIT_STATE, CIRCUIT_TRANSITIONS

_LOG = get_logger("serve.breaker")


class CircuitState(enum.Enum):
    """The three breaker states, with their ``circuit_state`` gauge values."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


_GAUGE_VALUE = {
    CircuitState.CLOSED: 0.0,
    CircuitState.OPEN: 1.0,
    CircuitState.HALF_OPEN: 2.0,
}


class CircuitBreaker:
    """Thread-safe three-state breaker guarding one named dependency."""

    def __init__(
        self,
        name: str = "index",
        *,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.name = name
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CircuitState.CLOSED
        self._consecutive_failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False
        if is_enabled():
            CIRCUIT_STATE.labels(name=name).set(0.0)

    @property
    def state(self) -> CircuitState:
        return self._state

    def _transition(self, to: CircuitState) -> None:
        # callers hold self._lock
        self._state = to
        if is_enabled():
            CIRCUIT_STATE.labels(name=self.name).set(_GAUGE_VALUE[to])
            CIRCUIT_TRANSITIONS.labels(name=self.name, to=to.value).inc()
        log_event(_LOG, "circuit.transition", name=self.name, to=to.value)

    def allow(self) -> bool:
        """May the caller attempt the guarded operation right now?

        ``OPEN`` answers ``False`` until the cooldown elapses, then flips
        to ``HALF_OPEN`` and admits exactly one probe; further callers are
        rejected until that probe reports back via
        :meth:`record_success` / :meth:`record_failure`.
        """
        with self._lock:
            if self._state is CircuitState.CLOSED:
                return True
            if self._state is CircuitState.OPEN:
                elapsed = self._clock() - (self._opened_at or 0.0)
                if elapsed < 0:  # backwards skew: re-arm from the new time
                    self._opened_at = self._clock()
                    return False
                if elapsed < self.cooldown:
                    return False
                self._transition(CircuitState.HALF_OPEN)
                self._probe_in_flight = True
                return True
            # HALF_OPEN: one probe at a time
            if self._probe_in_flight:
                return False
            self._probe_in_flight = True
            return True

    def retry_after(self) -> float | None:
        """Seconds until the next probe is admitted (``None`` if not open)."""
        with self._lock:
            if self._state is not CircuitState.OPEN or self._opened_at is None:
                return None
            return max(0.0, self.cooldown - (self._clock() - self._opened_at))

    def abandon_probe(self) -> None:
        """Return an admitted half-open probe slot unused.

        For callers that won an ``allow()`` but then discovered the work
        was already being done elsewhere — neither a success nor a
        failure happened, so neither should be recorded.
        """
        with self._lock:
            self._probe_in_flight = False

    def record_success(self) -> None:
        """The guarded operation worked: close the circuit."""
        with self._lock:
            self._consecutive_failures = 0
            self._probe_in_flight = False
            if self._state is not CircuitState.CLOSED:
                self._transition(CircuitState.CLOSED)

    def record_failure(self) -> None:
        """The guarded operation failed: count towards / re-arm quarantine."""
        with self._lock:
            self._probe_in_flight = False
            if self._state is CircuitState.HALF_OPEN:
                self._opened_at = self._clock()
                self._transition(CircuitState.OPEN)
                return
            self._consecutive_failures += 1
            if (
                self._state is CircuitState.CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._opened_at = self._clock()
                self._transition(CircuitState.OPEN)

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.name!r}, state={self._state.value}, "
            f"failures={self._consecutive_failures}/{self.failure_threshold})"
        )
