"""Bounded retries with exponential backoff and deterministic jitter.

The serving layer retries exactly one class of work: artifact-store and
walk-tensor I/O (``OSError`` from the disk, :class:`~repro.store.StoreError`
/ :class:`~repro.errors.GraphError` from fail-closed validation).  Scoring
itself is deterministic in-memory math — retrying it could only return the
same answer — so queries never re-run, only their I/O does.

Backoff is the standard exponential-with-jitter scheme.  Jitter draws from
a private ``random.Random(seed)``: pass a seed and the whole delay
sequence is a pure function of the policy — the property the
fault-injection suite leans on (no sleeps are real there anyway; tests
inject a :class:`~repro.testing.faults.VirtualClock`).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator, TypeVar

from repro.errors import GraphError
from repro.obs.logging import get_logger, log_event
from repro.obs.registry import is_enabled
from repro.serve.metrics import SERVE_RETRIES
from repro.store.artifacts import StoreError

T = TypeVar("T")

_LOG = get_logger("serve.retry")

#: What the serving layer treats as transient-or-structural I/O failure.
#: ``OSError`` covers the injected/real EIO class; ``StoreError`` and
#: ``GraphError`` are the fail-closed validation errors of the two
#: persistence formats.
RETRYABLE = (OSError, StoreError, GraphError)


@dataclass(frozen=True)
class RetryPolicy:
    """Backoff schedule: ``max_retries`` extra attempts after the first.

    ``delay(i) = min(max_delay, base_delay * multiplier**i)`` with a
    ``jitter`` fraction of each delay randomised (``jitter=0`` makes the
    schedule exact; ``jitter=0.5`` randomises the upper half).  *seed*
    fixes the jitter stream.
    """

    max_retries: int = 3
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must lie in [0, 1], got {self.jitter}")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be >= 0")

    def delays(self) -> Iterator[float]:
        """Yield the ``max_retries`` backoff delays, jitter applied."""
        rng = random.Random(self.seed)
        for attempt in range(self.max_retries):
            delay = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
            yield delay * (1 - self.jitter) + rng.random() * delay * self.jitter


def call_with_retry(
    fn: Callable[[], T],
    *,
    policy: RetryPolicy,
    operation: str,
    retry_on: tuple[type[BaseException], ...] = RETRYABLE,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    deadline: float | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> T:
    """Run *fn*, retrying on *retry_on* per *policy*; re-raise when exhausted.

    *deadline* is an absolute :func:`time.monotonic`-domain instant (same
    clock as *clock*): a retry whose backoff would land past it is not
    attempted — the last error propagates immediately, so a per-request
    deadline caps worst-case latency even under persistent faults.
    ``FileNotFoundError`` is deliberately **not** retried: an absent file
    will not appear because we waited.
    """
    delays = policy.delays()
    attempt = 0
    while True:
        try:
            return fn()
        except FileNotFoundError:
            raise
        except retry_on as exc:
            attempt += 1
            if attempt > policy.max_retries:
                raise
            delay = next(delays)
            now = clock()
            if deadline is not None and now + delay >= deadline:
                log_event(
                    _LOG, "retry.deadline_abort",
                    operation=operation, attempt=attempt, error=str(exc),
                )
                raise
            if is_enabled():
                SERVE_RETRIES.labels(operation=operation).inc()
            log_event(
                _LOG, "retry.backoff",
                operation=operation, attempt=attempt,
                delay_seconds=round(delay, 6), error=str(exc),
            )
            if on_retry is not None:
                on_retry(attempt, exc)
            if delay > 0:
                sleep(delay)
