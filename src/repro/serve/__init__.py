"""Resilient serving layer over :class:`~repro.api.QueryEngine`.

The layer splits serving into two objects:

* :class:`~repro.serve.manager.IndexManager` owns the engine — opening
  the primary index with bounded retries, quarantining a persistently
  failing index behind a :class:`~repro.serve.breaker.CircuitBreaker`,
  degrading to the exact iterative solver when the walk index is lost,
  and rebuilding the primary in the background.
* :class:`~repro.serve.service.QueryService` owns the request — the
  per-request deadline, the ``degraded`` annotation on every response,
  and the ``serve_*`` metrics.

Failure behaviour is exercised deterministically via
:mod:`repro.testing.faults`; the semantics are documented in
``docs/serving.md``.
"""

from repro.serve.breaker import CircuitBreaker, CircuitState
from repro.serve.errors import (
    CircuitOpenError,
    DeadlineExceeded,
    IndexUnavailableError,
    MutationRejectedError,
    ServeError,
)
from repro.serve.manager import Acquisition, IndexManager
from repro.serve.retry import RETRYABLE, RetryPolicy, call_with_retry
from repro.serve.service import (
    BatchResponse,
    QueryResponse,
    QueryService,
    TopKResponse,
)

__all__ = [
    "Acquisition",
    "BatchResponse",
    "CircuitBreaker",
    "CircuitOpenError",
    "CircuitState",
    "DeadlineExceeded",
    "IndexManager",
    "IndexUnavailableError",
    "MutationRejectedError",
    "QueryResponse",
    "QueryService",
    "RETRYABLE",
    "RetryPolicy",
    "ServeError",
    "TopKResponse",
    "call_with_retry",
]
