"""Thread-safe ownership of the serving engine, with graceful degradation.

:class:`IndexManager` fronts :class:`~repro.api.QueryEngine` construction
for the serving layer.  Its contract:

* **Acquisition is cheap.**  After the first activation, ``acquire()`` is
  one attribute read — the active engine is published as one immutable
  :class:`_EngineState` swapped atomically (CPython attribute stores are
  atomic), so readers never lock.
* **I/O failures are retried, then quarantined.**  Opening the primary
  index (an artifact directory, a walk-tensor ``.npz``, or a cache-backed
  build) runs under a :class:`~repro.serve.retry.RetryPolicy`; persistent
  failure records into the :class:`~repro.serve.breaker.CircuitBreaker`,
  and once the breaker opens, later acquisitions skip the disk entirely.
* **Loss degrades, never breaks.**  When the primary cannot be opened and
  a graph is available, the manager serves from the exact iterative
  fixed-point solver (Section 2.3) — slower to build, but correct and
  disk-free — while a rebuild of the primary runs in the background (or
  on explicit :meth:`probe` calls when ``background_rebuild=False``).
  Every response served this way is flagged ``degraded``.
* **Recovery is automatic.**  A degraded manager re-probes the primary
  whenever the breaker admits it (closed, or half-open after cooldown);
  a successful rebuild swaps the healthy engine in and closes the
  circuit.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.api import QueryEngine
from repro.errors import ConfigurationError
from repro.hin.graph import HIN
from repro.obs.logging import get_logger, log_event
from repro.obs.registry import is_enabled
from repro.obs.trace import span
from repro.semantics.base import SemanticMeasure
from repro.serve.breaker import CircuitBreaker
from repro.serve.errors import IndexUnavailableError, MutationRejectedError
from repro.serve.metrics import (
    INDEX_GENERATION,
    INDEX_SWAP_SECONDS,
    MUTATIONS_APPLIED,
    SERVE_REBUILDS,
)
from repro.serve.retry import RETRYABLE, RetryPolicy, call_with_retry
from repro.store.artifacts import ArtifactStore

_LOG = get_logger("serve.manager")


@dataclass(frozen=True)
class _EngineState:
    """One published serving configuration (immutable, swapped whole)."""

    engine: QueryEngine
    degraded: bool
    generation: int
    tier: str = "primary"


@dataclass(slots=True)
class Acquisition:
    """What one ``acquire()`` call handed out."""

    engine: QueryEngine
    degraded: bool
    retries: int
    tier: str = "primary"


class IndexManager:
    """Own, quarantine, degrade and rebuild the engine behind a service.

    Parameters
    ----------
    graph, measure:
        The model to serve.  Required for the degraded fallback ladder
        (lowrank, then iterative — both build from them); may be omitted
        when *index_path* names a self-contained artifact — but then no
        degradation is possible and persistent index loss raises
        :class:`~repro.serve.errors.IndexUnavailableError`.
    index_path:
        Serve from a prebuilt ``repro index build`` artifact
        (:meth:`QueryEngine.open`).
    walks_path, cache_dir, engine_kwargs:
        Forwarded to the :class:`~repro.api.QueryEngine` constructor for
        the primary build when *index_path* is not given.
    retry, breaker:
        The I/O retry policy and the quarantine breaker; defaults are
        production-flavoured (3 retries, threshold 3, 30 s cooldown).
    clock, sleep:
        Injectable time sources (see
        :class:`~repro.testing.faults.VirtualClock`); every wait and every
        cooldown in the manager goes through these.
    background_rebuild:
        ``True`` (default) rebuilds the primary on a daemon thread while
        degraded responses flow; ``False`` makes probes synchronous inside
        :meth:`acquire` / :meth:`probe` — the deterministic-test mode.
    """

    def __init__(
        self,
        graph: HIN | None = None,
        measure: SemanticMeasure | None = None,
        *,
        index_path: str | Path | None = None,
        walks_path: str | Path | None = None,
        cache_dir: str | Path | None = None,
        engine_kwargs: dict | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        background_rebuild: bool = True,
    ) -> None:
        if graph is None and index_path is None:
            raise ConfigurationError(
                "IndexManager needs a graph to build from, an index_path "
                "to open, or both (both enables degraded fallback)"
            )
        self.graph = graph
        self.measure = measure
        self.index_path = Path(index_path) if index_path is not None else None
        self.walks_path = Path(walks_path) if walks_path is not None else None
        self.cache_dir = cache_dir
        self.engine_kwargs = dict(engine_kwargs or {})
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = (
            breaker if breaker is not None
            else CircuitBreaker("index", clock=clock)
        )
        self.clock = clock
        self.sleep = sleep
        self.background_rebuild = background_rebuild

        self._state: _EngineState | None = None
        self._acquisition: Acquisition | None = None  # cached fast-path handout
        self._lock = threading.Lock()          # guards activation + swap
        self._rebuild_lock = threading.Lock()  # one rebuild at a time
        self._mutation_lock = threading.Lock()  # serialises live updates
        self._rebuild_in_flight = False
        self._generation = 0
        self._mutations_applied = 0
        self._last_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Acquisition
    # ------------------------------------------------------------------
    def acquire(self, deadline: float | None = None) -> Acquisition:
        """Return the current engine (activating or probing as needed).

        The healthy fast path is lock-free and allocation-free: one
        attribute read of a cached :class:`Acquisition`, one branch.  A
        degraded state additionally asks the breaker whether a recovery
        probe is due; *deadline* (absolute, in the manager's clock
        domain) bounds any retry backoff performed on this call.
        """
        acquisition = self._acquisition
        if acquisition is not None:
            if acquisition.degraded:
                self._maybe_probe(deadline)
                return self._acquisition  # a probe may have swapped it
            return acquisition
        with self._lock:
            if self._state is None:
                retries = self._activate(deadline)
            else:
                retries = 0
            state = self._state
        return Acquisition(state.engine, state.degraded, retries, state.tier)

    def engine(self) -> QueryEngine:
        """The current engine (mostly for benchmarks and tests)."""
        return self.acquire().engine

    @property
    def degraded(self) -> bool:
        state = self._state
        return state.degraded if state is not None else False

    @property
    def generation(self) -> int:
        """Bumps on every engine swap (activation, degradation, recovery)."""
        state = self._state
        return state.generation if state is not None else 0

    def health(self) -> dict:
        """One JSON-ready snapshot of the serving state."""
        state = self._state
        return {
            "activated": state is not None,
            "degraded": state.degraded if state is not None else False,
            "method": state.engine.method if state is not None else None,
            "generation": state.generation if state is not None else 0,
            "index_epoch": (
                int(getattr(state.engine.walk_index, "epoch", 0))
                if state is not None else 0
            ),
            "mutations_applied": self._mutations_applied,
            "degraded_tier": (
                state.tier if state is not None and state.degraded else None
            ),
            "circuit": self.breaker.state.value,
            "rebuild_in_flight": self._rebuild_in_flight,
            "last_error": str(self._last_error) if self._last_error else None,
        }

    # ------------------------------------------------------------------
    # Live updates — apply-incremental, persist, atomic swap
    # ------------------------------------------------------------------
    def apply_mutations(self, mutations, *, persist: bool = True) -> dict:
        """Apply *mutations* as one new generation and swap it in atomically.

        Copy-on-write: the next generation is built with
        :meth:`QueryEngine.with_mutations`, so the serving engine — and any
        acquisition already handed to an in-flight query — is never touched.
        When *persist* is true and a store is reachable (the engine's own
        cache store, or one rooted at ``cache_dir``), the new generation is
        written **before** publication; a failed write raises
        :class:`~repro.store.StoreError` and leaves the old generation
        serving.  The retired generation is dropped by reference once the
        last in-flight query releases it.

        Each mutation is a ``(kind, *args)`` tuple (``add_edge``,
        ``set_weight``, ``remove_edge``, ``add_node``).  Validation errors
        (unknown node, bad weight, non-mc engine, ...) propagate without
        touching the published state or the circuit breaker.
        """
        mutations = list(mutations)
        with self._mutation_lock:
            acquisition = self.acquire()
            if acquisition.degraded:
                raise MutationRejectedError(
                    "cannot mutate a degraded serving stack: the iterative "
                    "fallback has no incremental maintenance path"
                )
            engine = acquisition.engine
            started = self.clock()
            with span("serve.apply_mutations", count=len(mutations)):
                next_engine = engine.with_mutations(mutations)
                artifact_key = None
                if persist:
                    store = self._mutation_store(next_engine)
                    if store is not None:
                        try:
                            artifact_key = next_engine.persist_generation(store)
                        except Exception as exc:
                            self._last_error = exc
                            log_event(
                                _LOG, "serve.mutation_persist_failed",
                                error=str(exc),
                            )
                            raise
                with self._lock:
                    self._publish(next_engine, degraded=False)
            elapsed = self.clock() - started
            self._mutations_applied += len(mutations)
            if is_enabled():
                for mutation in mutations:
                    MUTATIONS_APPLIED.labels(kind=str(mutation[0])).inc()
                INDEX_SWAP_SECONDS.observe(max(0.0, elapsed))
            log_event(
                _LOG, "serve.mutations_applied",
                count=len(mutations), generation=self._generation,
                epoch=next_engine.index_epoch, artifact=artifact_key,
            )
            return {
                "applied": len(mutations),
                "resampled": (
                    int(next_engine._dynamic.walks_resampled)
                    if next_engine._dynamic is not None else 0
                ),
                "generation": self._generation,
                "epoch": next_engine.index_epoch,
                "lineage": next_engine.mutation_lineage(),
                "artifact": artifact_key,
                "swap_seconds": max(0.0, elapsed),
            }

    def _mutation_store(self, engine: QueryEngine) -> ArtifactStore | None:
        """The store new generations persist into (``None`` disables it)."""
        store = getattr(engine, "_store", None)
        if store is not None:
            return store
        if self.cache_dir is not None:
            return ArtifactStore(self.cache_dir)
        return None

    # ------------------------------------------------------------------
    # Activation, degradation, recovery
    # ------------------------------------------------------------------
    def _open_primary(self) -> QueryEngine:
        """One attempt at the configured primary engine (may raise)."""
        if self.index_path is not None:
            return QueryEngine.open(self.index_path, **self._open_kwargs())
        return QueryEngine(
            self.graph,
            self.measure,
            walks_path=self.walks_path,
            cache_dir=self.cache_dir,
            **self.engine_kwargs,
        )

    def _rebuild_primary(self) -> QueryEngine:
        """One rebuild-from-scratch attempt.

        A lost or corrupt walk tensor is *resampled* from the graph (the
        stored file is what failed — reopening it cannot help) and then
        saved back over ``walks_path``, repairing the on-disk primary so
        a process restart recovers too.  If the disk cannot take that
        write the rebuild counts as failed and the index stays
        quarantined.  With only an ``index_path`` the artifact is
        reopened instead, covering the repaired-in-place case.
        """
        if self.graph is None:
            return QueryEngine.open(self.index_path, **self._open_kwargs())
        engine = QueryEngine(
            self.graph,
            self.measure,
            cache_dir=self.cache_dir,
            **self.engine_kwargs,
        )
        if self.walks_path is not None and engine.method == "mc":
            engine.save_walks(self.walks_path)
        return engine

    def _open_kwargs(self) -> dict:
        """Engine kwargs that apply to the artifact-open path.

        Artifacts are backend-agnostic, so backend selection (the only
        per-engine, non-persisted knob) rides through to ``open``.
        """
        return {
            key: value
            for key, value in self.engine_kwargs.items()
            if key in ("backend", "backend_config") and value is not None
        }

    def _fallback_engine(self) -> tuple[QueryEngine, str]:
        """The disk-free degraded engine and its tier name.

        Two-rung ladder below the primary: a rank-r low-rank
        factorization first (O(n·r) memory, approximate but fast), the
        dense iterative solver as the floor (exact, O(N²)).  The low-rank
        rung is skipped when the primary *is* one of the fallback
        families (degrading lowrank to lowrank hides nothing) and on any
        build failure — the floor must always answer.
        """
        if self.graph is None:
            raise IndexUnavailableError(
                f"primary index is unavailable ({self._last_error}) and no "
                f"graph was provided for a degraded fallback"
            )
        primary_method = self.engine_kwargs.get("method", "mc")
        if primary_method not in ("lowrank", "iterative"):
            kwargs = {
                key: value
                for key, value in self.engine_kwargs.items()
                if key in ("decay", "theta", "seed", "rank", "tolerance")
            }
            try:
                engine = QueryEngine(
                    self.graph, self.measure, method="lowrank", **kwargs
                )
                return engine, "lowrank"
            except Exception as exc:  # noqa: BLE001 — floor must answer
                log_event(
                    _LOG, "serve.lowrank_tier_failed", error=str(exc)
                )
        kwargs = {
            key: value
            for key, value in self.engine_kwargs.items()
            if key in ("decay", "max_iterations", "tolerance")
        }
        engine = QueryEngine(
            self.graph, self.measure, method="iterative", **kwargs
        )
        return engine, "iterative"

    def _publish(
        self, engine: QueryEngine, degraded: bool, tier: str = "primary"
    ) -> None:
        self._generation += 1
        self._state = _EngineState(engine, degraded, self._generation, tier)
        # the cached handout every post-activation acquire() returns;
        # retries are a per-activation detail, so the steady state is 0
        self._acquisition = Acquisition(engine, degraded, 0, tier)
        if is_enabled():
            INDEX_GENERATION.set(float(self._generation))

    def _activate(self, deadline: float | None) -> int:
        """First acquisition: open the primary or degrade. Holds ``_lock``."""
        retries = 0

        def count_retry(_attempt: int, _exc: BaseException) -> None:
            nonlocal retries
            retries += 1

        if self.breaker.allow():
            try:
                with span("serve.open_primary"):
                    engine = call_with_retry(
                        self._open_primary,
                        policy=self.retry,
                        operation="open_primary",
                        sleep=self.sleep,
                        clock=self.clock,
                        deadline=deadline,
                        on_retry=count_retry,
                    )
                self.breaker.record_success()
                self._publish(engine, degraded=False)
                log_event(_LOG, "serve.primary_ready", method=engine.method)
                return retries
            except RETRYABLE as exc:
                self._last_error = exc
                self.breaker.record_failure()
                log_event(
                    _LOG, "serve.primary_failed",
                    error=str(exc), retries=retries,
                )
        fallback, tier = self._fallback_engine()
        self._publish(fallback, degraded=True, tier=tier)
        log_event(
            _LOG, "serve.degraded", error=str(self._last_error), tier=tier
        )
        if self.background_rebuild:
            self._spawn_rebuild()
        return retries

    def _maybe_probe(self, deadline: float | None) -> None:
        """While degraded: attempt recovery whenever the breaker admits it."""
        if self._rebuild_in_flight or not self.breaker.allow():
            return
        if self.background_rebuild:
            self._spawn_rebuild(breaker_admitted=True)
        else:
            self._rebuild_once(deadline, breaker_admitted=True)

    def probe(self, deadline: float | None = None) -> bool:
        """Synchronously attempt recovery now; return whether it healed.

        Honours the breaker: a quarantined index inside its cooldown is
        not probed (returns ``False`` without touching the disk).
        """
        state = self._state
        if state is None:
            return not self.acquire(deadline).degraded
        if not state.degraded:
            return True
        if not self.breaker.allow():
            return False
        return self._rebuild_once(deadline, breaker_admitted=True)

    def _spawn_rebuild(self, breaker_admitted: bool = False) -> None:
        thread = threading.Thread(
            target=self._rebuild_once,
            args=(None, breaker_admitted),
            name="repro-serve-rebuild",
            daemon=True,
        )
        thread.start()

    def _rebuild_once(
        self, deadline: float | None, breaker_admitted: bool = False
    ) -> bool:
        """One guarded rebuild attempt; swaps the healthy engine in on success.

        *breaker_admitted* marks that the caller already consumed an
        ``allow()`` slot (a half-open probe); otherwise one is requested
        here so background rebuilds respect quarantine too.
        """
        if not self._rebuild_lock.acquire(blocking=False):
            if breaker_admitted:
                self.breaker.abandon_probe()
            return False
        self._rebuild_in_flight = True
        try:
            if not breaker_admitted and not self.breaker.allow():
                return False
            try:
                with span("serve.rebuild"):
                    engine = call_with_retry(
                        self._rebuild_primary,
                        policy=self.retry,
                        operation="rebuild",
                        sleep=self.sleep,
                        clock=self.clock,
                        deadline=deadline,
                    )
            except RETRYABLE as exc:
                self._last_error = exc
                self.breaker.record_failure()
                if is_enabled():
                    SERVE_REBUILDS.labels(outcome="failed").inc()
                log_event(_LOG, "serve.rebuild_failed", error=str(exc))
                return False
            self.breaker.record_success()
            with self._lock:
                self._publish(engine, degraded=False)
            self._last_error = None
            if is_enabled():
                SERVE_REBUILDS.labels(outcome="ok").inc()
            log_event(_LOG, "serve.rebuilt", method=engine.method)
            return True
        finally:
            self._rebuild_in_flight = False
            self._rebuild_lock.release()

    def __repr__(self) -> str:
        state = self._state
        status = (
            "unactivated" if state is None
            else ("degraded" if state.degraded else "healthy")
        )
        return (
            f"IndexManager({status}, circuit={self.breaker.state.value}, "
            f"generation={self.generation})"
        )
