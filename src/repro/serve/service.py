"""The request-facing serving facade: deadlines, outcomes, degraded flags.

:class:`QueryService` wraps an :class:`~repro.serve.manager.IndexManager`
with per-request semantics:

* **deadlines** — a request carries an optional ``deadline_ms`` budget
  (default set at construction).  Engine-acquisition retries stop backing
  off once the budget would be blown, and a request that finishes late
  raises :class:`~repro.serve.errors.DeadlineExceeded` instead of
  returning silently-slow results.
* **responses, not bare floats** — every answer rides in a
  :class:`QueryResponse` / :class:`BatchResponse` / :class:`TopKResponse`
  carrying the ``degraded`` flag (the paper-exact iterative fallback is
  serving because the primary index is quarantined), the retry count the
  request paid, and the engine method that answered.
* **observability** — outcomes land in ``serve_requests_total{outcome=}``
  and degraded answers additionally bump ``degraded_queries_total``; the
  scores themselves are whatever :class:`~repro.api.QueryEngine` computes,
  bit-identical to calling it directly.

The happy path is deliberately thin — two clock reads, one lock-free
acquisition, the engine call, one counter — and is held to ≤ 3% median
overhead over a bare engine by ``benchmarks/bench_serve_overhead.py``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.hin.graph import Node
from repro.obs.registry import is_enabled
from repro.serve.errors import DeadlineExceeded
from repro.serve.manager import Acquisition, IndexManager
from repro.serve.metrics import DEGRADED_QUERIES, SERVE_REQUESTS

_UNSET = object()


def _annotations(response) -> dict:
    """The opt-in observability fields (``repro serve --timings``).

    Absent by default so the protocol output stays byte-stable; when the
    runtime annotates, responses carry the router-assigned ``trace_id``
    (join key into span traces and structured logs) and the per-request
    latency breakdown in microseconds.
    """
    extra: dict = {}
    if response.tier is not None:
        extra["tier"] = response.tier
    if response.trace_id is not None:
        extra["trace_id"] = response.trace_id
    if response.timings is not None:
        extra["timings"] = {
            key: round(float(value), 1)
            for key, value in response.timings.items()
        }
    return extra


@dataclass(slots=True)
class QueryResponse:
    """One scored pair, annotated with how it was served."""

    u: Node
    v: Node
    value: float
    degraded: bool
    retries: int
    method: str
    elapsed_ms: float
    tier: str | None = None
    trace_id: str | None = None
    timings: dict | None = None

    @property
    def outcome(self) -> str:
        return "degraded" if self.degraded else "ok"

    def as_dict(self) -> dict:
        """JSON-ready rendering (what ``repro serve`` prints per request)."""
        return {
            "u": str(self.u), "v": str(self.v),
            "value": self.value, "degraded": self.degraded,
            "retries": self.retries, "method": self.method,
            "elapsed_ms": round(self.elapsed_ms, 3),
            **_annotations(self),
        }


@dataclass(slots=True)
class BatchResponse:
    """One vectorised single-source answer."""

    u: Node
    candidates: tuple[Node, ...]
    values: np.ndarray = field(repr=False)
    degraded: bool
    retries: int
    method: str
    elapsed_ms: float
    tier: str | None = None
    trace_id: str | None = None
    timings: dict | None = None

    def as_dict(self) -> dict:
        """JSON-ready rendering (what ``repro serve`` prints per BATCH)."""
        return {
            "u": str(self.u),
            "candidates": [str(c) for c in self.candidates],
            "values": [float(v) for v in self.values],
            "degraded": self.degraded, "retries": self.retries,
            "method": self.method, "elapsed_ms": round(self.elapsed_ms, 3),
            **_annotations(self),
        }


@dataclass(slots=True)
class TopKResponse:
    """One top-k search answer."""

    u: Node
    k: int
    results: tuple[tuple[Node, float], ...]
    degraded: bool
    retries: int
    method: str
    elapsed_ms: float
    tier: str | None = None
    trace_id: str | None = None
    timings: dict | None = None

    def as_dict(self) -> dict:
        return {
            "u": str(self.u), "k": self.k,
            "results": [[str(node), score] for node, score in self.results],
            "degraded": self.degraded, "retries": self.retries,
            "method": self.method, "elapsed_ms": round(self.elapsed_ms, 3),
            **_annotations(self),
        }


class QueryService:
    """Deadline-aware, degradation-annotating front over one manager."""

    def __init__(
        self,
        manager: IndexManager,
        *,
        deadline_ms: float | None = None,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.manager = manager
        self.deadline_ms = deadline_ms
        # Default to the manager's clock so one VirtualClock drives both
        # the breaker cooldowns and the request deadlines in tests.
        self._clock = clock if clock is not None else manager.clock
        if self._clock is None:  # pragma: no cover — manager always has one
            self._clock = time.monotonic
        # pre-resolved metric children: labels() costs a dict + lock per
        # call, which the <= 3% happy-path overhead budget cannot afford
        self._count_ok = SERVE_REQUESTS.labels(outcome="ok")
        self._count_degraded = SERVE_REQUESTS.labels(outcome="degraded")
        self._count_deadline = SERVE_REQUESTS.labels(
            outcome="deadline_exceeded"
        )
        self._count_error = SERVE_REQUESTS.labels(outcome="error")
        # bound methods shave one attribute hop off the hot path
        self._inc_ok = self._count_ok.inc
        self._inc_degraded = self._count_degraded.inc

    # ------------------------------------------------------------------
    # Request plumbing
    # ------------------------------------------------------------------
    def _begin(self, deadline_ms) -> tuple[float, float | None, float | None]:
        if deadline_ms is _UNSET:
            deadline_ms = self.deadline_ms
        start = self._clock()
        deadline = None if deadline_ms is None else start + deadline_ms / 1000.0
        return start, deadline, deadline_ms

    def _acquire(self, deadline: float | None) -> Acquisition:
        return self.manager.acquire(deadline)

    def _finish(
        self, start: float, deadline: float | None, deadline_ms: float | None,
        acquisition: Acquisition,
    ) -> float:
        """Close out one request; returns elapsed ms or raises on deadline."""
        now = self._clock()
        elapsed_ms = max(0.0, (now - start) * 1000.0)  # max(): clock skew
        if deadline is not None and now > deadline:
            if is_enabled():
                self._count_deadline.inc()
            raise DeadlineExceeded(deadline_ms, elapsed_ms)
        if is_enabled():
            if acquisition.degraded:
                DEGRADED_QUERIES.inc()
                self._count_degraded.inc()
            else:
                self._count_ok.inc()
        return elapsed_ms

    def _check_nodes(self, engine, nodes: Sequence[Node]) -> None:
        for node in nodes:
            if node not in engine.graph:
                if is_enabled():
                    self._count_error.inc()
                raise NodeNotFoundError(node)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(self, u: Node, v: Node, *, deadline_ms=_UNSET) -> QueryResponse:
        """Score one pair within the request deadline.

        This is the hot path: the body is deliberately inlined (no
        ``_begin``/``_finish`` helpers) and allocation-light so the
        wrapper stays inside the <= 3% overhead ceiling enforced by
        ``benchmarks/bench_serve_overhead.py``.
        """
        if deadline_ms is _UNSET:
            deadline_ms = self.deadline_ms
        clock = self._clock
        start = clock()
        deadline = None if deadline_ms is None else start + deadline_ms / 1000.0
        # healthy steady state: read the manager's cached handout without
        # paying the acquire() call; anything else takes the full path
        acquisition = self.manager._acquisition
        if acquisition is None or acquisition.degraded:
            acquisition = self.manager.acquire(deadline)
        engine = acquisition.engine
        graph = engine.graph
        if u not in graph or v not in graph:
            self._check_nodes(engine, (u, v))  # raises for the missing one
        value = engine.score(u, v)
        now = clock()
        elapsed_ms = (now - start) * 1000.0
        if elapsed_ms < 0.0:  # clock skew
            elapsed_ms = 0.0
        if deadline is not None and now > deadline:
            if is_enabled():
                self._count_deadline.inc()
            raise DeadlineExceeded(deadline_ms, elapsed_ms)
        degraded = acquisition.degraded
        if is_enabled():
            if degraded:
                DEGRADED_QUERIES.inc()
                self._inc_degraded()
            else:
                self._inc_ok()
        return QueryResponse(
            u, v, float(value), degraded, acquisition.retries,
            engine.method, elapsed_ms,
            tier=acquisition.tier if degraded else None,
        )

    def batch(
        self, u: Node, candidates: Sequence[Node], *, deadline_ms=_UNSET
    ) -> BatchResponse:
        """Score one candidate set through the vectorised path."""
        start, deadline, budget_ms = self._begin(deadline_ms)
        acquisition = self._acquire(deadline)
        candidates = tuple(candidates)
        self._check_nodes(acquisition.engine, (u, *candidates))
        values = acquisition.engine.score_batch(u, list(candidates))
        elapsed_ms = self._finish(start, deadline, budget_ms, acquisition)
        return BatchResponse(
            u=u, candidates=candidates, values=values,
            degraded=acquisition.degraded, retries=acquisition.retries,
            method=acquisition.engine.method, elapsed_ms=elapsed_ms,
            tier=acquisition.tier if acquisition.degraded else None,
        )

    def top_k(
        self,
        u: Node,
        k: int,
        candidates: Sequence[Node] | None = None,
        *,
        batch_size: int | None = None,
        deadline_ms=_UNSET,
    ) -> TopKResponse:
        """Top-k similarity search within the request deadline.

        *batch_size* rides through to the engine's blocked candidate scan
        (``None`` keeps the engine default).
        """
        start, deadline, budget_ms = self._begin(deadline_ms)
        acquisition = self._acquire(deadline)
        self._check_nodes(acquisition.engine, (u,))
        kwargs = {} if batch_size is None else {"batch_size": batch_size}
        results = acquisition.engine.top_k(u, k, candidates=candidates, **kwargs)
        elapsed_ms = self._finish(start, deadline, budget_ms, acquisition)
        return TopKResponse(
            u=u, k=k, results=tuple(results),
            degraded=acquisition.degraded, retries=acquisition.retries,
            method=acquisition.engine.method, elapsed_ms=elapsed_ms,
            tier=acquisition.tier if acquisition.degraded else None,
        )

    def backend_name(self) -> str | None:
        """The compute-backend name of the currently handed-out engine.

        ``None`` before the first acquisition — the backend is an engine
        property, so there is nothing to report until one exists.
        """
        acquisition = self.manager._acquisition
        if acquisition is None:
            return None
        return getattr(acquisition.engine, "backend_name", None)

    def health(self) -> dict:
        """The manager's health snapshot plus service-level settings."""
        payload = self.manager.health()
        payload["deadline_ms"] = self.deadline_ms
        payload["backend"] = self.backend_name()
        return payload

    def __repr__(self) -> str:
        return (
            f"QueryService(deadline_ms={self.deadline_ms}, "
            f"manager={self.manager!r})"
        )
