"""(De)serialisation of full dataset bundles.

A :class:`~repro.datasets.bundle.DatasetBundle` is more than its graph: the
taxonomy keeps its child->parent orientation (the HIN may encode ``is-a``
symmetrically for the structural walk) and the IC table pins the semantic
measure.  This module round-trips all of it through one JSON document so
generated datasets can be shared and re-loaded — including by the CLI.

``extras`` values are stored as-is when JSON-compatible; anything else is
dropped with a loud key in ``dropped_extras``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.datasets.bundle import DatasetBundle
from repro.errors import GraphError
from repro.hin.io import hin_from_dict, hin_to_dict
from repro.semantics.lin import LinMeasure
from repro.taxonomy.taxonomy import Taxonomy

FORMAT_VERSION = 1


def bundle_to_dict(bundle: DatasetBundle) -> dict:
    """Serialise *bundle* to a JSON-compatible dictionary."""
    taxonomy_edges = [
        [child, parent]
        for child in bundle.taxonomy.concepts()
        for parent in bundle.taxonomy.parents(child)
    ]
    isolated = [
        concept for concept in bundle.taxonomy.concepts()
        if not bundle.taxonomy.parents(concept)
    ]
    extras = {}
    dropped = []
    for key, value in bundle.extras.items():
        try:
            json.dumps(value)
        except (TypeError, ValueError):
            dropped.append(key)
        else:
            extras[key] = value
    return {
        "format": "repro-bundle",
        "version": FORMAT_VERSION,
        "name": bundle.name,
        "graph": hin_to_dict(bundle.graph),
        "taxonomy_edges": taxonomy_edges,
        "taxonomy_roots": isolated,
        "ic": {str(k): v for k, v in bundle.ic.items()},
        "entity_nodes": list(bundle.entity_nodes),
        "extras": extras,
        "dropped_extras": dropped,
    }


def bundle_from_dict(payload: dict) -> DatasetBundle:
    """Rebuild a bundle written by :func:`bundle_to_dict`.

    The Lin measure is reconstructed from the stored taxonomy and IC table
    (string node ids assumed, as after any JSON round trip).
    """
    if payload.get("format") != "repro-bundle":
        raise GraphError("payload is not a repro-bundle document")
    if payload.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported repro-bundle version {payload.get('version')!r}")
    graph = hin_from_dict(payload["graph"])
    taxonomy = Taxonomy()
    for root in payload.get("taxonomy_roots", []):
        taxonomy.add_concept(root)
    for child, parent in payload["taxonomy_edges"]:
        taxonomy.add_concept(child, parents=[parent])
    ic = {k: float(v) for k, v in payload["ic"].items()}
    return DatasetBundle(
        name=payload["name"],
        graph=graph,
        taxonomy=taxonomy,
        ic=ic,
        measure=LinMeasure(taxonomy, ic=ic),
        entity_nodes=list(payload["entity_nodes"]),
        extras=dict(payload.get("extras", {})),
    )


def save_bundle_json(bundle: DatasetBundle, path: str | Path) -> None:
    """Write *bundle* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(bundle_to_dict(bundle), handle)


def load_bundle_json(path: str | Path) -> DatasetBundle:
    """Load a bundle written by :func:`save_bundle_json`."""
    with open(path, encoding="utf-8") as handle:
        return bundle_from_dict(json.load(handle))
