"""Amazon-like synthetic co-purchase network (link-prediction testbed).

Products hang off a category tree (Amazon's product categorisation in the
paper); co-purchase edges carry purchase counts as weights and are biased
toward semantically close products — the correlation the Figure 5(a)
link-prediction experiment relies on: a measure predicting co-purchases
well must read both the structural neighbourhood and the taxonomy.
"""

from __future__ import annotations

from repro.datasets.bundle import DatasetBundle
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_hin


def amazon_like(
    num_products: int = 400,
    avg_copurchases: float = 5.0,
    semantic_affinity: float = 0.65,
    seed: int = 0,
) -> DatasetBundle:
    """Generate the Amazon-like bundle.

    The object layer is ``num_products`` products with Pareto-tailed
    co-purchase degrees (weights 1-5, the "bought together" counts); the
    ontological layer is a depth-3 category tree.
    """
    config = SyntheticConfig(
        name="amazon-like",
        num_entities=num_products,
        taxonomy_depth=3,
        taxonomy_branching=(3, 4),
        avg_relations=avg_copurchases,
        semantic_affinity=semantic_affinity,
        max_weight=5,
        relation_label="co-purchase",
        entity_label="product",
        category_zipf=1.1,
        seed=seed,
    )
    bundle = generate_synthetic_hin(config)
    bundle.name = "amazon-like"
    return bundle
