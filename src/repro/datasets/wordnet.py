"""WordNet-like synthetic noun hierarchy (term-relatedness testbed).

The paper's WordNet dataset is the noun sub-hierarchy: a deep ``is-a``
taxonomy plus sparse non-hierarchical *part-of* relations.  Here the
entities *are* taxonomy concepts (there is no separate object layer), the
tree is deep and narrow like WordNet's, and part-of edges connect concepts
with a bias toward taxonomic proximity — giving structural measures
something the bare taxonomy does not encode.
"""

from __future__ import annotations

from repro.datasets.bundle import DatasetBundle
from repro.hin.graph import HIN
from repro.semantics.lin import LinMeasure
from repro.taxonomy.ic import seco_information_content
from repro.taxonomy.taxonomy import Taxonomy
from repro.utils.rng import ensure_rng


def wordnet_like(
    depth: int = 6,
    branching: tuple[int, int] = (2, 3),
    part_of_fraction: float = 1.0,
    semantic_affinity: float = 0.7,
    seed: int = 0,
) -> DatasetBundle:
    """Generate the WordNet-like bundle.

    *part_of_fraction* scales how many part-of edges exist relative to the
    number of concepts; endpoints are drawn within the same top-level
    branch with probability *semantic_affinity*.
    """
    rng = ensure_rng(seed)
    taxonomy = Taxonomy()
    root = "noun"
    taxonomy.add_concept(root)
    level = [root]
    counter = 0
    low, high = branching
    for _ in range(depth):
        next_level: list[str] = []
        for parent in level:
            for _ in range(int(rng.integers(low, high + 1))):
                concept = f"n{counter}"
                counter += 1
                taxonomy.add_concept(concept, parents=[parent])
                next_level.append(concept)
        level = next_level

    concepts = [c for c in taxonomy.concepts() if c != root]
    graph = HIN()
    graph.add_node(root, label="concept")
    for concept in concepts:
        graph.add_node(concept, label="noun")
    for concept in taxonomy.concepts():
        for parent in taxonomy.parents(concept):
            graph.add_undirected_edge(concept, parent, label="is-a")

    # Each concept belongs to the top-level branch it descends from; the
    # part-of affinity bias keeps most endpoints within one branch.
    branch_of: dict[str, str] = {}
    for concept in taxonomy.topological_order():
        if concept == root:
            continue
        parent = taxonomy.parents(concept)[0]
        branch_of[concept] = concept if parent == root else branch_of[parent]
    by_branch: dict[str, list[str]] = {}
    for concept in concepts:
        by_branch.setdefault(branch_of[concept], []).append(concept)

    num_part_of = int(part_of_fraction * len(concepts))
    for _ in range(num_part_of):
        a = concepts[int(rng.integers(len(concepts)))]
        pool = by_branch.get(branch_of[a], concepts)
        if pool and rng.random() < semantic_affinity:
            b = pool[int(rng.integers(len(pool)))]
        else:
            b = concepts[int(rng.integers(len(concepts)))]
        if a != b and not graph.has_edge(a, b):
            graph.add_undirected_edge(a, b, label="part-of")

    ic = seco_information_content(taxonomy)
    measure = LinMeasure(taxonomy, ic=ic)
    return DatasetBundle(
        name="wordnet-like",
        graph=graph,
        taxonomy=taxonomy,
        ic=ic,
        measure=measure,
        entity_nodes=list(concepts),
    )
