"""Datasets: the paper's worked example plus synthetic corpus stand-ins.

The paper evaluates on AMiner, Amazon, Wikipedia and WordNet crawls that are
not redistributable (and unreachable offline), so this package generates
seeded synthetic analogues that preserve the structural/semantic features
each experiment depends on — see DESIGN.md §3 for the per-dataset
substitution argument.  Every generator returns a :class:`DatasetBundle`
with the graph, its taxonomy, IC table, the ready-made Lin measure, and any
task-specific ground truth.
"""

from repro.datasets.bundle import DatasetBundle
from repro.datasets.figure1 import FIGURE1_IC_TABLE, figure1_network, figure2_graph
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_hin
from repro.datasets.aminer import aminer_like
from repro.datasets.amazon import amazon_like
from repro.datasets.wikipedia import wikipedia_like
from repro.datasets.wordnet import wordnet_like
from repro.datasets.wordsim import WordPairJudgement, wordsim_benchmark

__all__ = [
    "DatasetBundle",
    "FIGURE1_IC_TABLE",
    "figure1_network",
    "figure2_graph",
    "SyntheticConfig",
    "generate_synthetic_hin",
    "aminer_like",
    "amazon_like",
    "wikipedia_like",
    "wordnet_like",
    "WordPairJudgement",
    "wordsim_benchmark",
]
