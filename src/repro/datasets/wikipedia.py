"""Wikipedia-like synthetic article network (term-relatedness testbed).

Articles link to semantically related articles (unit weights — the paper's
Wikipedia dataset has no weight information) and attach to a category
taxonomy derived from Wikipedia categories.  The real dataset is small
(4.7K articles); the default here is smaller still so the exact iterative
forms stay fast, but the generator scales to the paper's size.
"""

from __future__ import annotations

from repro.datasets.bundle import DatasetBundle
from repro.datasets.synthetic import SyntheticConfig, generate_synthetic_hin


def wikipedia_like(
    num_articles: int = 350,
    avg_links: float = 6.0,
    semantic_affinity: float = 0.55,
    seed: int = 0,
) -> DatasetBundle:
    """Generate the Wikipedia-like bundle (unit-weight article links)."""
    config = SyntheticConfig(
        name="wikipedia-like",
        num_entities=num_articles,
        taxonomy_depth=3,
        taxonomy_branching=(2, 4),
        avg_relations=avg_links,
        semantic_affinity=semantic_affinity,
        max_weight=1,
        relation_label="link",
        entity_label="article",
        category_zipf=1.2,
        seed=seed,
    )
    bundle = generate_synthetic_hin(config)
    bundle.name = "wikipedia-like"
    return bundle
