"""AMiner-like synthetic bibliographic network (entity-resolution testbed).

Reproduces the structural features of the paper's AMiner extract that its
algorithms and experiments react to:

* a weighted **co-author layer** with community structure (authors cluster
  around research topics; collaboration counts become edge weights);
* **author-term edges** whose weights reflect how prevalent the term is in
  the author's papers;
* a **CS-topic taxonomy** with skewed term prevalence (informative IC) and
  a **geographic taxonomy** (continents/countries);
* every author typed ``is-a Author`` — author-level semantics is therefore
  *uninformative*, the property Section 5.3 highlights when discussing why
  pure semantic measures fail at entity resolution on this graph;
* **planted duplicates**: a configurable number of author and term nodes is
  cloned with a name variant and a noisy copy of the original's edges —
  the ground truth for the Figure 5(b) experiment.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.datasets.synthetic import _pareto_degrees, _zipf_assignment
from repro.hin.graph import HIN
from repro.semantics.lin import LinMeasure
from repro.taxonomy.ic import seco_information_content
from repro.taxonomy.taxonomy import Taxonomy
from repro.utils.rng import ensure_rng

_SURNAMES = [
    "smith", "chen", "gupta", "muller", "rossi", "tanaka", "kim", "garcia",
    "ivanov", "kowalski", "johnson", "wang", "patel", "silva", "nguyen",
    "cohen", "dubois", "larsen", "novak", "okafor",
]

_CONTINENTS = {
    "Asia": ["China", "India", "Japan", "Korea", "Israel"],
    "Europe": ["Germany", "France", "Italy", "Poland", "Norway"],
    "America": ["USA", "Canada", "Brazil", "Mexico", "Argentina"],
}


def aminer_like(
    num_authors: int = 300,
    num_terms: int = 120,
    num_topics: int = 12,
    num_author_duplicates: int = 6,
    num_term_duplicates: int = 24,
    collaboration_affinity: float = 0.75,
    clone_keep: float = 0.6,
    clone_noise_edges: int = 2,
    seed: int = 0,
) -> DatasetBundle:
    """Generate the AMiner-like bundle.

    ``extras["duplicates"]`` holds the planted ``(original, clone)`` pairs
    (authors and terms mixed, exactly like the paper's 30 Levenshtein-mined
    pairs — 6 author pairs + 24 term pairs by default);
    ``extras["author_names"]`` maps author node ids to display names for
    the Levenshtein mining step.
    """
    rng = ensure_rng(seed)

    # ------------------------------------------------------------------
    # Taxonomies: CS topics (two levels) + geography + the Author type.
    # ------------------------------------------------------------------
    taxonomy = Taxonomy()
    taxonomy.add_concept("Entity")
    taxonomy.add_concept("Author", parents=["Entity"])
    taxonomy.add_concept("CS", parents=["Entity"])
    taxonomy.add_concept("Country", parents=["Entity"])
    areas = [f"area{k}" for k in range(max(2, num_topics // 4))]
    for area in areas:
        taxonomy.add_concept(area, parents=["CS"])
    topics = [f"topic{k}" for k in range(num_topics)]
    for k, topic in enumerate(topics):
        taxonomy.add_concept(topic, parents=[areas[k % len(areas)]])
    for continent, countries in _CONTINENTS.items():
        taxonomy.add_concept(continent, parents=["Country"])
        for country in countries:
            taxonomy.add_concept(country, parents=[continent])
    all_countries = [c for cs in _CONTINENTS.values() for c in cs]

    # ------------------------------------------------------------------
    # Terms: Zipf-assigned to topics so prevalence (and IC) is skewed.
    # ------------------------------------------------------------------
    terms = [f"term{i}" for i in range(num_terms)]
    term_topics = _zipf_assignment(num_terms, topics, 1.2, rng)
    for term, topic in zip(terms, term_topics):
        taxonomy.add_concept(term, parents=[topic])

    # ------------------------------------------------------------------
    # Authors: community per topic, country, display name.
    # ------------------------------------------------------------------
    authors = [f"author{i}" for i in range(num_authors)]
    author_topic = _zipf_assignment(num_authors, topics, 1.0, rng)
    author_names = {
        author: f"{_SURNAMES[int(rng.integers(len(_SURNAMES)))]} "
        f"{chr(ord('a') + int(rng.integers(26)))}. {i:03d}"
        for i, author in enumerate(authors)
    }
    for author in authors:
        taxonomy.add_concept(author, parents=["Author"])

    graph = HIN()
    for author in authors:
        graph.add_node(author, label="author")
    for term in terms:
        graph.add_node(term, label="term")
    for concept in taxonomy.concepts():
        if concept not in graph:
            graph.add_node(concept, label="concept")
    for concept in taxonomy.concepts():
        for parent in taxonomy.parents(concept):
            graph.add_undirected_edge(concept, parent, label="is-a")

    # Countries of origin.
    author_country = {
        author: all_countries[int(rng.integers(len(all_countries)))]
        for author in authors
    }
    for author, country in author_country.items():
        graph.add_undirected_edge(author, country, label="origin")

    # Terms of interest: mostly from the author's own topic.
    terms_by_topic: dict[str, list[str]] = {}
    for term, topic in zip(terms, term_topics):
        terms_by_topic.setdefault(topic, []).append(term)
    for i, author in enumerate(authors):
        pool = terms_by_topic.get(author_topic[i], terms)
        for _ in range(int(rng.integers(1, 4))):
            if rng.random() < 0.8 and pool:
                term = pool[int(rng.integers(len(pool)))]
            else:
                term = terms[int(rng.integers(num_terms))]
            weight = float(rng.integers(1, 6))
            graph.add_undirected_edge(author, term, weight=weight, label="interest")

    # Collaborations: community-biased, weight = number of joint papers.
    authors_by_topic: dict[str, list[int]] = {}
    for i, topic in enumerate(author_topic):
        authors_by_topic.setdefault(topic, []).append(i)
    degrees = _pareto_degrees(num_authors, 3.0, rng)
    for i, author in enumerate(authors):
        community = authors_by_topic.get(author_topic[i], [])
        for _ in range(int(degrees[i])):
            if community and rng.random() < collaboration_affinity:
                j = int(community[int(rng.integers(len(community)))])
            else:
                j = int(rng.integers(num_authors))
            if j == i:
                continue
            weight = float(rng.integers(1, 6))
            graph.add_undirected_edge(authors[j], author, weight=weight, label="co-author")

    # ------------------------------------------------------------------
    # Planted duplicates (the Fig. 5b ground truth).
    # ------------------------------------------------------------------
    duplicates: list[tuple[str, str]] = []
    dup_authors = rng.choice(num_authors, size=min(num_author_duplicates, num_authors), replace=False)
    for i in map(int, dup_authors):
        original = authors[i]
        clone = f"{original}_dup"
        graph.add_node(clone, label="author")
        taxonomy.add_concept(clone, parents=["Author"])
        author_names[clone] = author_names[original].replace(". ", " ")
        _clone_edges(graph, rng, original, clone, keep=clone_keep,
                     noise_pool=authors, noise_edges=clone_noise_edges)
        duplicates.append((original, clone))
    dup_terms = rng.choice(num_terms, size=min(num_term_duplicates, num_terms), replace=False)
    for i in map(int, dup_terms):
        original = terms[i]
        clone = f"{original}_dup"
        graph.add_node(clone, label="term")
        taxonomy.add_concept(clone, parents=[term_topics[i]])
        _clone_edges(graph, rng, original, clone, keep=clone_keep,
                     noise_pool=authors, noise_edges=clone_noise_edges)
        duplicates.append((original, clone))

    ic = seco_information_content(taxonomy)
    measure = LinMeasure(taxonomy, ic=ic)
    entity_nodes = [node for node in graph.nodes() if graph.node_label(node) in ("author", "term")]
    names = dict(author_names)
    names.update({term: term.replace("term", "term ") for term in terms})
    names.update({f"{t}_dup": f"{t.replace('term', 'term ')}s" for t in terms})
    return DatasetBundle(
        name="aminer-like",
        graph=graph,
        taxonomy=taxonomy,
        ic=ic,
        measure=measure,
        entity_nodes=entity_nodes,
        extras={
            "duplicates": duplicates,
            "names": names,
            "author_topic": dict(zip(authors, author_topic)),
        },
    )


def _clone_edges(
    graph: HIN,
    rng: np.random.Generator,
    original: str,
    clone: str,
    keep: float = 0.6,
    noise_pool: list[str] | None = None,
    noise_edges: int = 0,
) -> None:
    """Copy ~*keep* of *original*'s edges onto *clone* with jittered weights.

    *noise_edges* additional edges to random *noise_pool* members simulate
    the clone's independent activity (a duplicate author entry still
    accrues its own collaborations), keeping duplicate detection from
    being trivially easy.
    """
    for target, weight, label in list(graph.out_edges(original)):
        if rng.random() < keep:
            jitter = max(1.0, weight + float(rng.integers(-1, 2)))
            graph.add_undirected_edge(clone, target, weight=jitter, label=label)
    for _ in range(noise_edges):
        if not noise_pool:
            break
        target = noise_pool[int(rng.integers(len(noise_pool)))]
        if target not in (original, clone):
            graph.add_undirected_edge(clone, target, label="co-author")
