"""The common container every dataset generator returns."""

from __future__ import annotations

from dataclasses import dataclass, field
from repro.hin.graph import HIN, Node
from repro.semantics.lin import LinMeasure
from repro.taxonomy.taxonomy import Concept, Taxonomy


@dataclass
class DatasetBundle:
    """A graph plus the semantic machinery and ground truth built with it.

    Attributes
    ----------
    name:
        Dataset identifier used in benchmark output.
    graph:
        The HIN (object layer + ontological layer, Section 2.1).
    taxonomy:
        The ``is-a`` hierarchy (kept separately with its child->parent
        orientation; the HIN may encode the same relations symmetrically
        for the structural walk).
    ic:
        Information-content table in ``(0, 1]``.
    measure:
        The ready-to-use Lin measure over *taxonomy* and *ic*.
    entity_nodes:
        The object-layer nodes (the ones tasks query).
    extras:
        Task-specific ground truth (removed links, duplicate pairs,
        relatedness judgements...), keyed by task name.
    """

    name: str
    graph: HIN
    taxonomy: Taxonomy
    ic: dict[Concept, float]
    measure: LinMeasure
    entity_nodes: list[Node] = field(default_factory=list)
    extras: dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return (
            f"DatasetBundle({self.name!r}, nodes={self.graph.num_nodes}, "
            f"edges={self.graph.num_edges}, concepts={len(self.taxonomy)})"
        )
