"""Seeded synthetic HIN generator — the common engine behind the corpus
stand-ins.

Every generated network has the two-layer shape of Section 2.1:

* an **ontological layer**: a random rooted taxonomy whose leaves are
  categories, built level by level with configurable depth/branching;
* an **object layer**: entities attached to leaf categories under a Zipf
  prevalence profile (so some categories are common → low IC, some are rare
  → high IC, which is what makes the semantic signal informative), plus
  weighted symmetric relations whose endpoints are drawn *semantically
  close* with probability ``semantic_affinity`` and uniformly otherwise.

The affinity knob is the load-bearing part of the substitution argument
(DESIGN.md §3): it plants the correlation between structure and semantics
that the paper's real corpora exhibit and its experiments exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.datasets.bundle import DatasetBundle
from repro.errors import ConfigurationError
from repro.hin.graph import HIN
from repro.semantics.lin import LinMeasure
from repro.taxonomy.ic import seco_information_content
from repro.taxonomy.taxonomy import Taxonomy
from repro.utils.rng import ensure_rng


@dataclass
class SyntheticConfig:
    """Parameters of one synthetic HIN.

    Attributes
    ----------
    name:
        Dataset identifier.
    num_entities:
        Object-layer node count.
    taxonomy_depth:
        Levels below the root (>= 1).
    taxonomy_branching:
        Inclusive ``(low, high)`` children per internal concept.
    avg_relations:
        Mean number of symmetric relations per entity (degrees are drawn
        from a clipped Pareto, so the tail is heavy like real co-author /
        co-purchase graphs).
    semantic_affinity:
        Probability that a relation endpoint is drawn from the same or a
        sibling category rather than uniformly.
    max_weight:
        Relation weights are uniform integers in ``[1, max_weight]``
        (1 = the paper's "no knowledge" default).
    relation_label / entity_label:
        Labels stamped on object-layer edges / nodes.
    category_zipf:
        Zipf exponent of the category-prevalence profile (higher = more
        skew).
    """

    name: str
    num_entities: int
    taxonomy_depth: int = 3
    taxonomy_branching: tuple[int, int] = (2, 4)
    avg_relations: float = 4.0
    semantic_affinity: float = 0.6
    max_weight: int = 1
    relation_label: str = "related"
    entity_label: str = "entity"
    category_zipf: float = 1.3
    seed: int = 0

    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on invalid parameter values."""
        if self.num_entities < 2:
            raise ConfigurationError("num_entities must be >= 2")
        if self.taxonomy_depth < 1:
            raise ConfigurationError("taxonomy_depth must be >= 1")
        low, high = self.taxonomy_branching
        if not 1 <= low <= high:
            raise ConfigurationError("taxonomy_branching must satisfy 1 <= low <= high")
        if not 0 <= self.semantic_affinity <= 1:
            raise ConfigurationError("semantic_affinity must lie in [0, 1]")
        if self.max_weight < 1:
            raise ConfigurationError("max_weight must be >= 1")
        if self.avg_relations <= 0:
            raise ConfigurationError("avg_relations must be > 0")


def _build_taxonomy(
    config: SyntheticConfig, rng: np.random.Generator
) -> tuple[Taxonomy, list[str], dict[str, str]]:
    """Build the random concept tree; return (taxonomy, leaves, parent map)."""
    taxonomy = Taxonomy()
    root = f"{config.name}:root"
    taxonomy.add_concept(root)
    parent_of: dict[str, str] = {}
    level = [root]
    counter = 0
    low, high = config.taxonomy_branching
    for depth in range(config.taxonomy_depth):
        next_level: list[str] = []
        for parent in level:
            for _ in range(int(rng.integers(low, high + 1))):
                concept = f"{config.name}:c{counter}"
                counter += 1
                taxonomy.add_concept(concept, parents=[parent])
                parent_of[concept] = parent
                next_level.append(concept)
        level = next_level
    leaves = list(level)
    return taxonomy, leaves, parent_of


def _zipf_assignment(
    count: int, leaves: list[str], exponent: float, rng: np.random.Generator
) -> list[str]:
    """Assign each of *count* entities a leaf category, Zipf-skewed."""
    ranks = np.arange(1, len(leaves) + 1, dtype=np.float64)
    masses = ranks ** (-exponent)
    masses /= masses.sum()
    order = rng.permutation(len(leaves))
    choices = rng.choice(len(leaves), size=count, p=masses)
    return [leaves[order[int(c)]] for c in choices]


def _pareto_degrees(
    count: int, mean: float, rng: np.random.Generator
) -> np.ndarray:
    """Heavy-tailed per-entity relation budgets with the requested mean."""
    raw = rng.pareto(2.5, size=count) + 1.0
    scaled = raw * (mean / raw.mean())
    return np.maximum(1, np.round(scaled)).astype(np.int64)


def generate_synthetic_hin(config: SyntheticConfig) -> DatasetBundle:
    """Generate one two-layer HIN from *config* (fully seed-deterministic)."""
    config.validate()
    rng = ensure_rng(config.seed)
    taxonomy, leaves, parent_of = _build_taxonomy(config, rng)

    entities = [f"{config.name}:e{i}" for i in range(config.num_entities)]
    categories = _zipf_assignment(config.num_entities, leaves, config.category_zipf, rng)
    for entity, category in zip(entities, categories):
        taxonomy.add_concept(entity, parents=[category])

    # Sibling pools: entities whose categories share a parent are the
    # "semantically close" candidates.
    by_category: dict[str, list[int]] = {}
    for i, category in enumerate(categories):
        by_category.setdefault(category, []).append(i)
    by_parent: dict[str, list[int]] = {}
    for category, members in by_category.items():
        by_parent.setdefault(parent_of[category], []).extend(members)

    graph = HIN()
    for entity in entities:
        graph.add_node(entity, label=config.entity_label)
    for concept in taxonomy.concepts():
        if concept not in graph:
            graph.add_node(concept, label="concept")

    # Ontological backbone + attachments (symmetric, as in Figure 1).
    for concept in taxonomy.concepts():
        for parent in taxonomy.parents(concept):
            graph.add_undirected_edge(concept, parent, label="is-a")

    # Object-layer relations.
    degrees = _pareto_degrees(config.num_entities, config.avg_relations, rng)
    for i, entity in enumerate(entities):
        close_pool = by_parent.get(parent_of[categories[i]], [])
        for _ in range(int(degrees[i])):
            if close_pool and rng.random() < config.semantic_affinity:
                j = int(close_pool[int(rng.integers(len(close_pool)))])
            else:
                j = int(rng.integers(config.num_entities))
            if j == i:
                continue
            target = entities[j]
            if config.max_weight == 1:
                # Unit-weight datasets (e.g. the Wikipedia link graph) carry
                # no strength information at all.
                weight = 1.0
            else:
                weight = float(rng.integers(1, config.max_weight + 1))
                if graph.has_edge(entity, target):
                    # Repeated relations strengthen the tie, like repeated
                    # collaborations or co-purchases.
                    weight += graph.edge_weight(entity, target)
            graph.add_undirected_edge(entity, target, weight=weight, label=config.relation_label)

    ic = seco_information_content(taxonomy)
    measure = LinMeasure(taxonomy, ic=ic)
    return DatasetBundle(
        name=config.name,
        graph=graph,
        taxonomy=taxonomy,
        ic=ic,
        measure=measure,
        entity_nodes=entities,
        extras={"categories": dict(zip(entities, categories))},
    )
