"""The paper's Figure 1 bibliographic network and Table 1 IC values.

The running example: authors Aditi, Bo and John each collaborated twice
with Paul; their origin countries (India, China, USA) are highly prevalent
concepts (low IC) while their fields of interest are specific (high IC);
Crowd Mining (Aditi) is semantically much closer to Spatial Crowdsourcing
(John) than to Web Data Mining (Bo).  SemSim therefore ranks John above Bo
with respect to Aditi, while SimRank — seeing only structure, where Bo and
Aditi's countries share the *Country in Asia* hypernym — gets it backwards.

IC values are reconstructed from the Lin scores Example 2.2 reports (the
published Table 1 lists values but the row labels did not survive the
source text): ``Lin(Bo, Aditi) = Lin(John, Aditi) = 0.01`` pins
``IC(Author) = 0.01`` (author leaves have IC 1); ``Lin(Spatial
Crowdsourcing, Crowd Mining) = 0.94`` pins ``IC(Crowdsourcing) = 0.85``
against field ICs of 0.9; ``Lin(Web Data Mining, Crowd Mining) = 0.37``
pins ``IC(Data Mining) = 0.3`` against ``IC(Web Data Mining) = 0.7``; the
country/continent values are then calibrated so the reported per-iteration
behaviour holds (``R_k(John, Aditi) > R_k(Bo, Aditi)`` under SemSim with
magnitudes ≈ 0.0076, while SimRank prefers Bo at every iteration).

Relation edges are encoded symmetrically (the paper notes the undirected
adaptation is immediate, and Example 2.2 counts the *Author* category among
the authors' common neighbours, which requires category edges to feed the
reverse walk).
"""

from __future__ import annotations

from repro.datasets.bundle import DatasetBundle
from repro.hin.graph import HIN
from repro.semantics.lin import LinMeasure
from repro.taxonomy.ic import explicit_information_content
from repro.taxonomy.taxonomy import Taxonomy

#: Table 1 — IC values for the Figure 1 entities.
FIGURE1_IC_TABLE: dict[str, float] = {
    "Entity": 0.001,
    "Country": 0.001,
    "Author": 0.01,
    "Research Field": 0.01,
    "Country in Asia": 0.019,
    "Country in America": 0.019,
    "India": 0.02,
    "China": 0.02,
    "USA": 0.02,
    "Data Mining": 0.3,
    "Crowdsourcing": 0.85,
    "Web Data Mining": 0.7,
    "Crowd Mining": 0.9,
    "Spatial Crowdsourcing": 0.9,
    "Aditi": 1.0,
    "Bo": 1.0,
    "John": 1.0,
    "Paul": 1.0,
}

#: ``child -> parents`` of the Figure 1 taxonomy (a DAG: Crowd Mining has
#: two hypernyms).
_TAXONOMY: dict[str, list[str]] = {
    "Country": ["Entity"],
    "Author": ["Entity"],
    "Research Field": ["Entity"],
    "Country in Asia": ["Country"],
    "Country in America": ["Country"],
    "India": ["Country in Asia"],
    "China": ["Country in Asia"],
    "USA": ["Country in America"],
    "Data Mining": ["Research Field"],
    "Crowdsourcing": ["Research Field"],
    "Web Data Mining": ["Data Mining"],
    "Crowd Mining": ["Crowdsourcing", "Data Mining"],
    "Spatial Crowdsourcing": ["Crowdsourcing"],
    "Aditi": ["Author"],
    "Bo": ["Author"],
    "John": ["Author"],
    "Paul": ["Author"],
}


def figure1_taxonomy() -> Taxonomy:
    """Return the Figure 1 concept taxonomy (authors included as leaves)."""
    taxonomy = Taxonomy()
    taxonomy.add_concept("Entity")
    for child, parents in _TAXONOMY.items():
        taxonomy.add_concept(child, parents=parents)
    return taxonomy


def figure1_network() -> DatasetBundle:
    """Return the full Figure 1 bundle: graph, taxonomy, Table 1 ICs, Lin."""
    graph = HIN()
    for author in ("Aditi", "Bo", "John", "Paul"):
        graph.add_node(author, label="author")
    for concept in _TAXONOMY:
        if concept not in graph:
            graph.add_node(concept, label="concept")
    graph.add_node("Entity", label="concept")

    # Co-authorship: each of the three collaborated with Paul twice.
    for author in ("Aditi", "Bo", "John"):
        graph.add_undirected_edge(author, "Paul", weight=2.0, label="co-author")
    # Category, origin and field-of-interest attachments.
    for author in ("Aditi", "Bo", "John", "Paul"):
        graph.add_undirected_edge(author, "Author", label="is-a")
    graph.add_undirected_edge("Aditi", "India", label="origin")
    graph.add_undirected_edge("Bo", "China", label="origin")
    graph.add_undirected_edge("John", "USA", label="origin")
    graph.add_undirected_edge("Aditi", "Crowd Mining", label="interest")
    graph.add_undirected_edge("Bo", "Web Data Mining", label="interest")
    graph.add_undirected_edge("John", "Spatial Crowdsourcing", label="interest")
    # Taxonomy backbone (authors' is-a edges are the attachments above).
    for child, parents in _TAXONOMY.items():
        if child in ("Aditi", "Bo", "John", "Paul"):
            continue
        for parent in parents:
            graph.add_undirected_edge(child, parent, label="is-a")

    taxonomy = figure1_taxonomy()
    ic = explicit_information_content(taxonomy, FIGURE1_IC_TABLE)
    measure = LinMeasure(taxonomy, ic=ic)
    return DatasetBundle(
        name="figure1",
        graph=graph,
        taxonomy=taxonomy,
        ic=ic,
        measure=measure,
        entity_nodes=["Aditi", "Bo", "John", "Paul"],
    )


def figure2_graph() -> tuple[HIN, DatasetBundle]:
    """Return the small graph of Figure 2 / Example 3.2.

    Authors A and B, A's current country Canada, B's origin country USA,
    plus the Author category — the graph on which Example 3.2 computes SARW
    step probabilities ``P[(A,B) -> (Canada,USA)] = 0.36`` and
    ``P[(A,B) -> (Author,USA)] = 0.09``.

    The example's Lin values (``Lin(Canada, USA) = 0.8``,
    ``Lin(Author, USA) = 0.2``) are injected through an explicit IC table
    chosen to produce exactly those scores.
    """
    graph = HIN()
    graph.add_node("A", label="author")
    graph.add_node("B", label="author")
    for concept in ("Canada", "USA", "Author", "Country in America", "Entity"):
        graph.add_node(concept, label="concept")
    # Attachment edges are directed concept -> author so that, after the
    # reversal of Section 3.1, the out-edges of the pair (A, B) are exactly
    # the four Figure 2b shows: in(A) = {Canada, Author} and
    # in(B) = {USA, Author}.
    graph.add_edge("Canada", "A", label="current-country")
    graph.add_edge("USA", "B", label="origin")
    graph.add_edge("Author", "A", label="is-a")
    graph.add_edge("Author", "B", label="is-a")

    taxonomy = Taxonomy()
    taxonomy.add_concept("Entity")
    taxonomy.add_concept("Author", parents=["Entity"])
    taxonomy.add_concept("Country in America", parents=["Entity"])
    taxonomy.add_concept("Canada", parents=["Country in America"])
    taxonomy.add_concept("USA", parents=["Country in America"])
    taxonomy.add_concept("A", parents=["Author"])
    taxonomy.add_concept("B", parents=["Author"])
    # Lin(Canada, USA) = 2 * 0.4 / (0.5 + 0.5) = 0.8;
    # Lin(Author, USA) = 2 * 0.07 / (0.2 + 0.5) = 0.2.
    ic = {
        "Entity": 0.07,
        "Author": 0.2,
        "Country in America": 0.4,
        "Canada": 0.5,
        "USA": 0.5,
        "A": 1.0,
        "B": 1.0,
    }
    bundle = DatasetBundle(
        name="figure2",
        graph=graph,
        taxonomy=taxonomy,
        ic=ic,
        measure=LinMeasure(taxonomy, ic=ic),
        entity_nodes=["A", "B"],
    )
    return graph, bundle
