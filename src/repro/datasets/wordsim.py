"""WordsSim-353-style relatedness benchmark (synthetic gold judgements).

The paper's Table 5 ranks similarity measures by Pearson correlation with
human relatedness judgements (WordsSim-353 [8]).  Two empirical facts about
that benchmark drive the construction here:

1. **Pair selection is not uniform** — WS-353 deliberately spans the full
   relatedness spectrum, including many clearly related pairs.  We sample
   half the pairs from small graph neighbourhoods (≤ 3 hops) and half
   uniformly.

2. **Human relatedness is not an additive mix** of taxonomic and structural
   proximity — that is precisely the paper's Table-5 finding (the naive
   Average/Multiplication combiners lose to measures that *interweave* the
   two signals).  The synthetic gold therefore blends, per pair:

   * a **recursive-contextual latent**: an exact recursive contextual
     similarity computed with a *different* semantic measure and decay than
     any competitor uses (Wu-Palmer, c = 0.75) — the behavioural model of
     relatedness the paper's results imply;
   * an **additive direct component**: the pair's own Wu-Palmer similarity
     plus the mean Wu-Palmer similarity of their graph neighbourhoods;
   * Gaussian noise (human judgements are noisy).

   Competitors that read only one signal (Lin: taxonomy; SimRank/Panther:
   structure) or combine them post hoc (Average/Multiplication) explain
   part of this gold; recursively interweaving measures explain the most —
   reproducing the table's shape without hard-coding any competitor's
   scores (the latent uses neither Lin nor c = 0.6).
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

from repro.core.semsim import semsim_scores
from repro.datasets.bundle import DatasetBundle
from repro.errors import ConfigurationError
from repro.hin.graph import Node
from repro.semantics.path_based import WuPalmerMeasure
from repro.utils.bfs import bfs_distances
from repro.utils.rng import ensure_rng

#: Decay used for the latent recursive-contextual signal — deliberately
#: different from the c = 0.6 every competitor runs with.
LATENT_DECAY = 0.75


@dataclass
class WordPairJudgement:
    """One benchmark row: a pair of nodes and its gold relatedness (0-10)."""

    a: Node
    b: Node
    score: float


def _sample_pairs(
    bundle: DatasetBundle,
    num_pairs: int,
    rng: np.random.Generator,
) -> list[tuple[Node, Node]]:
    """Half neighbourhood pairs (≤ 3 hops), half uniform — WS-353 style."""
    entities = list(bundle.entity_nodes)
    entity_set = set(entities)
    pairs: list[tuple[Node, Node]] = []
    seen: set[frozenset] = set()
    attempts = 0
    budget = num_pairs * 80
    while len(pairs) < num_pairs // 2 and attempts < budget:
        attempts += 1
        a = entities[int(rng.integers(len(entities)))]
        ball = [
            node
            for node, depth in bfs_distances(bundle.graph, a, max_depth=3).items()
            if node != a and node in entity_set
        ]
        if not ball:
            continue
        b = ball[int(rng.integers(len(ball)))]
        key = frozenset((str(a), str(b)))
        if key in seen:
            continue
        seen.add(key)
        pairs.append((a, b))
    while len(pairs) < num_pairs and attempts < budget:
        attempts += 1
        i, j = rng.choice(len(entities), size=2, replace=False)
        a, b = entities[int(i)], entities[int(j)]
        key = frozenset((str(a), str(b)))
        if key in seen:
            continue
        seen.add(key)
        pairs.append((a, b))
    return pairs


def wordsim_benchmark(
    bundle: DatasetBundle,
    num_pairs: int = 120,
    latent_weight: float = 0.5,
    noise_std: float = 0.06,
    seed: int = 0,
) -> list[WordPairJudgement]:
    """Sample a WordsSim-style benchmark from *bundle*.

    ``gold = 10 * clip(latent_weight * recursive_latent
                       + (1 - latent_weight) * (tax + neighbourhood) / 2
                       + noise)``
    """
    if not 0 <= latent_weight <= 1:
        raise ConfigurationError(
            f"latent_weight must lie in [0, 1], got {latent_weight!r}"
        )
    rng = ensure_rng(seed)
    if len(bundle.entity_nodes) < 2:
        raise ConfigurationError("bundle has fewer than 2 entity nodes")
    pairs = _sample_pairs(bundle, num_pairs, rng)

    wup = WuPalmerMeasure(bundle.taxonomy)
    latent = semsim_scores(
        bundle.graph, wup, decay=LATENT_DECAY, max_iterations=25, tolerance=1e-8
    )
    latent_raw = np.array([latent.score(a, b) for a, b in pairs])
    peak = float(latent_raw.max())
    latent_norm = latent_raw / peak if peak > 0 else latent_raw

    taxonomic = np.array([wup.similarity(a, b) for a, b in pairs])
    neighbourhood = []
    for a, b in pairs:
        neighbours_a = list(bundle.graph.out_neighbors(a))[:8]
        neighbours_b = list(bundle.graph.out_neighbors(b))[:8]
        if neighbours_a and neighbours_b:
            neighbourhood.append(
                float(
                    np.mean(
                        [
                            wup.similarity(x, y)
                            for x in neighbours_a
                            for y in neighbours_b
                        ]
                    )
                )
            )
        else:
            neighbourhood.append(0.0)
    direct = 0.5 * taxonomic + 0.5 * np.array(neighbourhood)

    noise = rng.normal(0.0, noise_std, size=len(pairs))
    blended = latent_weight * latent_norm + (1.0 - latent_weight) * direct + noise
    scores = 10.0 * np.clip(blended, 0.0, 1.0)
    return [
        WordPairJudgement(a, b, float(score))
        for (a, b), score in zip(pairs, scores)
    ]
