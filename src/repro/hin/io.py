"""HIN (de)serialisation.

A graph round-trips through a plain JSON-compatible dictionary with two keys:

``nodes``
    list of ``[node_id, label]`` pairs (insertion order preserved);
``edges``
    list of ``[source, target, weight, label]`` quadruples.

Only string node identifiers survive a JSON round trip losslessly; the
in-memory dict form accepts any hashable id.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import GraphError
from repro.hin.graph import HIN

FORMAT_VERSION = 1


def hin_to_dict(graph: HIN) -> dict:
    """Serialise *graph* to a JSON-compatible dictionary."""
    return {
        "format": "repro-hin",
        "version": FORMAT_VERSION,
        "nodes": [[node, graph.node_label(node)] for node in graph.nodes()],
        "edges": [
            [source, target, weight, label]
            for source, target, weight, label in graph.edges()
        ],
    }


def hin_from_dict(payload: dict) -> HIN:
    """Deserialise a graph produced by :func:`hin_to_dict`."""
    if payload.get("format") != "repro-hin":
        raise GraphError("payload is not a repro-hin document")
    if payload.get("version") != FORMAT_VERSION:
        raise GraphError(f"unsupported repro-hin version {payload.get('version')!r}")
    graph = HIN()
    for node, label in payload["nodes"]:
        graph.add_node(node, label=label)
    for source, target, weight, label in payload["edges"]:
        graph.add_edge(source, target, weight=weight, label=label)
    return graph


def save_hin_json(graph: HIN, path: str | Path) -> None:
    """Write *graph* to *path* as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(hin_to_dict(graph), handle, indent=1)


def load_hin_json(path: str | Path) -> HIN:
    """Load a graph written by :func:`save_hin_json`."""
    with open(path, encoding="utf-8") as handle:
        return hin_from_dict(json.load(handle))
