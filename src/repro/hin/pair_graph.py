"""The node-pair graph ``G²`` (Section 3.1).

Each node of ``G²`` is an *ordered pair* of nodes of ``G``; following the
random-surfer convention all edges of ``G`` are reversed first, so a surfer
standing on the pair ``(u, u')`` moves to ``(v, v')`` where ``v`` is an
in-neighbour of ``u`` and ``v'`` an in-neighbour of ``u'`` in the original
graph.  Edge weights multiply: ``W((u,u'),(v,v')) = W(v,u) * W(v',u')``.

``G²`` has ``|V|²`` nodes and ``|E|²`` edges, so this class never
materialises it: it exposes lazy out-edge iteration plus exact analytic size
counts (used in the Table 3 benchmark) and sampled path statistics toward
singleton nodes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import NodeNotFoundError
from repro.hin.graph import HIN, Node
from repro.utils.rng import ensure_rng

Pair = tuple[Node, Node]


class PairGraph:
    """A lazy view of ``G²`` over the reversed base graph."""

    def __init__(self, base: HIN) -> None:
        self.base = base

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V|²`` — every ordered pair is a node of ``G²``."""
        return self.base.num_nodes ** 2

    @property
    def num_edges(self) -> int:
        """``|E|²`` — each pair of base edges induces one ``G²`` edge.

        Out-edges of pair ``(u, u')`` number ``|I(u)| * |I(u')|``; summing
        over all ordered pairs factorises into ``(sum_v |I(v)|)² = |E|²``.
        """
        return self.base.num_edges ** 2

    def contains(self, pair: Pair) -> bool:
        """Return whether *pair* is a node of ``G²``."""
        u, v = pair
        return u in self.base and v in self.base

    def is_singleton(self, pair: Pair) -> bool:
        """Return whether *pair* is a singleton node ``(x, x)``."""
        return pair[0] == pair[1]

    def out_edges(self, pair: Pair) -> Iterator[tuple[Pair, float]]:
        """Yield ``(target_pair, weight)`` for the surfer's moves from *pair*.

        Singleton pairs yield nothing: the paper prunes out-edges of
        singleton nodes because only the surfers' *first* meeting counts.
        """
        if not self.contains(pair):
            raise NodeNotFoundError(pair)
        if self.is_singleton(pair):
            return
        u, v = pair
        for a, weight_a, _ in self.base.in_edges(u):
            for b, weight_b, _ in self.base.in_edges(v):
                yield (a, b), weight_a * weight_b

    def out_degree(self, pair: Pair) -> int:
        """Return ``|I(u)| * |I(v)|`` (0 for singletons)."""
        if self.is_singleton(pair):
            return 0
        u, v = pair
        return self.base.in_degree(u) * self.base.in_degree(v)

    def nodes(self) -> Iterator[Pair]:
        """Iterate all ordered pairs (quadratic — small graphs only)."""
        base_nodes = list(self.base.nodes())
        for u in base_nodes:
            for v in base_nodes:
                yield (u, v)

    # ------------------------------------------------------------------
    # Path statistics (Table 3)
    # ------------------------------------------------------------------
    def singleton_path_stats(
        self,
        num_sources: int = 50,
        max_length: int = 6,
        max_paths_per_source: int = 10_000,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[float, float]:
        """Estimate (avg #paths to singletons, avg path length).

        For each of *num_sources* uniformly sampled non-singleton pairs, the
        walks leading to a *first* singleton within *max_length* steps are
        enumerated by DFS (capped at *max_paths_per_source* to bound work on
        dense instances).  Returns the averages over sources; sources with
        no such path contribute zero paths and are excluded from the length
        average, matching how the paper tabulates "avg. # of paths to
        singletons" and "avg. paths' length".
        """
        rng = ensure_rng(seed)
        base_nodes = list(self.base.nodes())
        if len(base_nodes) < 2:
            return 0.0, 0.0
        path_counts: list[int] = []
        lengths: list[int] = []
        for _ in range(num_sources):
            u, v = rng.choice(len(base_nodes), size=2, replace=False)
            source = (base_nodes[int(u)], base_nodes[int(v)])
            count = self._count_singleton_paths(
                source, max_length, max_paths_per_source, lengths
            )
            path_counts.append(count)
        avg_paths = float(np.mean(path_counts)) if path_counts else 0.0
        avg_length = float(np.mean(lengths)) if lengths else 0.0
        return avg_paths, avg_length

    def _count_singleton_paths(
        self,
        source: Pair,
        max_length: int,
        cap: int,
        lengths_out: list[int],
    ) -> int:
        """DFS-count walks from *source* that end at their first singleton."""
        count = 0
        stack: list[tuple[Pair, int]] = [(source, 0)]
        while stack and count < cap:
            pair, depth = stack.pop()
            if depth > 0 and self.is_singleton(pair):
                count += 1
                lengths_out.append(depth)
                continue
            if depth >= max_length:
                continue
            for target, _weight in self.out_edges(pair):
                stack.append((target, depth + 1))
        return count


def build_pair_graph(base: HIN) -> PairGraph:
    """Return the lazy ``G²`` view of *base* (reversed-edge convention)."""
    return PairGraph(base)
