"""Fluent builder for assembling HINs from domain data.

The experiments build each network from two layers (Section 2.1): an *object*
layer (authors, products, articles...) and an *ontological* layer of
categories linked by ``is-a`` edges, with object nodes attached to their
categories.  :class:`HINBuilder` packages that recipe so dataset generators
and user code read declaratively.
"""

from __future__ import annotations

from typing import Iterable

from repro.hin.graph import DEFAULT_WEIGHT, HIN, Node

IS_A = "is-a"


class HINBuilder:
    """Incrementally build a :class:`HIN` plus its taxonomy edge list.

    Example
    -------
    >>> builder = HINBuilder()
    >>> _ = builder.concept("Author").concept("DB Person", parent="Author")
    >>> _ = builder.entity("aditi", category="DB Person", label="author")
    >>> graph = builder.build()
    >>> graph.edge_label("aditi", "DB Person")
    'is-a'
    """

    def __init__(self) -> None:
        self._graph = HIN()
        self._taxonomy_edges: list[tuple[Node, Node]] = []

    # ------------------------------------------------------------------
    # Ontological layer
    # ------------------------------------------------------------------
    def concept(self, name: Node, parent: Node | None = None, label: str = "concept") -> "HINBuilder":
        """Add a taxonomy concept, optionally linked ``name -is-a-> parent``."""
        self._graph.add_node(name, label=label)
        if parent is not None:
            if parent not in self._graph:
                self._graph.add_node(parent, label=label)
            self._graph.add_edge(name, parent, weight=DEFAULT_WEIGHT, label=IS_A)
            self._taxonomy_edges.append((name, parent))
        return self

    def concepts(self, pairs: Iterable[tuple[Node, Node | None]]) -> "HINBuilder":
        """Add many ``(concept, parent-or-None)`` pairs at once."""
        for name, parent in pairs:
            self.concept(name, parent)
        return self

    # ------------------------------------------------------------------
    # Object layer
    # ------------------------------------------------------------------
    def entity(
        self,
        name: Node,
        category: Node | None = None,
        label: str = "entity",
        category_weight: float = DEFAULT_WEIGHT,
    ) -> "HINBuilder":
        """Add an object node, optionally attached to its taxonomy category."""
        self._graph.add_node(name, label=label)
        if category is not None:
            if category not in self._graph:
                self._graph.add_node(category, label="concept")
            self._graph.add_edge(name, category, weight=category_weight, label=IS_A)
            self._taxonomy_edges.append((name, category))
        return self

    def relate(
        self,
        a: Node,
        b: Node,
        weight: float = DEFAULT_WEIGHT,
        label: str = "related",
        symmetric: bool = True,
    ) -> "HINBuilder":
        """Add a (by default symmetric) relation between two existing nodes."""
        if symmetric:
            self._graph.add_undirected_edge(a, b, weight=weight, label=label)
        else:
            self._graph.add_edge(a, b, weight=weight, label=label)
        return self

    # ------------------------------------------------------------------
    # Output
    # ------------------------------------------------------------------
    def build(self) -> HIN:
        """Return the assembled graph (the builder stays usable)."""
        return self._graph

    def taxonomy_edges(self) -> list[tuple[Node, Node]]:
        """Return all ``(child, parent)`` is-a pairs added so far."""
        return list(self._taxonomy_edges)
