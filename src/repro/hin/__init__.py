"""Heterogeneous Information Network (HIN) substrate.

Implements the data model of Definition 2.1: a directed, weighted graph with
vertex and edge labelling functions, plus the node-pair graph ``G²`` and its
semantically reduced version ``G²_θ`` (Section 3).
"""

from repro.hin.graph import HIN, GraphIndex
from repro.hin.builder import HINBuilder
from repro.hin.io import hin_from_dict, hin_to_dict, load_hin_json, save_hin_json
from repro.hin.pair_graph import PairGraph, build_pair_graph
from repro.hin.reduced_pair_graph import DRAIN, ReducedPairGraph, build_reduced_pair_graph

__all__ = [
    "HIN",
    "GraphIndex",
    "HINBuilder",
    "hin_from_dict",
    "hin_to_dict",
    "load_hin_json",
    "save_hin_json",
    "PairGraph",
    "build_pair_graph",
    "DRAIN",
    "ReducedPairGraph",
    "build_reduced_pair_graph",
]
