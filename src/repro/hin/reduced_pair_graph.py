"""The semantically reduced pair graph ``G²_θ`` (Definition 3.4).

Given a threshold θ, only pair-nodes whose semantic similarity exceeds θ are
kept (Prop. 2.5 guarantees every dropped pair's SemSim score is ≤ θ, so
queries above the threshold lose nothing).  Walks through dropped pairs are
spliced into *shortcut edges* whose weight accumulates the walk
probabilities decayed by ``c`` per step (the paper's ``W2``), direct
surviving edges keep their ``G²`` weight (``W1``), and a drain node ``D``
absorbs the out-weight that reduction removed, so every surviving node's
total out-weight matches ``G²``.

Shortcut mass is computed exactly — including through cycles among omitted
pairs — by a sparse linear solve ``(I - c·T_OO) X = c·T_OK`` instead of path
enumeration.  Theorem 3.5 (scores over ``G²_θ`` equal scores over ``G²``)
is verified in the test-suite against both the full pair-graph solve and the
iterative fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np
import scipy.sparse as sp
import scipy.sparse.linalg as spla

from repro.errors import ConfigurationError, NodeNotFoundError
from repro.hin.graph import HIN, Node
from repro.hin.pair_graph import Pair
from repro.semantics.base import SemanticMeasure, semantic_matrix

#: Sentinel identifier of the drain node ``D``.
DRAIN = ("__drain__", "__drain__")

#: Shortcut weights below this tolerance are treated as numerically zero.
_WEIGHT_TOL = 1e-12


@dataclass
class ReducedPairGraph:
    """Materialised ``G²_θ`` plus the machinery to score pairs on it.

    Attributes
    ----------
    pairs:
        The surviving pair-nodes ``V_θ`` in a stable order.
    w1, w2:
        Direct (``G²``) and shortcut weight components per edge, keyed by
        ``(source_index, target_index)`` into :attr:`pairs`.
    drain_weight:
        Out-weight absorbed by the drain node ``D`` per source index.
    transitions:
        Sparse matrix ``M`` over :attr:`pairs` with
        ``M[A, B] = c * P[A -> B] + shortcut-probability mass`` — the score
        operator of Theorem 3.5.
    """

    theta: float
    decay: float
    pairs: list[Pair]
    position: dict[Pair, int]
    w1: dict[tuple[int, int], float]
    w2: dict[tuple[int, int], float]
    drain_weight: dict[int, float]
    transitions: sp.csr_matrix
    semantic: dict[Pair, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Size statistics (Table 3)
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``|V_θ|`` plus the drain node when any edge feeds it."""
        has_drain = any(w > _WEIGHT_TOL for w in self.drain_weight.values())
        return len(self.pairs) + (1 if has_drain else 0)

    @property
    def num_edges(self) -> int:
        """Edges among surviving pairs plus edges into the drain."""
        edge_keys = set(self.w1) | set(self.w2)
        drain_edges = sum(1 for w in self.drain_weight.values() if w > _WEIGHT_TOL)
        return len(edge_keys) + drain_edges

    def edge_weight(self, source: Pair, target: Pair) -> float:
        """Return ``W_θ(source -> target) = W1 + W2`` (Definition 3.4)."""
        if target == DRAIN:
            i = self._index(source)
            return self.drain_weight.get(i, 0.0)
        key = (self._index(source), self._index(target))
        return self.w1.get(key, 0.0) + self.w2.get(key, 0.0)

    def contains(self, pair: Pair) -> bool:
        """Return whether *pair* survived the reduction."""
        return pair in self.position

    # ------------------------------------------------------------------
    # Scores (Theorem 3.5)
    # ------------------------------------------------------------------
    def scores(self) -> dict[Pair, float]:
        """Return ``s_θ(u, v)`` for every surviving pair.

        Solves ``h = M h`` with ``h = 1`` on singleton pairs by fixed-point
        iteration (the operator is a ``c``-contraction) and multiplies by
        the semantic factor.  Pairs dropped by the reduction score 0 by
        definition.
        """
        singleton = np.array([pair[0] == pair[1] for pair in self.pairs])
        h = singleton.astype(np.float64)
        for _ in range(_max_fixpoint_iters(self.decay)):
            updated = self.transitions @ h
            updated[singleton] = 1.0
            if np.max(np.abs(updated - h)) < 1e-12:
                h = updated
                break
            h = updated
        return {
            pair: float(self.semantic[pair] * h[i])
            for i, pair in enumerate(self.pairs)
        }

    def score(self, u: Node, v: Node) -> float:
        """Return ``s_θ(u, v)`` (0 when the pair was reduced away)."""
        if (u, v) not in self.position:
            return 0.0
        return self.scores()[(u, v)]

    def singleton_path_stats(
        self,
        num_sources: int = 50,
        max_length: int = 6,
        max_paths_per_source: int = 10_000,
        seed: int | np.random.Generator | None = None,
    ) -> tuple[float, float]:
        """Estimate (avg #paths to singletons, avg path length) on ``G²_θ``.

        Mirrors :meth:`repro.hin.pair_graph.PairGraph.singleton_path_stats`
        so Table 3 can compare the two like-for-like; walks follow the
        reduced graph's surviving edges (direct + shortcut).
        """
        from repro.utils.rng import ensure_rng

        rng = ensure_rng(seed)
        non_singleton = [
            i for i, pair in enumerate(self.pairs) if pair[0] != pair[1]
        ]
        if not non_singleton:
            return 0.0, 0.0
        singleton = {
            i for i, pair in enumerate(self.pairs) if pair[0] == pair[1]
        }
        indptr = self.transitions.indptr
        indices = self.transitions.indices
        counts: list[int] = []
        lengths: list[int] = []
        for _ in range(num_sources):
            source = int(non_singleton[int(rng.integers(len(non_singleton)))])
            found = 0
            stack = [(source, 0)]
            while stack and found < max_paths_per_source:
                state, depth = stack.pop()
                if depth > 0 and state in singleton:
                    found += 1
                    lengths.append(depth)
                    continue
                if depth >= max_length:
                    continue
                for target in indices[indptr[state]:indptr[state + 1]]:
                    stack.append((int(target), depth + 1))
            counts.append(found)
        avg_paths = float(np.mean(counts)) if counts else 0.0
        avg_length = float(np.mean(lengths)) if lengths else 0.0
        return avg_paths, avg_length

    def _index(self, pair: Pair) -> int:
        try:
            return self.position[pair]
        except KeyError:
            raise NodeNotFoundError(pair) from None


def _max_fixpoint_iters(decay: float) -> int:
    """Iterations needed to push the geometric tail below 1e-12."""
    if decay <= 0:
        return 1
    return max(8, int(np.ceil(np.log(1e-13) / np.log(decay))) + 2)


def build_reduced_pair_graph(
    base: HIN,
    measure: SemanticMeasure,
    theta: float,
    decay: float,
) -> ReducedPairGraph:
    """Materialise ``G²_θ`` for *base* under *measure* (Definition 3.4).

    Quadratic in ``|V|`` (the full pair space is indexed) — intended for the
    small/medium instances on which the paper runs its exact computations.

    Notes
    -----
    * Singleton pairs always survive (``sem(x, x) = 1 > θ``) and have their
      out-edges pruned, as the paper licences, because only the surfers'
      first meeting contributes to a score.
    * The drain weight is computed literally per Definition 3.4 as the
      difference between a node's total out-weight in ``G²`` and in
      ``G²_θ``; because ``W2`` lives in probability space (the definition
      sums ``P[w]·c^{l(w)-1}``) the difference is clamped at 0 to guard
      floating-point underflow.
    """
    if not 0 < theta < 1:
        raise ConfigurationError(f"theta must lie in (0, 1), got {theta!r}")
    if not 0 < decay < 1:
        raise ConfigurationError(f"decay must lie in (0, 1), got {decay!r}")

    nodes = list(base.nodes())
    n = len(nodes)
    position = {node: i for i, node in enumerate(nodes)}
    sem = semantic_matrix(measure, nodes)

    state_count = n * n

    def state(i: int, j: int) -> int:
        return i * n + j

    # --- SARW transition matrix T and raw-weight matrix over the pair space.
    t_rows: list[int] = []
    t_cols: list[int] = []
    t_vals: list[float] = []
    w_vals: list[float] = []
    in_edges = {
        node: [(position[src], weight) for src, weight, _ in base.in_edges(node)]
        for node in nodes
    }
    for i, u in enumerate(nodes):
        for j, v in enumerate(nodes):
            if i == j:
                continue  # singleton out-edges are pruned
            edges_u = in_edges[u]
            edges_v = in_edges[v]
            if not edges_u or not edges_v:
                continue
            source = state(i, j)
            weights = []
            targets = []
            raw = []
            for a, wa in edges_u:
                for b, wb in edges_v:
                    product = wa * wb
                    weights.append(product * sem[a, b])
                    raw.append(product)
                    targets.append(state(a, b))
            total = float(np.sum(weights))
            if total <= 0:
                continue
            for target, weight, raw_weight in zip(targets, weights, raw):
                t_rows.append(source)
                t_cols.append(target)
                t_vals.append(weight / total)
                w_vals.append(raw_weight)
    transition = sp.csr_matrix(
        (t_vals, (t_rows, t_cols)), shape=(state_count, state_count)
    )
    raw_weights = sp.csr_matrix(
        (w_vals, (t_rows, t_cols)), shape=(state_count, state_count)
    )

    # --- Partition the pair space into kept (sem > θ) and omitted states.
    kept_mask = (sem > theta).reshape(-1)
    kept_states = np.flatnonzero(kept_mask)
    omitted_states = np.flatnonzero(~kept_mask)
    kept_index = {int(s): k for k, s in enumerate(kept_states)}

    scaled = transition.multiply(decay).tocsr()
    t_kk = scaled[kept_states][:, kept_states]
    t_ko = scaled[kept_states][:, omitted_states]
    t_ok = scaled[omitted_states][:, kept_states]
    t_oo = scaled[omitted_states][:, omitted_states]

    # --- Shortcut mass through omitted pairs: c·T_KO (I - c·T_OO)^-1 c·T_OK.
    if omitted_states.size and t_ko.nnz and t_ok.nnz:
        identity = sp.identity(omitted_states.size, format="csc")
        solver = spla.splu((identity - t_oo).tocsc())
        dense_rhs = t_ok.toarray()
        absorbed = solver.solve(dense_rhs)
        shortcut = sp.csr_matrix(t_ko @ absorbed)
        shortcut.data[np.abs(shortcut.data) < _WEIGHT_TOL] = 0.0
        shortcut.eliminate_zeros()
    else:
        shortcut = sp.csr_matrix((kept_states.size, kept_states.size))

    # --- Assemble the reduced structure.
    pairs: list[Pair] = []
    for s in kept_states:
        i, j = divmod(int(s), n)
        pairs.append((nodes[i], nodes[j]))
    pair_position = {pair: k for k, pair in enumerate(pairs)}
    semantic = {pair: float(sem[position[pair[0]], position[pair[1]]]) for pair in pairs}

    w1: dict[tuple[int, int], float] = {}
    direct = raw_weights[kept_states][:, kept_states].tocoo()
    for r, col, value in zip(direct.row, direct.col, direct.data):
        if value > _WEIGHT_TOL:
            w1[(int(r), int(col))] = float(value)

    w2: dict[tuple[int, int], float] = {}
    shortcut_coo = shortcut.tocoo()
    for r, col, value in zip(shortcut_coo.row, shortcut_coo.col, shortcut_coo.data):
        if value > _WEIGHT_TOL:
            w2[(int(r), int(col))] = float(value)

    # --- Drain weights: per-node out-weight deficit versus G² (clamped ≥ 0).
    full_out_weight = np.asarray(raw_weights.sum(axis=1)).reshape(-1)
    drain_weight: dict[int, float] = {}
    reduced_out = np.zeros(kept_states.size)
    for (r, _), value in w1.items():
        reduced_out[r] += value
    for (r, _), value in w2.items():
        reduced_out[r] += value
    for k, s in enumerate(kept_states):
        deficit = float(full_out_weight[int(s)]) - float(reduced_out[k])
        if deficit > _WEIGHT_TOL:
            drain_weight[k] = deficit

    transitions = (t_kk + shortcut).tocsr()

    return ReducedPairGraph(
        theta=theta,
        decay=decay,
        pairs=pairs,
        position=pair_position,
        w1=w1,
        w2=w2,
        drain_weight=drain_weight,
        transitions=transitions,
        semantic=semantic,
    )
