"""The Heterogeneous Information Network (HIN) graph type.

A HIN (Definition 2.1) is a directed graph ``G = (V, E, phi, psi, W)`` where
``phi`` labels vertices, ``psi`` labels edges, and ``W`` assigns each edge a
strictly positive weight.  When nothing is known about a relation's strength,
the weight defaults to 1 — exactly the convention the paper uses.

The class keeps both out- and in-adjacency in plain dictionaries, so the
neighbour queries that dominate SimRank-style computations (``I(v)``,
``O(v)``) are O(degree) with no per-call allocation surprises.  Iteration
order everywhere follows insertion order, which makes all downstream
stochastic computations reproducible for a fixed seed.

For vectorised engines, :meth:`HIN.index` produces a :class:`GraphIndex`
holding a stable node ordering plus numpy-ready adjacency arrays.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator

import numpy as np

from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    InvalidWeightError,
    NodeNotFoundError,
)

Node = Hashable

DEFAULT_NODE_LABEL = "entity"
DEFAULT_EDGE_LABEL = "related"
DEFAULT_WEIGHT = 1.0


class HIN:
    """A directed, weighted, vertex- and edge-labelled graph.

    Example
    -------
    >>> g = HIN()
    >>> g.add_node("aditi", label="author")
    >>> g.add_node("paul", label="author")
    >>> g.add_edge("paul", "aditi", weight=2.0, label="co-author")
    >>> g.in_neighbors("aditi")
    ('paul',)
    >>> g.edge_weight("paul", "aditi")
    2.0
    """

    def __init__(self) -> None:
        self._labels: dict[Node, str] = {}
        # out[u][v] = (weight, edge_label); inn[v][u] = (weight, edge_label)
        self._out: dict[Node, dict[Node, tuple[float, str]]] = {}
        self._in: dict[Node, dict[Node, tuple[float, str]]] = {}
        self._num_edges = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_node(self, node: Node, label: str = DEFAULT_NODE_LABEL) -> None:
        """Add *node* with a vertex label.

        Re-adding an existing node updates its label but keeps its edges.
        """
        if node not in self._labels:
            self._out[node] = {}
            self._in[node] = {}
        self._labels[node] = label

    def add_edge(
        self,
        source: Node,
        target: Node,
        weight: float = DEFAULT_WEIGHT,
        label: str = DEFAULT_EDGE_LABEL,
    ) -> None:
        """Add the directed edge ``source -> target``.

        Endpoints that do not exist yet are created with the default vertex
        label.  Adding an edge that already exists overwrites its weight and
        label (the model has no parallel edges).  Weights must be finite and
        strictly positive (``W : E -> R+`` in Definition 2.1).
        """
        if not (isinstance(weight, (int, float)) and math.isfinite(weight) and weight > 0):
            raise InvalidWeightError(
                f"edge weight must be a finite number > 0, got {weight!r} "
                f"for edge {source!r} -> {target!r}"
            )
        if source == target:
            raise GraphError(f"self-loop {source!r} -> {source!r} is not allowed")
        if source not in self._labels:
            self.add_node(source)
        if target not in self._labels:
            self.add_node(target)
        if target not in self._out[source]:
            self._num_edges += 1
        entry = (float(weight), label)
        self._out[source][target] = entry
        self._in[target][source] = entry

    def add_undirected_edge(
        self,
        a: Node,
        b: Node,
        weight: float = DEFAULT_WEIGHT,
        label: str = DEFAULT_EDGE_LABEL,
    ) -> None:
        """Add both ``a -> b`` and ``b -> a`` with identical weight and label.

        The paper treats symmetric relations (co-authorship, co-purchase) as
        a pair of antiparallel directed edges; this is the convenience for
        that encoding.
        """
        self.add_edge(a, b, weight=weight, label=label)
        self.add_edge(b, a, weight=weight, label=label)

    def remove_edge(self, source: Node, target: Node) -> None:
        """Remove the directed edge ``source -> target``."""
        if source not in self._out or target not in self._out[source]:
            raise EdgeNotFoundError(source, target)
        del self._out[source][target]
        del self._in[target][source]
        self._num_edges -= 1

    def remove_node(self, node: Node) -> None:
        """Remove *node* and every edge incident to it."""
        self._require(node)
        for target in list(self._out[node]):
            self.remove_edge(node, target)
        for source in list(self._in[node]):
            self.remove_edge(source, node)
        del self._out[node]
        del self._in[node]
        del self._labels[node]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __repr__(self) -> str:
        return f"HIN(nodes={self.num_nodes}, edges={self.num_edges})"

    @property
    def num_nodes(self) -> int:
        """Number of vertices ``|V|``."""
        return len(self._labels)

    @property
    def num_edges(self) -> int:
        """Number of directed edges ``|E|``."""
        return self._num_edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over vertices in insertion order."""
        return iter(self._labels)

    def edges(self) -> Iterator[tuple[Node, Node, float, str]]:
        """Iterate over edges as ``(source, target, weight, label)``."""
        for source, targets in self._out.items():
            for target, (weight, label) in targets.items():
                yield source, target, weight, label

    def node_label(self, node: Node) -> str:
        """Return the vertex label ``phi(node)``."""
        self._require(node)
        return self._labels[node]

    def has_edge(self, source: Node, target: Node) -> bool:
        """Return whether the directed edge ``source -> target`` exists."""
        return source in self._out and target in self._out[source]

    def edge_weight(self, source: Node, target: Node) -> float:
        """Return ``W(source, target)``."""
        try:
            return self._out[source][target][0]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def edge_label(self, source: Node, target: Node) -> str:
        """Return ``psi(source, target)``."""
        try:
            return self._out[source][target][1]
        except KeyError:
            raise EdgeNotFoundError(source, target) from None

    def in_neighbors(self, node: Node) -> tuple[Node, ...]:
        """Return ``I(node)``, the in-neighbour set, in insertion order."""
        self._require(node)
        return tuple(self._in[node])

    def out_neighbors(self, node: Node) -> tuple[Node, ...]:
        """Return ``O(node)``, the out-neighbour set, in insertion order."""
        self._require(node)
        return tuple(self._out[node])

    def in_degree(self, node: Node) -> int:
        """Return ``|I(node)|``."""
        self._require(node)
        return len(self._in[node])

    def out_degree(self, node: Node) -> int:
        """Return ``|O(node)|``."""
        self._require(node)
        return len(self._out[node])

    def in_edges(self, node: Node) -> Iterator[tuple[Node, float, str]]:
        """Iterate in-edges of *node* as ``(source, weight, label)``."""
        self._require(node)
        for source, (weight, label) in self._in[node].items():
            yield source, weight, label

    def out_edges(self, node: Node) -> Iterator[tuple[Node, float, str]]:
        """Iterate out-edges of *node* as ``(target, weight, label)``."""
        self._require(node)
        for target, (weight, label) in self._out[node].items():
            yield target, weight, label

    def nodes_with_label(self, label: str) -> list[Node]:
        """Return every vertex whose label equals *label*, in insertion order."""
        return [node for node, node_label in self._labels.items() if node_label == label]

    def average_in_degree(self) -> float:
        """Return the average in-degree ``d`` used in the complexity bounds."""
        if not self._labels:
            return 0.0
        return self._num_edges / len(self._labels)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "HIN":
        """Return a new HIN with every edge direction flipped.

        The random-surfer interpretation (Section 3) walks the *reversed*
        graph; having an explicit reversal keeps that code literal.
        """
        reversed_graph = HIN()
        for node, label in self._labels.items():
            reversed_graph.add_node(node, label)
        for source, target, weight, label in self.edges():
            reversed_graph.add_edge(target, source, weight=weight, label=label)
        return reversed_graph

    def subgraph(self, nodes: Iterable[Node]) -> "HIN":
        """Return the induced subgraph on *nodes* (labels and weights kept)."""
        keep = set(nodes)
        missing = keep - set(self._labels)
        if missing:
            raise NodeNotFoundError(next(iter(missing)))
        sub = HIN()
        for node in self._labels:
            if node in keep:
                sub.add_node(node, self._labels[node])
        for source, target, weight, label in self.edges():
            if source in keep and target in keep:
                sub.add_edge(source, target, weight=weight, label=label)
        return sub

    def copy(self) -> "HIN":
        """Return a deep structural copy of this graph.

        Unlike :meth:`subgraph` (which re-inserts edges source-major), the
        copy preserves the insertion order of every adjacency dict: in-list
        order determines the walk tensor's bit layout, so an
        order-normalising copy would silently decouple a copied graph from
        walks sampled on the original.
        """
        dup = HIN()
        dup._labels = dict(self._labels)
        dup._out = {node: dict(targets) for node, targets in self._out.items()}
        dup._in = {node: dict(sources) for node, sources in self._in.items()}
        dup._num_edges = self._num_edges
        return dup

    def edges_with_label(self, label: str) -> list[tuple[Node, Node, float]]:
        """Return every edge carrying *label* as ``(source, target, weight)``."""
        return [
            (source, target, weight)
            for source, target, weight, edge_label in self.edges()
            if edge_label == label
        ]

    # ------------------------------------------------------------------
    # Vectorisation support
    # ------------------------------------------------------------------
    def index(self) -> "GraphIndex":
        """Build a :class:`GraphIndex` snapshot for numpy-based engines."""
        return GraphIndex.from_graph(self)

    def _require(self, node: Node) -> None:
        if node not in self._labels:
            raise NodeNotFoundError(node)


@dataclass
class GraphIndex:
    """An immutable numeric snapshot of a :class:`HIN`.

    Attributes
    ----------
    nodes:
        Node identifiers in a stable order; position == numeric id.
    position:
        Inverse mapping ``node -> numeric id``.
    in_lists:
        ``in_lists[v]`` is an int array of in-neighbour ids of node ``v``.
    in_weights:
        ``in_weights[v][k]`` is the weight of the edge
        ``in_lists[v][k] -> v``.
    """

    nodes: list[Node]
    position: dict[Node, int]
    in_lists: list[np.ndarray]
    in_weights: list[np.ndarray]
    labels: list[str] = field(default_factory=list)

    @classmethod
    def from_graph(cls, graph: HIN) -> "GraphIndex":
        """Snapshot *graph* into numeric arrays (insertion-order ids)."""
        nodes = list(graph.nodes())
        position = {node: i for i, node in enumerate(nodes)}
        in_lists: list[np.ndarray] = []
        in_weights: list[np.ndarray] = []
        for node in nodes:
            sources = []
            weights = []
            for source, weight, _ in graph.in_edges(node):
                sources.append(position[source])
                weights.append(weight)
            in_lists.append(np.asarray(sources, dtype=np.int64))
            in_weights.append(np.asarray(weights, dtype=np.float64))
        labels = [graph.node_label(node) for node in nodes]
        return cls(nodes, position, in_lists, in_weights, labels)

    @property
    def num_nodes(self) -> int:
        """Number of indexed nodes."""
        return len(self.nodes)

    def weighted_in_adjacency(self) -> np.ndarray:
        """Return the dense matrix ``W`` with ``W[a, v] = W(a -> v)``.

        The SimRank/SemSim all-pairs update is then a sandwich product
        ``W.T @ R @ W`` (see :mod:`repro.core.iterative`).
        """
        n = self.num_nodes
        matrix = np.zeros((n, n), dtype=np.float64)
        for v in range(n):
            sources = self.in_lists[v]
            if sources.size:
                matrix[sources, v] = self.in_weights[v]
        return matrix
