"""``repro.store`` — content-addressed persistence for query engines.

The paper's Section 4 pipeline is preprocess-once / query-many; this
package makes the "once" literal across processes.  Artifacts (walk
tensors, proposal tables, semantic and ``SO`` matrices, iterative score
tables) are written once under a content hash of *everything that shaped
them* — graph, measure, canonical parameters, format version — and opened
with ``np.load(mmap_mode="r")``: zero copies, lazily paged, and shared
through the OS page cache by any number of reader processes.

Layers
------
:mod:`repro.store.fingerprint`
    content hashes and the manifest key;
:mod:`repro.store.artifacts`
    the artifact directory format, atomic writes, fail-closed reads, and
    the :class:`ArtifactStore` cache;
:mod:`repro.store.engine_io`
    snapshot/restore of :class:`repro.api.QueryEngine` state;
:mod:`repro.store.walk_io`
    the portable single-file ``.npz`` walk-tensor format;
:mod:`repro.store.sharding`
    node-range shard plans and per-range shard artifacts for the
    multi-process serving runtime (:mod:`repro.sched.sharded`);
:mod:`repro.store.hooks`
    the injectable I/O seam every disk-touching entry point gates on,
    which is what makes the failure paths deterministically testable
    (see :mod:`repro.testing.faults`).
"""

from repro.store.artifacts import (
    ArtifactStore,
    StoredArtifact,
    StoreError,
    read_artifact,
    write_artifact,
)
from repro.store.fingerprint import (
    FORMAT_VERSION,
    fingerprint_graph,
    fingerprint_measure,
    manifest_key,
)
from repro.store.hooks import io_gate, io_hook_installed, set_io_hook
from repro.store.sharding import (
    ShardPlan,
    parent_fingerprint,
    shard_dir_name,
    shard_paths_for,
    validate_shard_set,
    validate_shardable,
    write_shard_artifacts,
)
from repro.store.walk_io import WALK_FORMAT_VERSION, load_walks_npz, save_walks_npz

__all__ = [
    "ShardPlan",
    "parent_fingerprint",
    "shard_dir_name",
    "shard_paths_for",
    "validate_shard_set",
    "validate_shardable",
    "write_shard_artifacts",
    "ArtifactStore",
    "StoredArtifact",
    "StoreError",
    "read_artifact",
    "write_artifact",
    "FORMAT_VERSION",
    "fingerprint_graph",
    "fingerprint_measure",
    "manifest_key",
    "WALK_FORMAT_VERSION",
    "load_walks_npz",
    "save_walks_npz",
    "io_gate",
    "io_hook_installed",
    "set_io_hook",
]
