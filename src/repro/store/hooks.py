"""Injectable I/O seams for the persistence layer.

Every disk-touching entry point of :mod:`repro.store` calls
:func:`io_gate` with a stable operation name before doing real I/O:

``"artifact.read"`` / ``"artifact.write"``
    :func:`repro.store.artifacts.read_artifact` / ``write_artifact``
    (and therefore every :class:`~repro.store.artifacts.ArtifactStore`
    get/put);
``"walks.load"`` / ``"walks.save"``
    :func:`repro.store.walk_io.load_walks_npz` / ``save_walks_npz``.

By default the gate is free (one module attribute read and a ``None``
check).  Tests install a hook — see
:class:`repro.testing.faults.FaultInjector` — that can raise ``OSError``
(an injected ``EIO``), add latency against a virtual clock, or skew the
clock, turning "what if the disk flakes here?" into a deterministic,
schedulable event instead of luck.  Production code never installs a
hook; the seam exists so failure paths are testable, not configurable.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, Optional

#: Hook signature: ``hook(operation, path)``.  Raising aborts the I/O
#: operation exactly as a real failure at that point would.
IoHook = Callable[[str, Path], None]

#: The operation names the store layers gate on, in one place so tests
#: and documentation cannot drift from the call sites.
OPERATIONS = (
    "artifact.read",
    "artifact.write",
    "walks.load",
    "walks.save",
)

_hook: Optional[IoHook] = None


def set_io_hook(hook: IoHook | None) -> IoHook | None:
    """Install *hook* on every store I/O seam; returns the previous hook.

    Pass ``None`` to clear.  Installation is process-global (the seams
    guard real I/O, which is process-global too); callers are expected to
    restore the previous hook — :class:`repro.testing.faults.FaultInjector`
    does this as a context manager.
    """
    global _hook
    previous = _hook
    _hook = hook
    return previous


def io_hook_installed() -> bool:
    """Return whether any I/O hook is currently installed."""
    return _hook is not None


def io_gate(operation: str, path: str | Path) -> None:
    """Give the installed hook (if any) a chance to interfere with one I/O op.

    Called by the store layers immediately before real disk work.  A hook
    that raises makes the operation fail exactly as the equivalent OS
    error would; a hook that returns lets the operation proceed.
    """
    hook = _hook
    if hook is not None:
        hook(operation, Path(path))
