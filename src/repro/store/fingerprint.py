"""Content fingerprints for artifact-cache keys.

An on-disk artifact is only reusable when *everything* that shaped it is
unchanged: the graph (nodes, edges, weights, labels), the semantic measure,
the engine parameters and the artifact format itself.  This module turns
each of those into a stable hex digest; :func:`manifest_key` combines them
into the content address an :class:`~repro.store.artifacts.ArtifactStore`
files the artifact under.

Fingerprints are **content** hashes, not identity hashes: two `HIN`
instances built from the same edge list produce the same digest, and adding
a single edge (ProbeSim's invalidation concern — see PAPERS.md) changes it.
Floats are hashed through :func:`repr`, so any representable change in a
weight or IC value invalidates the key.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

import numpy as np

from repro.hin.graph import HIN

#: Bump whenever the on-disk artifact layout changes incompatibly.
FORMAT_VERSION = 1

_HASH_NAME = "sha256"


def _digest(parts: list) -> str:
    """Hash a JSON-serialisable structure into a hex digest."""
    payload = json.dumps(parts, sort_keys=True, default=str).encode("utf-8")
    return hashlib.new(_HASH_NAME, payload).hexdigest()


def fingerprint_graph(graph: HIN) -> str:
    """Return a content hash of *graph*: nodes, labels, edges, weights.

    Node identifiers are hashed through ``str()``, matching the convention
    of every persistence path in the library (see
    :func:`repro.core.walk_index.save_walk_index`).  Insertion order is part
    of the content — it determines numeric node ids and therefore every
    stored array.
    """
    nodes = [[str(node), graph.node_label(node)] for node in graph.nodes()]
    edges = [
        [str(source), str(target), repr(weight), label]
        for source, target, weight, label in graph.edges()
    ]
    return _digest(["hin", nodes, edges])


def fingerprint_measure(measure: object | None) -> str:
    """Return a content hash identifying a semantic measure.

    Resolution order:

    1. ``None`` — the no-semantics (plain SimRank) marker;
    2. a ``content_fingerprint()`` method on the measure, for custom
       measures that know their own content;
    3. a dense matrix (``nodes`` + ``matrix`` attributes, i.e.
       :class:`~repro.semantics.cache.MatrixMeasure`) — hashed by value;
    4. a caching wrapper (``inner`` attribute) — delegates to the inner
       measure so memo state never affects the key;
    5. a taxonomy-backed measure (``taxonomy`` + ``ic`` attributes, the
       Lin/Resnik/Jiang-Conrath family) — hashed from the hierarchy, the IC
       table and the measure's scalar configuration;
    6. anything else — hashed from the class name and its public scalar
       attributes, which is best-effort: measures whose behaviour depends
       on state this cannot see should implement ``content_fingerprint``.
    """
    if measure is None:
        return _digest(["measure", "none"])
    fingerprint = getattr(measure, "content_fingerprint", None)
    if callable(fingerprint):
        return _digest(["measure", "custom", str(fingerprint())])
    nodes = getattr(measure, "nodes", None)
    matrix = getattr(measure, "matrix", None)
    if nodes is not None and isinstance(matrix, np.ndarray):
        digest = hashlib.new(_HASH_NAME)
        digest.update(json.dumps([str(node) for node in nodes]).encode("utf-8"))
        digest.update(str(matrix.shape).encode("utf-8"))
        digest.update(np.ascontiguousarray(matrix).tobytes())
        return _digest(["measure", "matrix", digest.hexdigest()])
    inner = getattr(measure, "inner", None)
    if inner is not None:
        return fingerprint_measure(inner)
    qualname = type(measure).__qualname__
    taxonomy = getattr(measure, "taxonomy", None)
    ic = getattr(measure, "ic", None)
    if taxonomy is not None and isinstance(ic, Mapping):
        edges = sorted(
            [str(child), str(parent)]
            for child in taxonomy.concepts()
            for parent in taxonomy.parents(child)
        )
        concepts = sorted(str(concept) for concept in taxonomy.concepts())
        ic_items = sorted([str(k), repr(float(v))] for k, v in ic.items())
        return _digest(
            ["measure", "taxonomy", qualname, concepts, edges, ic_items,
             _scalar_attributes(measure)]
        )
    return _digest(["measure", "generic", qualname, _scalar_attributes(measure)])


def _scalar_attributes(measure: object) -> list:
    """Public scalar configuration of a measure, in sorted order."""
    attributes = []
    for name, value in sorted(vars(measure).items()):
        if name.startswith("_"):
            continue
        if isinstance(value, float):
            attributes.append([name, repr(value)])
        elif isinstance(value, (bool, int, str)):
            attributes.append([name, repr(value)])
    return attributes


def manifest_key(
    *,
    method: str,
    graph_fingerprint: str,
    measure_fingerprint: str,
    params: Mapping[str, object],
    format_version: int = FORMAT_VERSION,
) -> str:
    """Combine the identity of one engine configuration into a cache key.

    *params* must already be canonical (validated values from
    :mod:`repro.core.params`); every entry participates in the key, so a
    changed ``theta`` or ``seed`` addresses a different artifact.
    """
    canonical = {name: repr(value) for name, value in sorted(params.items())}
    return _digest(
        [
            "repro-engine-artifact",
            format_version,
            method,
            graph_fingerprint,
            measure_fingerprint,
            canonical,
        ]
    )
