"""Snapshot/restore glue between :class:`repro.api.QueryEngine` and the store.

A *snapshot* captures everything a query needs that is expensive to
recompute — exactly the preprocess-once half of the paper's Fig. 4 split:

``method="mc"``
    the walk tensor, the CSR proposal tables of ``Q``, the materialised
    semantic matrix, the dense ``SO = W·sem·Wᵀ`` table and the per-step
    ``W``/``Q`` gather tables of the batch path;
``method="iterative"``
    the converged all-pairs score table (plus the semantic matrix when one
    was materialised);
``method="lowrank"``
    the rank-r factor matrix, its eigenvalues and the diagonal correction
    (plus the semantic matrix) — the O(n·r) state that replaces the N×N
    table;
``method="linear"``
    just the graph and the semantic matrix — the per-query solver owns no
    offline tables.

The serialised graph rides along as a JSON document, so an artifact is
self-contained: :meth:`repro.api.QueryEngine.open` needs nothing but the
path.  Snapshots force the lazy preprocessing tables before writing, which
makes *save* the preprocessing step and *open* a pure mmap — the arrays the
warm engine reads are the very bytes the cold engine computed, which is
what makes warm scores bit-identical to fresh ones.

This module never imports :mod:`repro.api` (the engine reaches down, the
store never reaches up); everything here duck-types off engine attributes.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.errors import ConfigurationError
from repro.hin.graph import HIN
from repro.hin.io import hin_from_dict, hin_to_dict
from repro.semantics.cache import MatrixMeasure
from repro.store.artifacts import StoredArtifact, StoreError
from repro.store.fingerprint import (
    fingerprint_graph,
    fingerprint_measure,
    manifest_key,
)

#: Array names of the CSR proposal tables, in ``_TransitionTables`` order.
PROPOSAL_ARRAYS = (
    ("proposal_indptr", "indptr"),
    ("proposal_targets", "targets"),
    ("proposal_cumprob", "aug_cumprob"),
    ("proposal_degrees", "degrees"),
    ("proposal_weight_sums", "weight_sums"),
)


def canonical_params(
    *,
    method: str,
    decay: float,
    num_walks: int,
    length: int,
    theta: float | None,
    policy: str,
    seed: int | None,
    materialized: bool,
    max_iterations: int | None,
    tolerance: float | None,
    rank: int | None = None,
    max_states: int | None = None,
) -> dict:
    """The parameter set that identifies one engine configuration.

    Method-specific knobs are dropped for the other methods so an
    irrelevant default can never split the cache.
    """
    params: dict[str, object] = {
        "method": method,
        "decay": decay,
        "theta": theta,
        "materialized": materialized,
    }
    if method == "mc":
        params.update(
            num_walks=num_walks, length=length, policy=policy,
            seed="none" if seed is None else int(seed),
        )
    elif method == "lowrank":
        params.update(
            rank="default" if rank is None else int(rank),
            seed="none" if seed is None else int(seed),
            tolerance="default" if tolerance is None else float(tolerance),
        )
    elif method == "linear":
        params.update(
            max_iterations="default" if max_iterations is None else int(max_iterations),
            tolerance="default" if tolerance is None else float(tolerance),
            max_states="default" if max_states is None else int(max_states),
        )
    else:
        params.update(
            max_iterations="default" if max_iterations is None else int(max_iterations),
            tolerance="default" if tolerance is None else float(tolerance),
        )
    return params


def engine_identity(
    graph: HIN, measure: object | None, params: Mapping[str, object]
) -> tuple[str, dict]:
    """Return ``(key, identity)`` for one (graph, measure, params) triple.

    *measure* must be the measure as the caller supplied it (pre-
    materialisation), so a cold build and a later warm lookup agree.
    """
    graph_fp = fingerprint_graph(graph)
    measure_fp = fingerprint_measure(measure)
    key = manifest_key(
        method=str(params["method"]),
        graph_fingerprint=graph_fp,
        measure_fingerprint=measure_fp,
        params=params,
    )
    identity = {
        "method": params["method"],
        "graph": graph_fp,
        "measure": measure_fp,
        "params": {name: repr(value) for name, value in sorted(params.items())},
    }
    return key, identity


def snapshot_engine(engine, identity: dict) -> tuple[dict, dict, dict]:
    """Capture one engine as ``(manifest, arrays, documents)``.

    Forces every lazy preprocessing table first, so opening the snapshot
    never recomputes anything.  Raises :class:`ConfigurationError` for
    configurations that cannot round-trip (a ``pair_index``, or a
    non-materialised semantic measure the artifact could not replay).
    """
    if getattr(engine, "pair_index", None) is not None:
        raise ConfigurationError(
            "engines holding an external pair_index cannot be persisted — "
            "the index is not part of the artifact"
        )
    if engine.measure is not None and not isinstance(engine.measure, MatrixMeasure):
        raise ConfigurationError(
            "persisting an engine requires a materialised semantic measure "
            "(pass materialize_semantics=True) or no measure at all; got "
            f"{type(engine.measure).__name__}"
        )
    arrays: dict[str, np.ndarray] = {}
    meta: dict[str, object] = {
        "params": _json_params(engine, identity),
        "graph_nodes": engine.graph.num_nodes,
        "graph_edges": engine.graph.num_edges,
    }
    if engine.method == "mc":
        walk_index = engine.walk_index
        arrays["walks"] = walk_index.walks
        tables = walk_index.tables
        for array_name, attribute in PROPOSAL_ARRAYS:
            arrays[array_name] = getattr(tables, attribute)
        estimator = engine.estimator
        if engine.measure is not None:
            arrays["sem_matrix"] = engine.measure.matrix
            estimator._ensure_so_matrix()
            estimator._ensure_step_tables()
            arrays["so_matrix"] = estimator._so_matrix
            arrays["step_weights"] = estimator._step_weights
            arrays["step_q"] = estimator._step_q
    elif engine.method == "lowrank":
        estimator = engine.estimator
        arrays["lowrank_factors"] = estimator.factors
        arrays["lowrank_eigenvalues"] = estimator.eigenvalues
        arrays["lowrank_diag"] = estimator.diag
        if engine.measure is not None:
            arrays["sem_matrix"] = engine.measure.matrix
        meta["rank"] = estimator.rank
        meta["terms"] = estimator.terms
        meta["exact_diagonal"] = bool(estimator.exact_diagonal)
    elif engine.method == "linear":
        # The per-query solver has no offline tables: the embedded graph
        # (plus the semantic matrix) is the whole warm-start state.
        if engine.measure is not None:
            arrays["sem_matrix"] = engine.measure.matrix
    else:
        result = engine._table.result
        arrays["scores"] = result.matrix
        if engine.measure is not None:
            arrays["sem_matrix"] = engine.measure.matrix
        meta["iterations"] = result.trace.iterations
        meta["converged"] = bool(result.converged)
    try:
        documents = {"graph": hin_to_dict(engine.graph)}
    except TypeError as exc:
        raise StoreError(
            f"graph node identifiers are not JSON-serialisable: {exc}"
        ) from None
    manifest = dict(identity)
    manifest["meta"] = meta
    lineage = getattr(engine, "mutation_lineage", None)
    if callable(lineage):
        lineage = lineage()
    if lineage:
        # Versioned generations: the parent graph's fingerprint plus the
        # hash of the mutation log that produced this one make the chain of
        # index generations content-addressable.
        manifest["lineage"] = lineage
    return manifest, arrays, documents


def _json_params(engine, identity: dict) -> dict:
    """Engine constructor parameters, JSON-typed, for replay by ``open()``."""
    params: dict[str, object] = {
        "method": engine.method,
        "decay": engine.decay,
        "theta": engine.theta,
    }
    if engine.method == "mc":
        params.update(
            num_walks=engine.num_walks,
            length=engine.length,
            policy=engine.policy.value,
            seed=engine._seed_key,
        )
    elif engine.method == "lowrank":
        params.update(
            rank=engine.rank,
            seed=engine._seed_key,
            tolerance=engine._tolerance,
        )
    elif engine.method == "linear":
        params.update(
            max_iterations=engine._max_iterations,
            tolerance=engine._tolerance,
            max_states=engine._max_states,
        )
    else:
        params.update(
            max_iterations=engine._max_iterations,
            tolerance=engine._tolerance,
        )
    return params


def graph_from_artifact(artifact: StoredArtifact) -> HIN:
    """Rebuild and integrity-check the graph stored inside *artifact*."""
    document = artifact.documents.get("graph")
    if document is None:
        raise StoreError(f"artifact at {artifact.path} stores no graph document")
    graph = hin_from_dict(document)
    expected = artifact.manifest.get("graph")
    if expected is not None and fingerprint_graph(graph) != expected:
        raise StoreError(
            f"graph document at {artifact.path} does not match the manifest's "
            f"graph fingerprint — artifact is corrupt or was tampered with"
        )
    return graph


def measure_from_artifact(artifact: StoredArtifact, graph: HIN) -> MatrixMeasure | None:
    """Rebuild the materialised measure stored inside *artifact* (if any)."""
    sem_matrix = artifact.arrays.get("sem_matrix")
    if sem_matrix is None:
        return None
    return MatrixMeasure(list(graph.nodes()), sem_matrix)
