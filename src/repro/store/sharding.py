"""Node-range sharding of persisted MC engines — the store half.

A *shard plan* cuts the node axis ``[0, n)`` into contiguous ranges; a
*shard artifact* is an ordinary content-addressed artifact (same
``manifest.json`` + ``.npy`` layout, same atomic write and fail-closed
read) holding the **candidate-side** slice of one range:

``walks[lo:hi]``, ``step_weights[lo:hi]``, ``step_q[lo:hi]``
    the ``O(n · n_w · t)`` tensors that dominate index size — genuinely
    split, each row lives in exactly one shard;
``sem_matrix``, ``so_matrix``
    replicated whole into every shard.  The walk-score kernel indexes
    them by the *global* node ids recorded inside the walk tensor, and
    they are ``O(n²)`` lookups shared by every range — the documented
    cost of keeping shards self-contained.

The parent's identity fields (``method``/``graph``/``measure``/
``params``) are copied verbatim and a ``shard`` section is added to the
manifest — ``{"index", "num_shards", "lo", "hi", "plan", "parent"}`` —
so a shard is self-describing: :mod:`repro.sched.shard_worker` can open
one by path alone, and routing layers can rebuild the full
:class:`ShardPlan` from any single shard.

Source-side rows (``walks[u]`` etc. for arbitrary query nodes) are *not*
duplicated: the router reads them from the parent artifact's mmap and
ships them with requests (see :mod:`repro.sched.sharded`).

Only ``method="mc"`` artifacts shard — the iterative engine is a dense
``(n, n)`` score table with no per-node working set to split.
"""

from __future__ import annotations

import hashlib
import json
from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path

from repro.store.artifacts import StoredArtifact, StoreError, read_artifact, write_artifact

#: Array names sliced by node range into each shard (when present).
SLICED_ARRAYS = ("walks", "step_weights", "step_q")

#: Array names replicated whole into each shard (when present).
REPLICATED_ARRAYS = ("sem_matrix", "so_matrix")


@dataclass(frozen=True)
class ShardPlan:
    """Contiguous node-range partition of ``[0, num_nodes)``.

    Boundaries are half-open ``(lo, hi)`` ranges, ascending, gapless and
    non-empty — validated at construction, so every node position has
    exactly one :meth:`owner`.
    """

    num_nodes: int
    boundaries: tuple[tuple[int, int], ...]

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise StoreError(f"shard plan needs num_nodes >= 1, got {self.num_nodes}")
        if not self.boundaries:
            raise StoreError("shard plan needs at least one shard")
        cursor = 0
        for index, (lo, hi) in enumerate(self.boundaries):
            if lo != cursor:
                raise StoreError(
                    f"shard {index} starts at {lo}, expected {cursor} — "
                    "ranges must be contiguous and ascending"
                )
            if hi <= lo:
                raise StoreError(f"shard {index} range [{lo}, {hi}) is empty")
            cursor = hi
        if cursor != self.num_nodes:
            raise StoreError(
                f"shard ranges cover [0, {cursor}) but the index has "
                f"{self.num_nodes} nodes"
            )
        # owner() bisects on the range starts; precompute once.
        object.__setattr__(self, "_starts", tuple(lo for lo, _ in self.boundaries))

    @classmethod
    def even(cls, num_nodes: int, num_shards: int) -> "ShardPlan":
        """Near-equal contiguous split (first ``n % s`` shards one longer)."""
        if num_shards < 1:
            raise StoreError(f"num_shards must be >= 1, got {num_shards}")
        if num_shards > num_nodes:
            raise StoreError(
                f"cannot cut {num_nodes} nodes into {num_shards} non-empty shards"
            )
        base, extra = divmod(num_nodes, num_shards)
        boundaries = []
        lo = 0
        for index in range(num_shards):
            hi = lo + base + (1 if index < extra else 0)
            boundaries.append((lo, hi))
            lo = hi
        return cls(num_nodes, tuple(boundaries))

    @classmethod
    def from_boundaries(cls, num_nodes: int, boundaries) -> "ShardPlan":
        """Build a (possibly uneven) plan from explicit ``(lo, hi)`` pairs."""
        return cls(num_nodes, tuple((int(lo), int(hi)) for lo, hi in boundaries))

    @classmethod
    def from_manifest(cls, manifest: dict) -> "ShardPlan":
        """Recover the full plan recorded in any one shard's manifest."""
        shard = manifest.get("shard")
        if not isinstance(shard, dict) or "plan" not in shard:
            raise StoreError("manifest carries no shard section — not a shard artifact")
        plan = [(int(lo), int(hi)) for lo, hi in shard["plan"]]
        return cls(plan[-1][1], tuple(plan))

    @property
    def num_shards(self) -> int:
        return len(self.boundaries)

    def owner(self, position: int) -> int:
        """Index of the shard whose range contains node *position*."""
        if not 0 <= position < self.num_nodes:
            raise StoreError(
                f"node position {position} outside [0, {self.num_nodes})"
            )
        return bisect_right(self._starts, position) - 1

    def as_json(self) -> dict:
        return {
            "num_nodes": self.num_nodes,
            "boundaries": [[lo, hi] for lo, hi in self.boundaries],
        }


def shard_dir_name(index: int) -> str:
    """Directory name of shard *index* under a shard-set root."""
    return f"shard-{index:04d}"


def parent_fingerprint(parent: StoredArtifact) -> str:
    """Content identity of *parent* as recorded by its own manifest.

    Derived from the per-array sha256 digests plus the identity sections
    (``params``/``method``/``graph``/``measure``), so it changes whenever
    the parent is rebuilt with different content — different walks, seed,
    or graph — **without** faulting in a single array page.  Shard
    manifests record it at split time (``shard.parent_digest``) and
    :func:`validate_shard_set` compares it before an existing shard set
    is reused, so a rebuilt index can never be served from the previous
    build's shards.
    """
    payload = {
        "arrays": {
            name: spec["sha256"]
            for name, spec in sorted(parent.manifest.get("arrays", {}).items())
        },
        "identity": {
            name: parent.manifest.get(name)
            for name in ("method", "graph", "measure", "params")
        },
    }
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True).encode("utf-8")
    ).hexdigest()


def _shard_manifest(parent: StoredArtifact, plan: ShardPlan, index: int) -> dict:
    lo, hi = plan.boundaries[index]
    manifest = {
        name: parent.manifest[name]
        for name in ("method", "graph", "measure", "params", "meta")
        if name in parent.manifest
    }
    manifest["shard"] = {
        "index": index,
        "num_shards": plan.num_shards,
        "lo": lo,
        "hi": hi,
        "plan": [[b_lo, b_hi] for b_lo, b_hi in plan.boundaries],
        "parent": str(parent.path),
        "parent_digest": parent_fingerprint(parent),
    }
    return manifest


def validate_shardable(parent: StoredArtifact) -> None:
    """Raise :class:`StoreError` unless *parent* can be range-sharded."""
    params = parent.meta.get("params") if isinstance(parent.meta, dict) else None
    method = params.get("method") if isinstance(params, dict) else None
    if method != "mc":
        raise StoreError(
            f"only method='mc' artifacts shard by node range, got "
            f"method={method!r} — the iterative score table has no "
            "per-node working set to split"
        )
    if "walks" not in parent.arrays:
        raise StoreError(f"artifact at {parent.path} stores no walk tensor")
    if "sem_matrix" in parent.arrays:
        missing = [
            name
            for name in ("so_matrix", "step_weights", "step_q")
            if name not in parent.arrays
        ]
        if missing:
            raise StoreError(
                f"semantic artifact at {parent.path} is missing precomputed "
                f"tables {missing} — rebuild it before sharding"
            )


def write_shard_artifacts(
    parent: "StoredArtifact | str | Path",
    out_dir: "str | Path",
    plan: "ShardPlan | int",
) -> list[Path]:
    """Split *parent* into per-range shard artifacts under *out_dir*.

    *plan* may be a ready :class:`ShardPlan` or a shard count (even
    split).  Each shard is written atomically to
    ``out_dir/shard-NNNN``; the list of shard paths is returned in plan
    order.  Slices come straight off the parent's mmap'd arrays — the
    split re-reads nothing it does not write.
    """
    if not isinstance(parent, StoredArtifact):
        parent = read_artifact(Path(parent))
    validate_shardable(parent)
    num_nodes = int(parent.arrays["walks"].shape[0])
    if isinstance(plan, int):
        plan = ShardPlan.even(num_nodes, plan)
    if plan.num_nodes != num_nodes:
        raise StoreError(
            f"shard plan covers {plan.num_nodes} nodes but the walk tensor "
            f"has {num_nodes} rows"
        )
    out_root = Path(out_dir)
    out_root.mkdir(parents=True, exist_ok=True)
    paths: list[Path] = []
    for index, (lo, hi) in enumerate(plan.boundaries):
        arrays = {
            name: parent.arrays[name][lo:hi]
            for name in SLICED_ARRAYS
            if name in parent.arrays
        }
        arrays.update(
            (name, parent.arrays[name])
            for name in REPLICATED_ARRAYS
            if name in parent.arrays
        )
        path = out_root / shard_dir_name(index)
        write_artifact(
            path,
            _shard_manifest(parent, plan, index),
            arrays,
            documents=dict(parent.documents),
        )
        paths.append(path)
    return paths


def shard_paths_for(out_dir: "str | Path", num_shards: int) -> list[Path]:
    """The canonical shard paths a ``write_shard_artifacts`` run produced."""
    root = Path(out_dir)
    return [root / shard_dir_name(index) for index in range(num_shards)]


def validate_shard_set(
    paths: "list[Path]", parent: "StoredArtifact | str | Path"
) -> None:
    """Raise :class:`StoreError` unless *paths* is a complete shard set of
    *parent* as it exists **now**.

    Checks every shard in plan order: it opens and structurally validates
    (missing/corrupt artifacts fail closed via :func:`read_artifact`),
    carries shard metadata with the expected index and count, and its
    recorded ``parent_digest`` matches :func:`parent_fingerprint` of the
    current parent.  A parent rebuilt with different walks or parameters
    — or a shard set written before digests were recorded — therefore
    fails validation and must be re-split; serving it would silently
    break the sharded-vs-unsharded bit-identity guarantee.
    """
    if not isinstance(parent, StoredArtifact):
        parent = read_artifact(Path(parent))
    expected = parent_fingerprint(parent)
    for index, path in enumerate(paths):
        artifact = read_artifact(Path(path))
        shard = artifact.manifest.get("shard")
        if not isinstance(shard, dict):
            raise StoreError(
                f"artifact at {path} carries no shard metadata — not a "
                "shard artifact"
            )
        if shard.get("index") != index or shard.get("num_shards") != len(paths):
            raise StoreError(
                f"shard artifact at {path} is shard "
                f"{shard.get('index')}/{shard.get('num_shards')}, expected "
                f"{index}/{len(paths)}"
            )
        if shard.get("parent_digest") != expected:
            raise StoreError(
                f"shard artifact at {path} was split from a different build "
                f"of the parent index (digest "
                f"{shard.get('parent_digest')!r} != {expected!r}) — re-run "
                "the split so served scores stay bit-identical to the index"
            )
