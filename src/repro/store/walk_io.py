"""Versioned ``.npz`` persistence for walk tensors.

This is the portable single-file cousin of the directory artifacts in
:mod:`repro.store.artifacts`: one compressed ``.npz`` holding the walk
tensor plus a JSON metadata record (format marker, version, sampling
parameters, node order).  :func:`repro.core.walk_index.save_walk_index` /
``load_walk_index`` are thin shims over these functions.

Loading **fails closed**: a truncated or corrupt file, a missing array or
metadata key, an unknown format or version, or a tensor whose shape
disagrees with its own metadata all raise
:class:`~repro.errors.GraphError` with a message naming the problem —
never a leaked ``KeyError``/``ValueError`` and never a silently wrong
index.  (Matching the payload against a live graph is the caller's job;
the loader only guarantees internal consistency.)
"""

from __future__ import annotations

import json
import zipfile
from pathlib import Path

import numpy as np

from repro.errors import GraphError
from repro.obs.registry import get_registry, is_enabled
from repro.obs.trace import span
from repro.store.hooks import io_gate

_REGISTRY = get_registry()
_WALK_BYTES_WRITTEN = _REGISTRY.counter(
    "store_walk_bytes_written_total",
    help="Uncompressed walk-tensor bytes saved to .npz files.",
)
_WALK_BYTES_READ = _REGISTRY.counter(
    "store_walk_bytes_read_total",
    help="Uncompressed walk-tensor bytes loaded from .npz files.",
)

WALK_FORMAT = "repro-walk-index"
#: Version 1 was the unversioned seed format (still readable); version 2
#: added the format/version markers this module enforces.
WALK_FORMAT_VERSION = 2

_REQUIRED_METADATA = ("num_walks", "length", "policy", "nodes")


def save_walks_npz(
    path: str | Path,
    walks: np.ndarray,
    *,
    num_walks: int,
    length: int,
    policy: str,
    nodes: list[str],
) -> None:
    """Write one walk tensor and its metadata to a compressed ``.npz``."""
    io_gate("walks.save", path)
    metadata = {
        "format": WALK_FORMAT,
        "version": WALK_FORMAT_VERSION,
        "num_walks": int(num_walks),
        "length": int(length),
        "policy": str(policy),
        "nodes": list(nodes),
    }
    with span("store.save_walks", nodes=len(nodes), num_walks=num_walks):
        np.savez_compressed(
            path,
            walks=np.ascontiguousarray(walks),
            metadata=np.frombuffer(
                json.dumps(metadata).encode("utf-8"), dtype=np.uint8
            ),
        )
    if is_enabled():
        _WALK_BYTES_WRITTEN.inc(walks.nbytes)


def load_walks_npz(path: str | Path) -> tuple[np.ndarray, dict]:
    """Read and validate a file written by :func:`save_walks_npz`.

    Returns ``(walks, metadata)``.  Raises :class:`GraphError` on any
    structural problem; ``FileNotFoundError`` propagates unchanged so
    callers can distinguish "absent" from "broken".
    """
    path = Path(path)
    io_gate("walks.load", path)
    try:
        with np.load(path, allow_pickle=False) as payload:
            for entry in ("walks", "metadata"):
                if entry not in payload:
                    raise GraphError(
                        f"walk-index file {path} is missing its {entry!r} "
                        f"entry — not a repro walk index, or written by an "
                        f"incompatible version"
                    )
            walks = np.asarray(payload["walks"])
            raw_metadata = payload["metadata"]
    except FileNotFoundError:
        raise
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise GraphError(
            f"walk-index file {path} is corrupt or truncated: {exc}"
        ) from None
    try:
        metadata = json.loads(bytes(np.asarray(raw_metadata).tobytes()).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise GraphError(
            f"walk-index file {path} has unreadable metadata: {exc}"
        ) from None
    if not isinstance(metadata, dict):
        raise GraphError(f"walk-index file {path} has malformed metadata")
    declared_format = metadata.get("format")
    if declared_format is not None and declared_format != WALK_FORMAT:
        raise GraphError(
            f"walk-index file {path} declares format {declared_format!r}, "
            f"expected {WALK_FORMAT!r}"
        )
    version = metadata.get("version", 1 if declared_format is None else None)
    if version not in (1, WALK_FORMAT_VERSION):
        raise GraphError(
            f"walk-index file {path} has unsupported format version "
            f"{metadata.get('version')!r}; this library reads versions 1 "
            f"and {WALK_FORMAT_VERSION}"
        )
    missing = [key for key in _REQUIRED_METADATA if key not in metadata]
    if missing:
        raise GraphError(
            f"walk-index file {path} is missing metadata keys {missing}"
        )
    try:
        num_walks = int(metadata["num_walks"])
        length = int(metadata["length"])
    except (TypeError, ValueError):
        raise GraphError(
            f"walk-index file {path} has non-numeric sampling parameters"
        ) from None
    if not np.issubdtype(walks.dtype, np.integer) or walks.ndim != 3:
        raise GraphError(
            f"walk-index file {path} holds an invalid walk tensor "
            f"(dtype {walks.dtype}, {walks.ndim} dimensions)"
        )
    expected = (len(metadata["nodes"]), num_walks, length + 1)
    if walks.shape != expected:
        raise GraphError(
            f"walk-index file {path} is internally inconsistent: tensor shape "
            f"{walks.shape} does not match metadata {expected}"
        )
    if is_enabled():
        _WALK_BYTES_READ.inc(walks.nbytes)
    return walks, metadata
