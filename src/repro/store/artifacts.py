"""The content-addressed on-disk artifact store.

One *artifact* is a directory holding

``manifest.json``
    format/version markers, the identity that keyed the artifact, a free
    ``meta`` section, and — per stored array — dtype, shape, byte size and
    a sha256 content digest;
``<name>.npy``
    one raw (uncompressed) numpy file per array, written with
    ``allow_pickle=False`` and read back with ``np.load(mmap_mode="r")`` so
    the bytes are **mapped, not copied**: opening an artifact touches no
    array pages, and every reader process shares the same OS page cache;
``<name>.json``
    optional JSON documents (e.g. the serialised graph).

:class:`ArtifactStore` files artifacts under ``root/<key[:2]>/<key>`` where
*key* is the :func:`~repro.store.fingerprint.manifest_key` content hash.
Writes are atomic (temp directory + ``os.replace``), so readers never
observe a half-written artifact.  Reads **fail closed**: any mismatch —
unparsable or missing manifest, format/version drift, a missing or
truncated array file, a dtype/shape header that disagrees with the
manifest, a key that does not match the manifest identity — raises
:class:`StoreError`, and cache-level callers fall back to a rebuild.
Content digests are verified on demand (:meth:`ArtifactStore.verify`)
rather than on every open, which would fault in every page and defeat the
zero-copy design.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Mapping

import numpy as np

from repro.errors import ReproError
from repro.obs.registry import get_registry, is_enabled
from repro.obs.trace import span
from repro.store.fingerprint import FORMAT_VERSION
from repro.store.hooks import io_gate

MANIFEST_NAME = "manifest.json"
ARTIFACT_FORMAT = "repro-engine-artifact"

_REGISTRY = get_registry()

#: Engine cache lookups, incremented by the cache-level caller
#: (:class:`repro.api.QueryEngine`) which owns the hit/miss/rebuild
#: decision this store deliberately does not make.
CACHE_HIT = _REGISTRY.counter(
    "store_cache_hit_total",
    help="Engine cache lookups served by a validated stored artifact.",
)
CACHE_MISS = _REGISTRY.counter(
    "store_cache_miss_total",
    help="Engine cache lookups that found no artifact under the key.",
)
CACHE_STALE = _REGISTRY.counter(
    "store_cache_stale_rebuild_total",
    help="Cached artifacts rejected as stale, corrupt or unusable and rebuilt.",
)

_BYTES_WRITTEN = _REGISTRY.counter(
    "store_bytes_written_total",
    help="Array bytes serialised into artifact directories.",
)
_BYTES_READ = _REGISTRY.counter(
    "store_bytes_read_total",
    help="Array bytes opened from artifacts, by access mode.",
    labelnames=("mode",),
)
_ARTIFACTS_OPENED = _REGISTRY.counter(
    "store_artifact_open_total",
    help="Artifacts opened for reading, by array access mode "
    "(mmap = zero-copy page-cache sharing, copy = materialised).",
    labelnames=("mode",),
)
# Pre-create both mode series so exports always show them, even at zero.
_READ_MMAP = _BYTES_READ.labels(mode="mmap")
_READ_COPY = _BYTES_READ.labels(mode="copy")
_OPENED_MMAP = _ARTIFACTS_OPENED.labels(mode="mmap")
_OPENED_COPY = _ARTIFACTS_OPENED.labels(mode="copy")


class StoreError(ReproError):
    """An artifact is missing, stale, corrupt, or otherwise unusable."""


@dataclass
class StoredArtifact:
    """A validated artifact opened for reading.

    ``arrays`` values are read-only memmaps (zero-copy); ``documents``
    holds the parsed JSON sidecar files.
    """

    path: Path
    manifest: dict
    arrays: dict[str, np.ndarray]
    documents: dict[str, object]

    @property
    def meta(self) -> dict:
        """The free-form metadata section of the manifest."""
        return self.manifest.get("meta", {})

    @property
    def nbytes(self) -> int:
        """Total bytes of all stored arrays."""
        return sum(int(spec["nbytes"]) for spec in self.manifest["arrays"].values())


def _array_spec(array: np.ndarray) -> dict:
    data = np.ascontiguousarray(array)
    return {
        "dtype": str(data.dtype),
        "shape": list(data.shape),
        "nbytes": int(data.nbytes),
        "sha256": hashlib.sha256(data.tobytes()).hexdigest(),
    }


def write_artifact(
    path: str | Path,
    manifest: Mapping[str, object],
    arrays: Mapping[str, np.ndarray],
    documents: Mapping[str, object] | None = None,
) -> Path:
    """Atomically write one artifact directory at *path*.

    *manifest* supplies the identity and ``meta`` sections; the ``arrays``
    section is generated here so the digests always describe the bytes
    actually written.  An existing artifact at *path* is replaced.
    """
    path = Path(path)
    io_gate("artifact.write", path)
    path.parent.mkdir(parents=True, exist_ok=True)
    manifest = dict(manifest)
    manifest.setdefault("format", ARTIFACT_FORMAT)
    manifest.setdefault("version", FORMAT_VERSION)
    manifest["arrays"] = {name: _array_spec(array) for name, array in arrays.items()}
    manifest["documents"] = sorted(documents) if documents else []
    staging = Path(
        tempfile.mkdtemp(prefix=f".{path.name}.tmp-", dir=path.parent)
    )
    try:
        for name, array in arrays.items():
            np.save(staging / f"{name}.npy", np.ascontiguousarray(array),
                    allow_pickle=False)
        for name, document in (documents or {}).items():
            (staging / f"{name}.json").write_text(
                json.dumps(document, indent=1), encoding="utf-8"
            )
        (staging / MANIFEST_NAME).write_text(
            json.dumps(manifest, indent=1, sort_keys=True), encoding="utf-8"
        )
        if path.exists():
            shutil.rmtree(path)
        os.replace(staging, path)
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    if is_enabled():
        _BYTES_WRITTEN.inc(
            sum(int(spec["nbytes"]) for spec in manifest["arrays"].values())
        )
    return path


def read_artifact(path: str | Path, mmap: bool = True) -> StoredArtifact:
    """Open and validate the artifact directory at *path*.

    Raises :class:`StoreError` on any structural problem; never returns a
    partially valid artifact.  With ``mmap=True`` (default) arrays are
    returned as read-only memory maps.
    """
    path = Path(path)
    io_gate("artifact.read", path)
    manifest_path = path / MANIFEST_NAME
    if not path.is_dir() or not manifest_path.is_file():
        raise StoreError(f"no artifact at {path}")
    try:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise StoreError(f"unreadable artifact manifest at {manifest_path}: {exc}") from None
    if manifest.get("format") != ARTIFACT_FORMAT:
        raise StoreError(
            f"{path} is not a {ARTIFACT_FORMAT} artifact "
            f"(format={manifest.get('format')!r})"
        )
    if manifest.get("version") != FORMAT_VERSION:
        raise StoreError(
            f"artifact at {path} has format version {manifest.get('version')!r}, "
            f"this library reads version {FORMAT_VERSION}"
        )
    specs = manifest.get("arrays")
    if not isinstance(specs, dict):
        raise StoreError(f"artifact manifest at {path} lacks an arrays section")
    arrays: dict[str, np.ndarray] = {}
    for name, spec in specs.items():
        array_path = path / f"{name}.npy"
        if not array_path.is_file():
            raise StoreError(f"artifact at {path} is missing array file {name}.npy")
        try:
            array = np.load(
                array_path, mmap_mode="r" if mmap else None, allow_pickle=False
            )
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"artifact array {name}.npy at {path} is corrupt: {exc}"
            ) from None
        if str(array.dtype) != spec["dtype"] or list(array.shape) != list(spec["shape"]):
            raise StoreError(
                f"artifact array {name}.npy at {path} does not match its "
                f"manifest (dtype {array.dtype}, shape {array.shape}; expected "
                f"{spec['dtype']}, {tuple(spec['shape'])})"
            )
        if int(array.nbytes) != int(spec["nbytes"]):
            raise StoreError(
                f"artifact array {name}.npy at {path} is truncated "
                f"({array.nbytes} bytes, manifest says {spec['nbytes']})"
            )
        arrays[name] = array
    documents: dict[str, object] = {}
    for name in manifest.get("documents", []):
        document_path = path / f"{name}.json"
        try:
            documents[name] = json.loads(document_path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise StoreError(
                f"artifact document {name}.json at {path} is corrupt: {exc}"
            ) from None
    if is_enabled():
        (_OPENED_MMAP if mmap else _OPENED_COPY).inc()
        (_READ_MMAP if mmap else _READ_COPY).inc(
            sum(int(spec["nbytes"]) for spec in specs.values())
        )
    return StoredArtifact(path=path, manifest=manifest, arrays=arrays,
                          documents=documents)


class ArtifactStore:
    """Content-addressed artifact cache rooted at one directory.

    Keys are :func:`~repro.store.fingerprint.manifest_key` digests; the
    artifact for key ``k`` lives at ``root/k[:2]/k``.  The store never
    guesses: :meth:`get` returns a validated artifact or raises
    :class:`StoreError` — deciding to rebuild on failure is the caller's
    job (see :class:`repro.api.QueryEngine`).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, key: str) -> Path:
        """Return the directory an artifact with *key* lives at."""
        return self.root / key[:2] / key

    def contains(self, key: str) -> bool:
        """Return whether a (not-yet-validated) artifact exists for *key*."""
        return (self.path_for(key) / MANIFEST_NAME).is_file()

    def put(
        self,
        key: str,
        manifest: Mapping[str, object],
        arrays: Mapping[str, np.ndarray],
        documents: Mapping[str, object] | None = None,
    ) -> Path:
        """Write an artifact under *key* (atomic; replaces any previous one)."""
        manifest = dict(manifest)
        manifest["key"] = key
        with span("store.put", key=key[:12]):
            return write_artifact(self.path_for(key), manifest, arrays, documents)

    def get(self, key: str, mmap: bool = True) -> StoredArtifact:
        """Open, validate and return the artifact stored under *key*."""
        with span("store.get", key=key[:12], mmap=mmap):
            artifact = read_artifact(self.path_for(key), mmap=mmap)
            stored_key = artifact.manifest.get("key")
            if stored_key != key:
                raise StoreError(
                    f"artifact at {artifact.path} was stored under key "
                    f"{stored_key!r}, not {key!r}"
                )
            return artifact

    def delete(self, key: str) -> bool:
        """Remove the artifact for *key*; return whether one existed."""
        path = self.path_for(key)
        if not path.is_dir():
            return False
        shutil.rmtree(path)
        return True

    def keys(self) -> Iterator[str]:
        """Iterate over the keys of every artifact directory present."""
        if not self.root.is_dir():
            return
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for entry in sorted(shard.iterdir()):
                if (entry / MANIFEST_NAME).is_file():
                    yield entry.name

    def verify(self, key: str) -> None:
        """Re-hash every array of *key*'s artifact against its manifest.

        This faults in every page (it is the full-integrity sweep the
        zero-copy open skips); raises :class:`StoreError` on the first
        digest mismatch.
        """
        artifact = self.get(key, mmap=True)
        for name, spec in artifact.manifest["arrays"].items():
            digest = hashlib.sha256(
                np.ascontiguousarray(artifact.arrays[name]).tobytes()
            ).hexdigest()
            if digest != spec["sha256"]:
                raise StoreError(
                    f"artifact array {name}.npy at {artifact.path} fails its "
                    f"content digest"
                )

    def __repr__(self) -> str:
        return f"ArtifactStore(root={str(self.root)!r})"
