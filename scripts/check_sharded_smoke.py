#!/usr/bin/env python
"""CI assertion over the sharded-serve smoke round-trip.

Usage::

    python scripts/check_sharded_smoke.py SHARDED_OUT PLAIN_OUT

Both files hold one ``repro serve`` session's stdout (JSON lines) over
the same request script: a single pair, a BATCH, a TOPK, and HEALTH.
Fails (exit 1, with a message) unless

* both sessions printed a ready banner plus four responses;
* the sharded banner advertises the shard topology (``shards`` list,
  every shard running and not quarantined);
* the pair ``value``, BATCH ``values`` and TOPK ``results`` are
  **bit-identical** between the sharded and unsharded sessions (the
  tentpole scatter-gather guarantee), and nothing is degraded;
* the sharded HEALTH snapshot still shows every shard healthy after the
  traffic.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path


def _fail(message: str) -> "NoReturn":  # noqa: F821 - py3.11 typing-lite
    print(f"check_sharded_smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _load(path: str) -> list[dict]:
    lines = [
        json.loads(line)
        for line in Path(path).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if len(lines) != 5:
        _fail(f"{path}: expected banner + 4 responses, got {len(lines)} lines")
    return lines


def main(argv: list[str]) -> int:
    if len(argv) != 2:
        _fail("usage: check_sharded_smoke.py SHARDED_OUT PLAIN_OUT")
    sharded, plain = _load(argv[0]), _load(argv[1])

    banner = sharded[0]
    if not banner.get("ready"):
        _fail("sharded session never became ready")
    shards = banner.get("shards")
    if not shards:
        _fail("sharded banner carries no shard topology")
    for shard in shards:
        if not shard["running"] or shard["quarantined"]:
            _fail(f"shard {shard['shard']} unhealthy at startup: {shard}")
    if not plain[0].get("ready"):
        _fail("unsharded session never became ready")

    pair_s, batch_s, topk_s, health_s = sharded[1:]
    pair_p, batch_p, topk_p, _ = plain[1:]
    if pair_s["value"] != pair_p["value"]:
        _fail(f"pair value drifted: {pair_s['value']} != {pair_p['value']}")
    if batch_s["values"] != batch_p["values"]:
        _fail(f"BATCH values drifted: {batch_s['values']} != {batch_p['values']}")
    if topk_s["results"] != topk_p["results"]:
        _fail(f"TOPK results drifted: {topk_s['results']} != {topk_p['results']}")
    degraded = [r for r in (pair_s, batch_s, topk_s) if r.get("degraded")]
    if degraded:
        _fail(f"sharded responses degraded: {degraded}")
    for shard in health_s.get("shards", []):
        if not shard["running"] or shard["quarantined"]:
            _fail(f"shard {shard['shard']} unhealthy after traffic: {shard}")

    print(
        "check_sharded_smoke: OK — "
        f"{len(shards)} shards, pair/BATCH/TOPK bit-identical to unsharded"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
