#!/usr/bin/env python
"""CI gate over the low-rank engine family's top-k accuracy.

Usage::

    PYTHONPATH=src python scripts/check_lowrank_smoke.py \
        [--rank 16] [--k 10] [--min-overlap 0.9] [--bundle PATH]

Builds a rank-r :class:`LowRankSemSim` factorization over the bundled
example graph (the paper's Figure 1 network; ``--bundle`` substitutes
any saved bundle JSON) and an iterative oracle, then measures mean
top-k overlap@k across every node as a query.  Fails (exit 1, with the
per-query breakdown) unless the mean overlap meets the floor.

Both engines run ungated (``theta=None``): the iterative oracle has no
θ parameter, so a gate on one side only would skew the comparison.

Also asserts two exactness anchors so the smoke catches kernel
regressions, not just ranking drift:

* a full-rank build reproduces the iterative scores to 1e-9 (the
  dense-exact path embeds the semantics in the factored kernel);
* the error-vs-rank curve of the one factorization is monotone
  non-increasing.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _fail(message: str) -> None:
    print(f"check_lowrank_smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _load_model(bundle_path: str | None):
    if bundle_path is not None:
        from repro.datasets.io import load_bundle_json

        bundle = load_bundle_json(bundle_path)
        return bundle.graph, bundle.measure, f"bundle {bundle_path}"
    from repro.datasets import figure1_network

    data = figure1_network()
    return data.graph, data.measure, "figure1 example network"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rank", type=int, default=16)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--min-overlap", type=float, default=0.9)
    parser.add_argument("--bundle", default=None)
    args = parser.parse_args(argv)

    from repro.api import QueryEngine

    graph, measure, label = _load_model(args.bundle)
    n = graph.num_nodes
    print(f"check_lowrank_smoke: {label} ({n} nodes), "
          f"rank={args.rank}, overlap@{args.k} floor {args.min_overlap}")

    oracle = QueryEngine(graph, measure, method="iterative",
                         tolerance=1e-12, theta=None)
    lowrank = QueryEngine(graph, measure, method="lowrank",
                          rank=args.rank, theta=None)

    nodes = sorted(graph.nodes(), key=str)
    overlaps = []
    for query in nodes:
        candidates = [v for v in nodes if v != query]
        depth = min(args.k, len(candidates))
        got = {v for v, _ in lowrank.top_k(query, depth,
                                           candidates=candidates)}
        want = {v for v, _ in oracle.top_k(query, depth,
                                           candidates=candidates)}
        overlaps.append(len(got & want) / depth)
    mean_overlap = float(np.mean(overlaps))
    print(f"  mean overlap@{args.k}: {mean_overlap:.3f} "
          f"(min {min(overlaps):.2f} over {len(nodes)} queries)")
    if mean_overlap < args.min_overlap:
        detail = ", ".join(
            f"{q}={o:.2f}" for q, o in zip(nodes, overlaps) if o < 1.0
        )
        _fail(f"mean overlap@{args.k} {mean_overlap:.3f} < "
              f"{args.min_overlap} [{detail}]")

    # exactness anchor: full rank == iterative fixed point
    full = QueryEngine(graph, measure, method="lowrank", rank=n, theta=None)
    worst = 0.0
    for query in nodes:
        diff = np.abs(
            np.asarray(full.score_batch(query, nodes))
            - np.asarray(oracle.score_batch(query, nodes))
        )
        worst = max(worst, float(diff.max()))
    print(f"  full-rank vs iterative max |err|: {worst:.2e}")
    if worst > 1e-9:
        _fail(f"full-rank build no longer reproduces the iterative "
              f"fixed point (max err {worst:.2e} > 1e-9)")

    # monotonicity anchor: truncations of one factorization only improve
    target = full.estimator.reconstruct()
    errors = [
        float(np.linalg.norm(target - full.estimator.truncated(r).reconstruct()))
        for r in range(1, n + 1)
    ]
    if any(b > a + 1e-12 for a, b in zip(errors, errors[1:])):
        _fail("error-vs-rank curve is not monotone non-increasing")
    print(f"  error-vs-rank monotone over {n} ranks "
          f"(rank-1 {errors[0]:.3f} -> rank-{n} {errors[-1]:.1e})")
    print("check_lowrank_smoke: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
