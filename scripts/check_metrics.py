#!/usr/bin/env python
"""CI assertion over the CLI's observability output.

Usage::

    python scripts/check_metrics.py [METRICS_JSON] [--trace TRACE_JSONL]
        [--expect-counter NAME ...] [--expect-histogram NAME ...]
        [--prom FILE [--expect-prom REGEX ...]]
        [--health FILE [--expect-health KEY ...]]

Parses the ``--metrics-out`` dump of one ``python -m repro`` invocation
(or a ``/metrics?format=json`` scrape body — same shape) and fails
(exit 1, with a message) unless

* the file is valid JSON with the ``counters``/``gauges``/``histograms``
  sections;
* every ``--expect-counter`` family exists and has at least one series
  with value > 0;
* every ``--expect-histogram`` family exists and has at least one series
  with count > 0, a ``+Inf`` bucket equal to that count, and a
  non-negative sum;
* when ``--trace`` is given, the file is non-empty and every line parses
  as a JSON object with ``span``/``wall_seconds``/``status`` fields;
* when ``--prom`` is given, the file is structurally valid Prometheus
  text (every non-comment line is ``name{labels} value``) and every
  ``--expect-prom`` regex matches at least one line;
* when ``--health`` is given, the file is a JSON object carrying every
  ``--expect-health`` key.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path


def fail(message: str) -> None:
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_counter(dump: dict, name: str) -> float:
    family = dump.get("counters", {}).get(name)
    if family is None:
        fail(f"counter {name!r} is not registered")
    total = sum(sample["value"] for sample in family["samples"])
    if total <= 0:
        fail(f"counter {name!r} never incremented (total {total})")
    return total


def check_histogram(dump: dict, name: str) -> int:
    family = dump.get("histograms", {}).get(name)
    if family is None:
        fail(f"histogram {name!r} is not registered")
    live = [s for s in family["samples"] if s["count"] > 0]
    if not live:
        fail(f"histogram {name!r} has no observations")
    for sample in live:
        if sample["buckets"].get("+Inf") != sample["count"]:
            fail(f"histogram {name!r}: +Inf bucket != count in {sample}")
        if sample["sum"] < 0:
            fail(f"histogram {name!r}: negative sum in {sample}")
    return sum(s["count"] for s in live)


#: ``name{labels} value`` — the only sample-line shape the 0.0.4 text
#: format allows (label values may contain escaped quotes).
_PROM_LINE = re.compile(
    r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*")*\})?'
    r' [0-9eE.+-]+(?:\s+[0-9]+)?$'
)


def check_prom(path: Path, expectations: list[str]) -> int:
    text = path.read_text(encoding="utf-8")
    lines = [line for line in text.splitlines() if line]
    samples = 0
    for i, line in enumerate(lines, 1):
        if line.startswith("#"):
            continue
        if not _PROM_LINE.match(line):
            fail(f"{path}:{i} is not a Prometheus sample line: {line!r}")
        samples += 1
    if samples == 0:
        fail(f"{path} carries no Prometheus samples")
    for pattern in expectations:
        if not re.search(pattern, text, flags=re.MULTILINE):
            fail(f"{path} matches no line against --expect-prom {pattern!r}")
    return samples


def check_health(path: Path, keys: list[str]) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse health body {path}: {exc}")
    if not isinstance(payload, dict) or not payload:
        fail(f"health body {path} is not a non-empty JSON object")
    for key in keys:
        if key not in payload:
            fail(f"health body {path} lacks the {key!r} key")
    return payload


def check_trace(path: Path) -> int:
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        fail(f"trace file {path} is empty")
    for i, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"trace line {i} is not JSON: {exc}")
        for field in ("span", "wall_seconds", "status"):
            if field not in record:
                fail(f"trace line {i} lacks {field!r}: {line}")
    return len(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", type=Path, nargs="?", default=None,
                        help="--metrics-out JSON file (or a JSON scrape body)")
    parser.add_argument("--trace", type=Path, default=None,
                        help="--trace-out JSONL file to validate too")
    parser.add_argument("--expect-counter", action="append", default=[],
                        metavar="NAME", help="counter that must be > 0")
    parser.add_argument("--expect-histogram", action="append", default=[],
                        metavar="NAME", help="histogram that must have counts")
    parser.add_argument("--prom", type=Path, default=None, metavar="FILE",
                        help="Prometheus text scrape body to validate")
    parser.add_argument("--expect-prom", action="append", default=[],
                        metavar="REGEX", help="pattern the --prom body "
                        "must match (repeatable)")
    parser.add_argument("--health", type=Path, default=None, metavar="FILE",
                        help="/health JSON body to validate")
    parser.add_argument("--expect-health", action="append", default=[],
                        metavar="KEY", help="key the --health body must carry")
    args = parser.parse_args(argv)
    if args.metrics is None and args.prom is None and args.health is None:
        parser.error("nothing to check: give METRICS_JSON, --prom or --health")

    if args.metrics is not None:
        try:
            dump = json.loads(args.metrics.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            fail(f"cannot parse {args.metrics}: {exc}")
        for section in ("counters", "gauges", "histograms"):
            if section not in dump:
                fail(f"{args.metrics} lacks the {section!r} section")
        for name in args.expect_counter:
            total = check_counter(dump, name)
            print(f"check_metrics: ok: counter {name} = {total:g}")
        for name in args.expect_histogram:
            count = check_histogram(dump, name)
            print(f"check_metrics: ok: histogram {name} count = {count}")
    elif args.expect_counter or args.expect_histogram:
        parser.error("--expect-counter/--expect-histogram need METRICS_JSON")

    if args.trace is not None:
        spans = check_trace(args.trace)
        print(f"check_metrics: ok: {spans} trace spans parse")
    if args.prom is not None:
        samples = check_prom(args.prom, args.expect_prom)
        print(f"check_metrics: ok: {samples} Prometheus samples parse, "
              f"{len(args.expect_prom)} patterns matched")
    if args.health is not None:
        payload = check_health(args.health, args.expect_health)
        print(f"check_metrics: ok: health body carries {sorted(payload)}")
    print("check_metrics: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
