#!/usr/bin/env python
"""CI assertion over the CLI's observability output.

Usage::

    python scripts/check_metrics.py METRICS_JSON [--trace TRACE_JSONL]
        [--expect-counter NAME ...] [--expect-histogram NAME ...]

Parses the ``--metrics-out`` dump of one ``python -m repro`` invocation
and fails (exit 1, with a message) unless

* the file is valid JSON with the ``counters``/``gauges``/``histograms``
  sections;
* every ``--expect-counter`` family exists and has at least one series
  with value > 0;
* every ``--expect-histogram`` family exists and has at least one series
  with count > 0, a ``+Inf`` bucket equal to that count, and a
  non-negative sum;
* when ``--trace`` is given, the file is non-empty and every line parses
  as a JSON object with ``span``/``wall_seconds``/``status`` fields.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def fail(message: str) -> None:
    print(f"check_metrics: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def check_counter(dump: dict, name: str) -> float:
    family = dump.get("counters", {}).get(name)
    if family is None:
        fail(f"counter {name!r} is not registered")
    total = sum(sample["value"] for sample in family["samples"])
    if total <= 0:
        fail(f"counter {name!r} never incremented (total {total})")
    return total


def check_histogram(dump: dict, name: str) -> int:
    family = dump.get("histograms", {}).get(name)
    if family is None:
        fail(f"histogram {name!r} is not registered")
    live = [s for s in family["samples"] if s["count"] > 0]
    if not live:
        fail(f"histogram {name!r} has no observations")
    for sample in live:
        if sample["buckets"].get("+Inf") != sample["count"]:
            fail(f"histogram {name!r}: +Inf bucket != count in {sample}")
        if sample["sum"] < 0:
            fail(f"histogram {name!r}: negative sum in {sample}")
    return sum(s["count"] for s in live)


def check_trace(path: Path) -> int:
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        fail(f"trace file {path} is empty")
    for i, line in enumerate(lines, 1):
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            fail(f"trace line {i} is not JSON: {exc}")
        for field in ("span", "wall_seconds", "status"):
            if field not in record:
                fail(f"trace line {i} lacks {field!r}: {line}")
    return len(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("metrics", type=Path, help="--metrics-out JSON file")
    parser.add_argument("--trace", type=Path, default=None,
                        help="--trace-out JSONL file to validate too")
    parser.add_argument("--expect-counter", action="append", default=[],
                        metavar="NAME", help="counter that must be > 0")
    parser.add_argument("--expect-histogram", action="append", default=[],
                        metavar="NAME", help="histogram that must have counts")
    args = parser.parse_args(argv)

    try:
        dump = json.loads(args.metrics.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        fail(f"cannot parse {args.metrics}: {exc}")
    for section in ("counters", "gauges", "histograms"):
        if section not in dump:
            fail(f"{args.metrics} lacks the {section!r} section")

    for name in args.expect_counter:
        total = check_counter(dump, name)
        print(f"check_metrics: ok: counter {name} = {total:g}")
    for name in args.expect_histogram:
        count = check_histogram(dump, name)
        print(f"check_metrics: ok: histogram {name} count = {count}")
    if args.trace is not None:
        spans = check_trace(args.trace)
        print(f"check_metrics: ok: {spans} trace spans parse")
    print(f"check_metrics: PASS ({args.metrics})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
