#!/usr/bin/env python
"""CI mutation-soak: a live serve session must track a cold rebuild.

Two subcommands around one ``repro serve --index`` session:

``generate INDEX SESSION_OUT EXPECTED_OUT``
    Derives a deterministic ~100-mutation schedule (edge inserts,
    re-weights, deletes — all between nodes the index already knows, so
    the bundle's semantic measure stays valid) from the artifact's own
    graph, interleaves it with queries, and writes

    * ``SESSION_OUT`` — the protocol lines to pipe into ``repro serve``
      (mutations, mid-soak queries, final query block, ``HEALTH``);
    * ``EXPECTED_OUT`` — the final-query scores computed *offline* by
      applying the whole schedule to a cold-opened engine
      (:meth:`QueryEngine.with_mutations`), plus the schedule size.

``verify SERVE_OUT EXPECTED_OUT``
    Parses the serve session's stdout and fails (exit 1) unless

    * the session became ready and nothing was degraded;
    * every mutation line was acknowledged (``mutated: true``) with a
      strictly increasing epoch;
    * the final query block is **bit-identical** to the offline cold
      rebuild — the incremental-maintenance guarantee, end to end;
    * the closing HEALTH snapshot reports every mutation applied.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Mutation count for the soak (inserts + re-weights + deletes).
NUM_MUTATIONS = 100
#: A query is interleaved after every Nth mutation.
QUERY_EVERY = 5
#: Final query block size (pairs scored after the full schedule).
NUM_FINAL_PAIRS = 10
SCHEDULE_SEED = 20260808


def _fail(message: str) -> "NoReturn":  # noqa: F821 - py3.11 typing-lite
    print(f"check_mutation_smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _build_schedule(graph, rng):
    """A deterministic mutation schedule legal at every step.

    Tracks the evolving edge set on a local replica so deletes always
    hit a live edge and inserts never create self-loops; weights stay in
    a small integer range so re-weights are visible in the tensors.
    """
    nodes = sorted(graph.nodes(), key=str)
    schedule = []
    for _ in range(NUM_MUTATIONS):
        kinds = ["insert", "reweight"]
        if graph.num_edges > len(nodes):  # keep the graph connected-ish
            kinds.append("delete")
        kind = kinds[int(rng.integers(len(kinds)))]
        if kind == "delete":
            edges = list(graph.edges())
            u, v, _w, _label = edges[int(rng.integers(len(edges)))]
            graph.remove_edge(u, v)
            schedule.append(("remove_edge", u, v))
            continue
        if kind == "reweight":
            edges = list(graph.edges())
            u, v, _w, _label = edges[int(rng.integers(len(edges)))]
        else:
            while True:
                i, j = rng.integers(len(nodes), size=2)
                if i != j:
                    break
            u, v = nodes[int(i)], nodes[int(j)]
        weight = float(rng.integers(1, 6))
        graph.add_edge(u, v, weight=weight)
        schedule.append(("add_edge", u, v, weight))
    return schedule


def _query_pairs(graph, rng, count):
    nodes = sorted(graph.nodes(), key=str)
    pairs = []
    while len(pairs) < count:
        i, j = rng.integers(len(nodes), size=2)
        if i != j:
            pairs.append((nodes[int(i)], nodes[int(j)]))
    return pairs


def _generate(index_path: str, session_out: str, expected_out: str) -> int:
    import numpy as np

    from repro.api import QueryEngine

    engine = QueryEngine.open(index_path)
    rng = np.random.default_rng(SCHEDULE_SEED)
    schedule = _build_schedule(engine.graph.copy(), rng)
    final_pairs = _query_pairs(engine.graph, rng, NUM_FINAL_PAIRS)

    lines = []
    for position, mutation in enumerate(schedule):
        if mutation[0] == "remove_edge":
            lines.append(f"DELEDGE {mutation[1]} {mutation[2]}")
        else:
            lines.append(
                f"UPDATE {mutation[1]} {mutation[2]} {mutation[3]}"
            )
        if (position + 1) % QUERY_EVERY == 0:
            u, v = final_pairs[(position // QUERY_EVERY) % len(final_pairs)]
            lines.append(f"{u} {v}")
    for u, v in final_pairs:
        lines.append(f"{u} {v}")
    lines.append("HEALTH")
    Path(session_out).write_text("\n".join(lines) + "\n", encoding="utf-8")

    # the offline oracle: one cold-opened engine, the whole schedule at
    # once — bit-identity makes "all at once" and "one per line" converge
    mutated = engine.with_mutations(schedule)
    expected = {
        "mutations": len(schedule),
        "pairs": [[u, v] for u, v in final_pairs],
        "scores": [mutated.score(u, v) for u, v in final_pairs],
    }
    Path(expected_out).write_text(json.dumps(expected), encoding="utf-8")
    print(
        f"check_mutation_smoke: wrote {len(schedule)} mutations, "
        f"{len(lines)} protocol lines, {len(final_pairs)} oracle pairs"
    )
    return 0


def _verify(serve_out: str, expected_out: str) -> int:
    expected = json.loads(Path(expected_out).read_text(encoding="utf-8"))
    responses = [
        json.loads(line)
        for line in Path(serve_out).read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    if not responses or not responses[0].get("ready"):
        _fail("serve session never became ready")
    body = responses[1:]

    errors = [r for r in body if "error" in r]
    if errors:
        _fail(f"{len(errors)} protocol errors, first: {errors[0]}")
    degraded = [r for r in body if r.get("degraded")]
    if degraded:
        _fail(f"{len(degraded)} degraded responses, first: {degraded[0]}")

    acks = [r for r in body if r.get("mutated")]
    if len(acks) != expected["mutations"]:
        _fail(
            f"expected {expected['mutations']} mutation acks, "
            f"got {len(acks)}"
        )
    epochs = [ack["epoch"] for ack in acks]
    if epochs != sorted(set(epochs)):
        _fail(f"mutation epochs not strictly increasing: {epochs[:10]}...")

    queries = [r for r in body if "value" in r]
    final = queries[-len(expected["pairs"]):]
    if len(final) != len(expected["pairs"]):
        _fail(
            f"expected {len(expected['pairs'])} final queries, "
            f"session produced {len(queries)}"
        )
    for response, (u, v), score in zip(
        final, expected["pairs"], expected["scores"]
    ):
        if [response["u"], response["v"]] != [u, v]:
            _fail(f"final query order drifted: {response} vs {(u, v)}")
        if response["value"] != score:
            _fail(
                f"score for ({u}, {v}) drifted from the cold rebuild: "
                f"{response['value']} != {score}"
            )

    health = responses[-1]
    if health.get("mutations_applied") != expected["mutations"]:
        _fail(
            "HEALTH reports "
            f"{health.get('mutations_applied')} mutations applied, "
            f"expected {expected['mutations']}"
        )
    print(
        "check_mutation_smoke: OK — "
        f"{expected['mutations']} live mutations, final "
        f"{len(expected['pairs'])} scores bit-identical to a cold rebuild"
    )
    return 0


def main(argv: list[str]) -> int:
    if len(argv) == 4 and argv[0] == "generate":
        return _generate(argv[1], argv[2], argv[3])
    if len(argv) == 3 and argv[0] == "verify":
        return _verify(argv[1], argv[2])
    _fail(
        "usage: check_mutation_smoke.py generate INDEX SESSION_OUT "
        "EXPECTED_OUT | verify SERVE_OUT EXPECTED_OUT"
    )


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
