#!/usr/bin/env python
"""End-to-end scrape smoke over a live sharded ``repro serve`` session.

Usage::

    python scripts/run_scrape_smoke.py --index INDEX [--shards N]
        [--prom-out FILE] [--json-out FILE] [--health-out FILE]
        [--request LINE ...]

Spawns ``python -m repro serve --index INDEX --shards N --metrics-port 0
--timings`` as a subprocess, reads the resolved scrape port back from the
ready banner, drives a handful of protocol requests (pair, BATCH, TOPK by
default), and — while the session is still serving — fetches

* ``/metrics`` (Prometheus text, the cross-process aggregated view),
* ``/metrics?format=json`` (the same view, ``check_metrics.py``-shaped),
* ``/health`` (the runtime's health snapshot as JSON),

writing each body to its ``--*-out`` file for downstream assertions.
Every response line must parse as JSON, must not be degraded, and must
carry a 16-hex ``trace_id`` (the ``--timings`` contract).  Exit is 0 only
if the serve subprocess itself also drains and exits 0.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import urllib.request
from pathlib import Path

DEFAULT_REQUESTS = ("n3 n4", "BATCH n3 n4 n5 n6", "TOPK n3 3")


def fail(message: str) -> None:
    print(f"run_scrape_smoke: FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def fetch(port: int, path: str) -> str:
    url = f"http://127.0.0.1:{port}{path}"
    try:
        with urllib.request.urlopen(url, timeout=30.0) as response:
            return response.read().decode("utf-8")
    except OSError as exc:
        fail(f"scrape of {url} failed: {exc}")
    raise AssertionError("unreachable")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--index", required=True, help="prebuilt index artifact")
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--prom-out", type=Path, default=None,
                        metavar="FILE", help="write the /metrics body here")
    parser.add_argument("--json-out", type=Path, default=None, metavar="FILE",
                        help="write the /metrics?format=json body here")
    parser.add_argument("--health-out", type=Path, default=None,
                        metavar="FILE", help="write the /health body here")
    parser.add_argument("--request", action="append", default=[],
                        metavar="LINE", help="protocol line to send "
                        f"(default: {', '.join(map(repr, DEFAULT_REQUESTS))})")
    args = parser.parse_args(argv)
    requests = args.request or list(DEFAULT_REQUESTS)

    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--index", args.index, "--shards", str(args.shards),
         "--metrics-port", "0", "--timings"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True,
    )
    try:
        banner = json.loads(proc.stdout.readline())
        if not banner.get("ready"):
            fail(f"serve did not come up ready: {banner}")
        port = banner.get("metrics_port")
        if not port:
            fail(f"banner carries no metrics_port: {banner}")
        print(f"run_scrape_smoke: serving {args.shards} shards, "
              f"scrape endpoint on port {port}")

        for line in requests:
            proc.stdin.write(line + "\n")
            proc.stdin.flush()
            response = json.loads(proc.stdout.readline())
            if "error" in response:
                fail(f"request {line!r} answered with {response}")
            if response.get("degraded"):
                fail(f"request {line!r} served degraded: {response}")
            trace_id = response.get("trace_id", "")
            if len(trace_id) != 16:
                fail(f"request {line!r} lacks a trace id: {response}")
            print(f"run_scrape_smoke: ok: {line!r} -> trace {trace_id}")

        # scrape while the session is live — this is the whole point
        bodies = {
            "prom": fetch(port, "/metrics"),
            "json": fetch(port, "/metrics?format=json"),
            "health": fetch(port, "/health"),
        }
        if "# TYPE" not in bodies["prom"]:
            fail("/metrics body is not Prometheus text")
        json.loads(bodies["json"])
        if "circuit" not in json.loads(bodies["health"]):
            fail(f"/health body lacks the health payload: {bodies['health']}")
        for key, out in (("prom", args.prom_out), ("json", args.json_out),
                         ("health", args.health_out)):
            if out is not None:
                out.write_text(bodies[key], encoding="utf-8")
                print(f"run_scrape_smoke: wrote /{key} body -> {out}")

        proc.stdin.close()  # EOF: graceful drain
        code = proc.wait(timeout=120)
        if code != 0:
            fail(f"serve exited {code}")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    print("run_scrape_smoke: PASS")
    return 0


if __name__ == "__main__":
    sys.exit(main())
