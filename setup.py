"""Setuptools shim.

The primary build configuration lives in ``pyproject.toml``; this file only
enables legacy installs (``python setup.py develop`` / ``pip install -e .``)
on environments whose setuptools predates PEP 660 editable wheels.
"""

from setuptools import setup

setup()
