"""Shared fixtures and random-model builders for the test-suite."""

from __future__ import annotations

import hashlib
import random

import numpy as np
import pytest

from repro.datasets import figure1_network
from repro.hin import HIN
from repro.semantics import LinMeasure
from repro.taxonomy import Taxonomy


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "uses_global_rng: the test intentionally consumes entropy from the "
        "global random / numpy RNGs (exempts it from the determinism check)",
    )
    config.addinivalue_line(
        "markers",
        "concurrency: thread-stress tests exercising the scheduler and "
        "shared mutable state under real concurrency (the CI smoke job "
        "runs exactly these: pytest -m concurrency)",
    )


def _is_hypothesis_test(request) -> bool:
    """Hypothesis manages (and restores) global RNG state itself."""
    obj = getattr(request.node, "obj", None)
    return obj is not None and hasattr(obj, "hypothesis")


@pytest.fixture(autouse=True)
def _seeded_global_rngs(request):
    """Seed the global RNGs per test and fail tests that consume them.

    Every test starts from a seed derived from its own node id, so any
    accidental use of the *global* ``random`` / ``numpy.random`` state is
    at least reproducible.  But code under test is expected to take
    explicit seeds (``np.random.default_rng(seed)``, ``random.Random``),
    so consumption of the global streams is treated as a bug: the
    teardown asserts the states did not move.  Opt out deliberately with
    ``@pytest.mark.uses_global_rng``.
    """
    seed = int.from_bytes(
        hashlib.sha256(request.node.nodeid.encode()).digest()[:4], "big"
    )
    random.seed(seed)
    np.random.seed(seed)
    state_before = random.getstate()
    np_state_before = np.random.get_state()
    yield
    if request.node.get_closest_marker("uses_global_rng"):
        return
    if _is_hypothesis_test(request):
        return
    np_moved = not all(
        np.array_equal(a, b)
        for a, b in zip(np_state_before, np.random.get_state())
    )
    if random.getstate() != state_before or np_moved:
        pytest.fail(
            f"{request.node.nodeid} consumed entropy from an unseeded global "
            f"RNG (random and/or numpy.random). Thread an explicit seed "
            f"(np.random.default_rng / random.Random) instead, or mark the "
            f"test with @pytest.mark.uses_global_rng.",
            pytrace=False,
        )


@pytest.fixture
def triangle_graph() -> HIN:
    """Three nodes, symmetric edges plus one directed chord."""
    g = HIN()
    g.add_undirected_edge("a", "b")
    g.add_undirected_edge("b", "c")
    g.add_edge("a", "c")
    return g


@pytest.fixture
def weighted_taxonomy_graph() -> tuple[HIN, LinMeasure]:
    """A small two-community HIN with a taxonomy and Lin measure."""
    return build_taxonomy_graph()


@pytest.fixture
def figure1():
    """The paper's Figure 1 bundle."""
    return figure1_network()


def build_taxonomy_graph() -> tuple[HIN, LinMeasure]:
    """Deterministic small HIN used by several exactness tests."""
    g = HIN()
    tax_edges = [
        ("x1", "mid1"), ("x2", "mid1"),
        ("x3", "mid2"), ("x4", "mid2"),
        ("mid1", "root"), ("mid2", "root"),
    ]
    for child, parent in tax_edges:
        g.add_undirected_edge(child, parent, label="is-a")
    g.add_undirected_edge("x1", "x2", weight=2.0)
    g.add_undirected_edge("x2", "x3")
    g.add_undirected_edge("x3", "x4")
    g.add_edge("x1", "x4")
    taxonomy = Taxonomy.from_edges(tax_edges)
    return g, LinMeasure(taxonomy)


def random_hin_with_measure(
    seed: int,
    num_entities: int = 8,
    num_categories: int = 3,
    extra_edges: int = 10,
) -> tuple[HIN, LinMeasure]:
    """Build a random two-layer HIN deterministically from *seed*.

    Used by the hypothesis-driven theorem tests: hypothesis draws the seed
    and sizes, this function turns them into a concrete model.
    """
    rng = np.random.default_rng(seed)
    taxonomy = Taxonomy()
    taxonomy.add_concept("root")
    categories = [f"cat{i}" for i in range(num_categories)]
    for category in categories:
        taxonomy.add_concept(category, parents=["root"])
    entities = [f"e{i}" for i in range(num_entities)]
    assignment = {e: categories[int(rng.integers(num_categories))] for e in entities}
    for entity, category in assignment.items():
        taxonomy.add_concept(entity, parents=[category])

    graph = HIN()
    for entity in entities:
        graph.add_node(entity, label="entity")
    for concept in taxonomy.concepts():
        if concept not in graph:
            graph.add_node(concept, label="concept")
    for concept in taxonomy.concepts():
        for parent in taxonomy.parents(concept):
            graph.add_undirected_edge(concept, parent, label="is-a")
    for _ in range(extra_edges):
        i, j = rng.integers(num_entities, size=2)
        if i == j:
            continue
        weight = float(rng.integers(1, 4))
        graph.add_undirected_edge(entities[int(i)], entities[int(j)], weight=weight)
    return graph, LinMeasure(taxonomy)
