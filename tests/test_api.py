"""Tests of the `repro.api` facade (QueryEngine).

Includes the tier-1 guard that every public name in ``repro.api.__all__``
actually imports, so the facade can't silently lose surface area.
"""

import numpy as np
import pytest

import repro
import repro.api
from repro.api import QueryEngine
from repro.errors import ConfigurationError
from repro.semantics import MatrixMeasure
from tests.conftest import build_taxonomy_graph


@pytest.fixture(scope="module")
def taxonomy_graph():
    return build_taxonomy_graph()


@pytest.fixture(scope="module")
def mc_engine(taxonomy_graph):
    graph, measure = taxonomy_graph
    return QueryEngine(graph, measure, method="mc", decay=0.6,
                       num_walks=60, length=8, seed=7)


@pytest.fixture(scope="module")
def iterative_engine(taxonomy_graph):
    graph, measure = taxonomy_graph
    return QueryEngine(graph, measure, method="iterative", decay=0.6)


def test_all_public_names_importable():
    for name in repro.api.__all__:
        assert hasattr(repro.api, name), name
    # and the facade is re-exported from the package root
    assert repro.QueryEngine is QueryEngine
    assert "QueryEngine" in repro.__all__


class TestConstruction:
    def test_invalid_method_rejected(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        with pytest.raises(ConfigurationError, match="method"):
            QueryEngine(graph, measure, method="exact")

    def test_invalid_materialize_flag_rejected(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        with pytest.raises(ConfigurationError, match="materialize"):
            QueryEngine(graph, measure, materialize_semantics="maybe")

    def test_legacy_kwargs_rejected(self, taxonomy_graph):
        # The PR-1 deprecation shims are gone: old spellings now TypeError.
        graph, measure = taxonomy_graph
        with pytest.raises(TypeError):
            QueryEngine(graph, measure, c=0.4, walks=10,
                        walk_length=4, seed=0)

    def test_auto_materializes_measure(self, mc_engine):
        assert isinstance(mc_engine.measure, MatrixMeasure)

    def test_materialize_false_keeps_measure(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        engine = QueryEngine(graph, measure, materialize_semantics=False,
                             num_walks=10, length=4, seed=0)
        assert engine.measure is measure

    def test_measure_none_gives_simrank(self, taxonomy_graph):
        graph, _ = taxonomy_graph
        mc = QueryEngine(graph, method="mc", num_walks=20, length=5, seed=0)
        it = QueryEngine(graph, method="iterative")
        assert mc.score("x1", "x1") == 1.0
        assert it.score("x1", "x1") == 1.0

    def test_from_error_target_plans_index(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        engine = QueryEngine.from_error_target(
            graph, measure, epsilon=0.3, delta=0.2, seed=0
        )
        from repro.core.bounds import plan_index
        num_walks, length = plan_index(0.6, 0.3, 0.2, graph.num_nodes)
        assert engine.num_walks == num_walks
        assert engine.length == length

    def test_repr_names_backend(self, mc_engine, iterative_engine):
        assert "WalkIndex" in repr(mc_engine)
        assert "SemSim" in repr(iterative_engine)


class TestQueries:
    def test_score_matches_underlying_estimator(self, mc_engine):
        assert mc_engine.score("x1", "x2") == \
            mc_engine.estimator.similarity("x1", "x2")

    def test_score_batch_matches_score(self, mc_engine, taxonomy_graph):
        graph, _ = taxonomy_graph
        nodes = list(graph.nodes())
        batch = mc_engine.score_batch("x1", nodes)
        for node, value in zip(nodes, batch):
            assert value == mc_engine.score("x1", node)

    def test_iterative_score_batch_matches_score(
        self, iterative_engine, taxonomy_graph
    ):
        graph, _ = taxonomy_graph
        nodes = list(graph.nodes())
        batch = iterative_engine.score_batch("x1", nodes)
        for node, value in zip(nodes, batch):
            assert value == iterative_engine.score("x1", node)

    def test_single_source_defaults_to_all_nodes(self, mc_engine, taxonomy_graph):
        graph, _ = taxonomy_graph
        scores = mc_engine.single_source("x1")
        assert set(scores) == set(graph.nodes())
        assert scores["x1"] == 1.0

    def test_top_k_is_sorted_and_consistent(self, mc_engine, taxonomy_graph):
        graph, _ = taxonomy_graph
        candidates = [n for n in graph.nodes() if n != "x1"]
        results = mc_engine.top_k("x1", 3, candidates=candidates)
        assert len(results) == 3
        values = [v for _, v in results]
        assert values == sorted(values, reverse=True)
        for node, value in results:
            assert value == pytest.approx(mc_engine.score("x1", node))

    def test_top_k_agrees_across_methods_on_ranking(self, iterative_engine,
                                                    taxonomy_graph):
        graph, _ = taxonomy_graph
        candidates = [n for n in graph.nodes() if n != "x1"]
        results = iterative_engine.top_k("x1", 2, candidates=candidates)
        full = iterative_engine.single_source("x1", candidates)
        best = sorted(full.items(), key=lambda item: -item[1])[:2]
        assert [v for _, v in results] == [v for _, v in best]

    def test_join_mc_scores_above_threshold(self, mc_engine):
        for u, v, value in mc_engine.join(0.01):
            assert u != v
            assert value > 0.01
            assert value == pytest.approx(mc_engine.score(u, v))

    def test_join_iterative_matches_matrix(self, iterative_engine,
                                           taxonomy_graph):
        graph, _ = taxonomy_graph
        joined = iterative_engine.join(0.05)
        seen = {frozenset((u, v)) for u, v, _ in joined}
        assert len(seen) == len(joined)  # unordered pairs, no duplicates
        for u, v, value in joined:
            assert value == iterative_engine.score(u, v)
            assert value > 0.05
        # completeness: every above-threshold pair is present
        nodes = list(graph.nodes())
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if iterative_engine.score(u, v) > 0.05:
                    assert frozenset((u, v)) in seen

    def test_join_iterative_restrict_to(self, iterative_engine):
        subset = {"x1", "x2", "x3"}
        for u, v, _ in iterative_engine.join(0.01, restrict_to=subset):
            assert u in subset and v in subset

    def test_join_invalid_threshold(self, iterative_engine):
        with pytest.raises(ConfigurationError, match="min_score"):
            iterative_engine.join(0.0)

    def test_candidate_pairs_requires_mc(self, iterative_engine, mc_engine):
        with pytest.raises(ConfigurationError, match="mc"):
            iterative_engine.candidate_pairs()
        pairs = list(mc_engine.candidate_pairs())
        assert all(u != v for u, v in pairs)


class TestLinearFamilies:
    """The linear/lowrank engine families through the facade."""

    def test_estimator_alias_selects_method(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        engine = QueryEngine(graph, measure, estimator="linear")
        assert engine.method == "linear"
        engine = QueryEngine(graph, measure, estimator="lowrank", rank=4)
        assert engine.method == "lowrank"
        assert engine.rank == 4

    def test_estimator_conflicting_with_method_rejected(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        with pytest.raises(ConfigurationError, match="estimator"):
            QueryEngine(graph, measure, method="iterative",
                        estimator="lowrank")

    def test_linear_tracks_iterative_oracle(self, taxonomy_graph):
        from repro.core import semsim_scores

        graph, measure = taxonomy_graph
        linear = QueryEngine(graph, measure, method="linear",
                             tolerance=1e-9)
        table = semsim_scores(graph, measure, decay=0.6, tolerance=1e-13,
                              max_iterations=400)
        for node in graph.nodes():
            assert linear.score("mid1", node) == pytest.approx(
                table.score("mid1", node), abs=1e-7
            )

    def test_lowrank_full_rank_reproduces_iterative(self, taxonomy_graph):
        # the dense-exact path factors the sem-embedded kernel, so a
        # full-rank build reproduces the iterative fixed point outright
        graph, measure = taxonomy_graph
        n = graph.num_nodes
        lowrank = QueryEngine(graph, measure, method="lowrank", rank=n,
                              theta=None)
        oracle = QueryEngine(graph, measure, method="iterative",
                             tolerance=1e-12)
        for node in graph.nodes():
            assert lowrank.score("mid1", node) == pytest.approx(
                oracle.score("mid1", node), abs=1e-9
            )

    def test_join_requires_candidate_generation(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        for method in ("linear", "lowrank"):
            engine = QueryEngine(graph, measure, method=method)
            with pytest.raises(ConfigurationError, match="candidate"):
                engine.join(0.1)

    def test_rank_validated(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        with pytest.raises(ConfigurationError, match="rank"):
            QueryEngine(graph, measure, method="lowrank", rank=0)

    def test_lowrank_save_open_roundtrip(self, taxonomy_graph, tmp_path):
        graph, measure = taxonomy_graph
        engine = QueryEngine(graph, measure, method="lowrank", rank=4,
                             seed=2)
        path = engine.save(tmp_path / "lowrank.idx")
        reopened = QueryEngine.open(path)
        assert reopened.method == "lowrank"
        assert reopened.rank == 4
        nodes = list(graph.nodes())
        np.testing.assert_array_equal(
            engine.score_batch("mid1", nodes),
            reopened.score_batch("mid1", nodes),
        )

    def test_linear_save_open_roundtrip(self, taxonomy_graph, tmp_path):
        graph, measure = taxonomy_graph
        engine = QueryEngine(graph, measure, method="linear")
        path = engine.save(tmp_path / "linear.idx")
        reopened = QueryEngine.open(path)
        assert reopened.method == "linear"
        for node in graph.nodes():
            assert reopened.score("mid1", node) == pytest.approx(
                engine.score("mid1", node), abs=1e-7
            )


class TestStats:
    def test_stats_are_per_engine(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        a = QueryEngine(graph, measure, num_walks=10, length=4, seed=0)
        b = QueryEngine(graph, measure, num_walks=10, length=4, seed=0)
        a.score("x1", "x2")
        assert a.stats.queries == 1
        assert b.stats.queries == 0

    def test_reset_stats(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        engine = QueryEngine(graph, measure, num_walks=10, length=4, seed=0)
        engine.score_batch("x1", ["x2", "x3"])
        assert engine.stats.batch_pairs == 2
        engine.reset_stats()
        assert engine.stats.batch_pairs == 0

    def test_iterative_engine_counts_queries(self, taxonomy_graph):
        graph, measure = taxonomy_graph
        engine = QueryEngine(graph, measure, method="iterative")
        engine.score("x1", "x2")
        engine.score_batch("x1", ["x2", "x3"])
        assert engine.stats.queries == 3
        assert engine.stats.batch_queries == 1
        assert engine.stats.vectorized_pairs == 2


def test_cli_query_and_topk_run_on_facade(tmp_path, capsys):
    from repro.cli import main
    from repro.datasets import aminer_like
    from repro.datasets.io import save_bundle_json

    bundle = aminer_like(num_authors=20, num_terms=12, seed=3)
    path = tmp_path / "bundle.json"
    save_bundle_json(bundle, str(path))
    capsys.readouterr()

    u, v = bundle.entity_nodes[0], bundle.entity_nodes[1]
    assert main(["query", str(path), u, v, "--method", "mc",
                 "--walks", "20", "--length", "5", "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "semsim" in out and "[mc]" in out

    assert main(["topk", str(path), u, "-k", "3"]) == 0
    out = capsys.readouterr().out
    assert "top-3" in out

    # config errors surface as a clean CLI error, not a traceback
    assert main(["query", str(path), u, v, "--theta", "1.5"]) == 2
    err = capsys.readouterr().err
    assert "theta must lie in [0, 1]" in err
