"""Unit tests for the exception hierarchy and package surface."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    EdgeNotFoundError,
    GraphError,
    InvalidWeightError,
    MeasureAxiomError,
    NodeNotFoundError,
    ReproError,
    TaxonomyError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            NodeNotFoundError,
            EdgeNotFoundError,
            InvalidWeightError,
            TaxonomyError,
            MeasureAxiomError,
            ConvergenceError,
            ConfigurationError,
        ],
    )
    def test_everything_derives_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_node_not_found_carries_node(self):
        error = NodeNotFoundError("ghost")
        assert error.node == "ghost"
        assert "ghost" in str(error)

    def test_edge_not_found_carries_endpoints(self):
        error = EdgeNotFoundError("a", "b")
        assert (error.source, error.target) == ("a", "b")

    def test_convergence_error_message(self):
        error = ConvergenceError(50, 0.123)
        assert error.iterations == 50
        assert "50" in str(error) and "1.230e-01" in str(error)


class TestPackageSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"
