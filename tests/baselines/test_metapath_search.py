"""Unit tests for automatic meta-path selection."""

import pytest

from repro.baselines import (
    AveragedPathSim,
    enumerate_half_paths,
    select_meta_path,
)
from repro.errors import ConfigurationError
from repro.hin import HIN


@pytest.fixture
def labelled_graph() -> HIN:
    g = HIN()
    for author, term in [("a1", "t1"), ("a2", "t1"), ("a3", "t2")]:
        g.add_edge(author, term, label="interest")
    for term, topic in [("t1", "topic"), ("t2", "topic")]:
        g.add_edge(term, topic, label="is-a")
    g.add_undirected_edge("a1", "a2", label="co-author")
    return g


class TestEnumerateHalfPaths:
    def test_single_labels_always_present(self, labelled_graph):
        paths = enumerate_half_paths(labelled_graph, max_length=1)
        assert ("interest",) in paths
        assert ("co-author",) in paths
        assert all(len(p) == 1 for p in paths)

    def test_composability_filter(self, labelled_graph):
        paths = enumerate_half_paths(labelled_graph, max_length=2)
        # interest ends at terms; is-a starts at terms -> composable.
        assert ("interest", "is-a") in paths
        # is-a ends at the topic, where no interest edge starts.
        assert ("is-a", "interest") not in paths

    def test_invalid_length(self, labelled_graph):
        with pytest.raises(ConfigurationError):
            enumerate_half_paths(labelled_graph, max_length=0)


class TestSelectMetaPath:
    def test_picks_the_discriminating_path(self, labelled_graph):
        # Gold: a1~a2 related (shared term), a1~a3 not.
        validation = [("a1", "a2", 1.0), ("a1", "a3", 0.0), ("a2", "a3", 0.0)]
        choice = select_meta_path(labelled_graph, validation, max_length=2)
        model = choice.model
        assert model.similarity("a1", "a2") > model.similarity("a1", "a3")
        assert choice.validation_score > 0.5

    def test_empty_validation_rejected(self, labelled_graph):
        with pytest.raises(ConfigurationError):
            select_meta_path(labelled_graph, [])

    def test_reports_chosen_path(self, labelled_graph):
        validation = [("a1", "a2", 1.0), ("a1", "a3", 0.0)]
        choice = select_meta_path(labelled_graph, validation, max_length=1)
        assert len(choice.meta_path) == 1


class TestAveragedPathSim:
    def test_self_similarity(self, labelled_graph):
        assert AveragedPathSim(labelled_graph).similarity("a1", "a1") == 1.0

    def test_average_in_unit_interval(self, labelled_graph):
        averaged = AveragedPathSim(labelled_graph, max_length=2)
        for u in ("a1", "a2", "a3"):
            for v in ("a1", "a2", "a3"):
                assert 0.0 <= averaged.similarity(u, v) <= 1.0

    def test_footnote5_averaging_is_weaker_than_selection(self, labelled_graph):
        """The paper's footnote: averaging all paths is inferior to the
        right path — here the averaged score separates the gold pairs less
        sharply than the selected path does."""
        validation = [("a1", "a2", 1.0), ("a1", "a3", 0.0), ("a2", "a3", 0.0)]
        choice = select_meta_path(labelled_graph, validation, max_length=2)
        averaged = AveragedPathSim(labelled_graph, max_length=2)
        selected_gap = choice.model.similarity("a1", "a2") - choice.model.similarity("a1", "a3")
        averaged_gap = averaged.similarity("a1", "a2") - averaged.similarity("a1", "a3")
        assert selected_gap >= averaged_gap

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            AveragedPathSim(HIN())
