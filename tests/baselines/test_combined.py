"""Unit tests for the Multiplication/Average combiners."""

import pytest

from repro.baselines import AverageMeasure, MultiplicationMeasure


def structural(u, v):
    return 0.4


def semantic(u, v):
    return 0.8


class TestMultiplication:
    def test_product(self):
        assert MultiplicationMeasure(structural, semantic).similarity("a", "b") == pytest.approx(0.32)

    def test_self_similarity(self):
        assert MultiplicationMeasure(structural, semantic).similarity("a", "a") == 1.0


class TestAverage:
    def test_mean(self):
        assert AverageMeasure(structural, semantic).similarity("a", "b") == pytest.approx(0.6)

    def test_self_similarity(self):
        assert AverageMeasure(structural, semantic).similarity("a", "a") == 1.0

    def test_order_invariance(self):
        a = AverageMeasure(structural, semantic).similarity("x", "y")
        b = AverageMeasure(semantic, structural).similarity("x", "y")
        assert a == pytest.approx(b)
