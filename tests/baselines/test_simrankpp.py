"""Unit tests for SimRank++."""

import numpy as np
import pytest

from repro.baselines import SimRankPP, simrankpp_scores
from repro.baselines.simrankpp import _evidence_matrix
from repro.core import simrank_scores
from repro.hin import HIN


@pytest.fixture
def shared_parents() -> HIN:
    g = HIN()
    g.add_edge("p1", "u")
    g.add_edge("p1", "v")
    g.add_edge("p2", "u")
    g.add_edge("p2", "v")
    g.add_edge("p1", "w")
    return g


class TestEvidence:
    def test_no_common_neighbours(self, shared_parents):
        nodes = list(shared_parents.nodes())
        evidence = _evidence_matrix(shared_parents, nodes)
        i, j = nodes.index("p1"), nodes.index("p2")
        assert evidence[i, j] == 0.0

    def test_closed_form(self, shared_parents):
        nodes = list(shared_parents.nodes())
        evidence = _evidence_matrix(shared_parents, nodes)
        i, j = nodes.index("u"), nodes.index("v")
        # |common| = 2 -> 1/2 + 1/4 = 0.75
        assert evidence[i, j] == pytest.approx(0.75)

    def test_diagonal_is_one(self, shared_parents):
        nodes = list(shared_parents.nodes())
        evidence = _evidence_matrix(shared_parents, nodes)
        assert np.allclose(np.diag(evidence), 1.0)

    def test_evidence_grows_with_common_neighbours(self):
        g = HIN()
        for k in range(4):
            g.add_edge(f"p{k}", "many1")
            g.add_edge(f"p{k}", "many2")
        g.add_edge("p0", "few1")
        g.add_edge("p0", "few2")
        nodes = list(g.nodes())
        evidence = _evidence_matrix(g, nodes)
        many = evidence[nodes.index("many1"), nodes.index("many2")]
        few = evidence[nodes.index("few1"), nodes.index("few2")]
        assert many > few


class TestScores:
    def test_self_similarity(self, shared_parents):
        assert SimRankPP(shared_parents).similarity("u", "u") == 1.0

    def test_scaled_below_weighted_simrank(self, shared_parents):
        pp = simrankpp_scores(shared_parents, decay=0.6, max_iterations=20)
        weighted = simrank_scores(
            shared_parents, decay=0.6, max_iterations=20, weighted=True
        )
        # evidence <= 1 scales scores down (off-diagonal).
        i = pp.nodes.index("u")
        j = pp.nodes.index("v")
        assert pp.matrix[i, j] <= weighted.matrix[i, j] + 1e-12

    def test_symmetry(self, shared_parents):
        engine = SimRankPP(shared_parents)
        assert engine.similarity("u", "v") == pytest.approx(engine.similarity("v", "u"))

    def test_spread_dampens_high_variance_witnesses(self):
        """A node with wildly varying in-weights is damped by the spread
        factor, so similarity through it drops versus the no-spread mode."""
        g = HIN()
        g.add_edge("p", "u", weight=10.0)
        g.add_edge("q", "u", weight=0.1)
        g.add_edge("p", "v", weight=10.0)
        g.add_edge("q", "v", weight=0.1)
        with_spread = SimRankPP(g, use_spread=True, max_iterations=30)
        without = SimRankPP(g, use_spread=False, max_iterations=30)
        assert with_spread.similarity("u", "v") < without.similarity("u", "v")

    def test_spread_is_noop_on_uniform_weights(self):
        """var = 0 -> spread = 1: both modes coincide on unit weights
        because the spread adjacency is then plain column normalisation."""
        g = HIN()
        g.add_edge("p", "u")
        g.add_edge("p", "v")
        g.add_edge("q", "u")
        with_spread = SimRankPP(g, use_spread=True, max_iterations=40, tolerance=1e-10)
        without = SimRankPP(g, use_spread=False, max_iterations=40, tolerance=1e-10)
        assert with_spread.similarity("u", "v") == pytest.approx(
            without.similarity("u", "v"), abs=1e-6
        )

    def test_spread_scores_stay_bounded(self, shared_parents):
        engine = SimRankPP(shared_parents, use_spread=True, max_iterations=40)
        matrix = engine.result.matrix
        assert matrix.min() >= 0.0 and matrix.max() <= 1.0 + 1e-9

    def test_weights_matter(self):
        light = HIN()
        light.add_edge("p", "u", weight=1.0)
        light.add_edge("p", "v", weight=1.0)
        light.add_edge("q", "u", weight=1.0)
        heavy = HIN()
        heavy.add_edge("p", "u", weight=9.0)
        heavy.add_edge("p", "v", weight=1.0)
        heavy.add_edge("q", "u", weight=1.0)
        assert SimRankPP(light).similarity("u", "v") != pytest.approx(
            SimRankPP(heavy).similarity("u", "v")
        )
