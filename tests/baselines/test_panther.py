"""Unit tests for Panther."""

import pytest

from repro.baselines import Panther
from repro.errors import ConfigurationError
from repro.hin import HIN


@pytest.fixture
def two_communities() -> HIN:
    g = HIN()
    for a, b in [("a1", "a2"), ("a2", "a3"), ("a1", "a3")]:
        g.add_undirected_edge(a, b)
    for a, b in [("b1", "b2"), ("b2", "b3"), ("b1", "b3")]:
        g.add_undirected_edge(a, b)
    g.add_undirected_edge("a1", "b1")  # weak bridge
    return g


class TestPanther:
    def test_validation(self, two_communities):
        with pytest.raises(ConfigurationError):
            Panther(two_communities, num_paths=0)
        with pytest.raises(ConfigurationError):
            Panther(two_communities, path_length=1)

    def test_self_similarity(self, two_communities):
        assert Panther(two_communities, num_paths=100, seed=0).similarity("a1", "a1") == 1.0

    def test_intra_community_beats_cross(self, two_communities):
        panther = Panther(two_communities, num_paths=5000, path_length=4, seed=0)
        intra = panther.similarity("a2", "a3")
        cross = panther.similarity("a2", "b2")
        assert intra > cross

    def test_symmetry_of_lookup(self, two_communities):
        panther = Panther(two_communities, num_paths=2000, seed=0)
        assert panther.similarity("a1", "a2") == panther.similarity("a2", "a1")

    def test_reproducible(self, two_communities):
        a = Panther(two_communities, num_paths=500, seed=3).similarity("a1", "a2")
        b = Panther(two_communities, num_paths=500, seed=3).similarity("a1", "a2")
        assert a == b

    def test_weighted_steps(self):
        g = HIN()
        g.add_undirected_edge("hub", "heavy", weight=20.0)
        g.add_undirected_edge("hub", "light", weight=1.0)
        panther = Panther(g, num_paths=4000, path_length=3, seed=1)
        assert panther.similarity("hub", "heavy") > panther.similarity("hub", "light")

    def test_recommended_paths_formula(self):
        assert Panther.recommended_paths(5, eps=0.05, delta=0.1) > 100

    def test_empty_graph(self):
        panther = Panther(HIN(), num_paths=10, seed=0)
        assert panther.similarity("x", "y") == 0.0
