"""Unit tests for PathSim."""

import pytest

from repro.baselines import PathSim
from repro.errors import ConfigurationError
from repro.hin import HIN


@pytest.fixture
def bibliographic() -> HIN:
    """Authors writing papers at venues — the classic PathSim setting."""
    g = HIN()
    for author, venue, count in [
        ("mike", "sigmod", 2.0),
        ("mike", "vldb", 1.0),
        ("jim", "sigmod", 50.0),
        ("jim", "vldb", 20.0),
        ("ann", "sigmod", 2.0),
        ("ann", "icde", 1.0),
    ]:
        g.add_edge(author, venue, weight=count, label="publishes")
    return g


class TestPathSim:
    def test_empty_meta_path_rejected(self, bibliographic):
        with pytest.raises(ConfigurationError):
            PathSim(bibliographic, [])

    def test_self_similarity(self, bibliographic):
        assert PathSim(bibliographic, ["publishes"]).similarity("mike", "mike") == 1.0

    def test_balanced_profiles_beat_skewed(self, bibliographic):
        """PathSim's signature behaviour: it prefers peers with *similar*
        visibility, not just overlapping neighbourhoods (Sun et al.'s
        Mike/Jim example)."""
        pathsim = PathSim(bibliographic, ["publishes"])
        assert pathsim.similarity("mike", "ann") > pathsim.similarity("mike", "jim")

    def test_range(self, bibliographic):
        pathsim = PathSim(bibliographic, ["publishes"])
        for u in ("mike", "jim", "ann"):
            for v in ("mike", "jim", "ann"):
                assert 0.0 <= pathsim.similarity(u, v) <= 1.0

    def test_symmetry(self, bibliographic):
        pathsim = PathSim(bibliographic, ["publishes"])
        assert pathsim.similarity("mike", "jim") == pytest.approx(
            pathsim.similarity("jim", "mike")
        )

    def test_label_not_present_scores_zero(self, bibliographic):
        pathsim = PathSim(bibliographic, ["co-author"])
        assert pathsim.similarity("mike", "ann") == 0.0

    def test_from_all_labels(self, bibliographic):
        pathsim = PathSim.from_all_labels(bibliographic)
        assert pathsim.similarity("mike", "ann") > 0.0

    def test_two_step_meta_path(self):
        g = HIN()
        g.add_edge("a", "t1", label="interest")
        g.add_edge("t1", "topic", label="is-a")
        g.add_edge("b", "t2", label="interest")
        g.add_edge("t2", "topic", label="is-a")
        pathsim = PathSim(g, ["interest", "is-a"])
        # a and b reach the same topic through (interest, is-a).
        assert pathsim.similarity("a", "b") == pytest.approx(1.0)
