"""Unit tests for P-Rank and its semantic variant."""

import numpy as np
import pytest

from repro.baselines import PRank, prank_scores, sem_prank_scores
from repro.core import simrank_scores
from repro.errors import ConfigurationError
from repro.hin import HIN
from repro.semantics import ConstantMeasure

from tests.conftest import build_taxonomy_graph


@pytest.fixture
def directed_graph() -> HIN:
    g = HIN()
    g.add_edge("p", "u")
    g.add_edge("p", "v")
    g.add_edge("u", "s")
    g.add_edge("v", "s")
    g.add_edge("u", "t")
    return g


class TestPRank:
    def test_validation(self, directed_graph):
        with pytest.raises(ConfigurationError):
            prank_scores(directed_graph, decay=1.0)
        with pytest.raises(ConfigurationError):
            prank_scores(directed_graph, in_weight=1.5)

    def test_empty_graph(self):
        nodes, matrix = prank_scores(HIN())
        assert nodes == [] and matrix.shape == (0, 0)

    def test_symmetry_and_diagonal(self, directed_graph):
        _, matrix = prank_scores(directed_graph, decay=0.6)
        assert np.allclose(matrix, matrix.T)
        assert np.allclose(np.diag(matrix), 1.0)

    def test_in_weight_one_equals_simrank(self, directed_graph):
        """lambda = 1 drops the out-link term: plain SimRank remains."""
        _, matrix = prank_scores(
            directed_graph, decay=0.6, in_weight=1.0,
            max_iterations=200, tolerance=1e-12,
        )
        reference = simrank_scores(
            directed_graph, decay=0.6, max_iterations=200, tolerance=1e-12
        )
        assert np.allclose(matrix, reference.matrix, atol=1e-9)

    def test_out_links_add_information(self, directed_graph):
        """u and v share an out-neighbour (s): P-Rank sees it, SimRank-only
        recursion does too (via p), but the out-term must change scores."""
        _, simrank_like = prank_scores(directed_graph, in_weight=1.0, tolerance=1e-10)
        nodes, prank = prank_scores(directed_graph, in_weight=0.5, tolerance=1e-10)
        i, j = nodes.index("u"), nodes.index("v")
        assert prank[i, j] != pytest.approx(simrank_like[i, j])

    def test_wrapper_interface(self, directed_graph):
        engine = PRank(directed_graph)
        assert engine.similarity("u", "u") == 1.0
        assert 0.0 <= engine.similarity("u", "v") <= 1.0


class TestSemPRank:
    def test_constant_measure_matches_weighted_prank(self):
        graph, _ = build_taxonomy_graph()
        nodes_a, semantic = sem_prank_scores(
            graph, ConstantMeasure(1.0), decay=0.6, tolerance=1e-10
        )
        # With sem == 1 the only difference from plain P-Rank is the edge
        # weights; verify shape properties instead of exact equality.
        assert np.allclose(semantic, semantic.T)
        assert np.allclose(np.diag(semantic), 1.0)
        assert semantic.min() >= 0 and semantic.max() <= 1 + 1e-9

    def test_semantics_change_the_ranking(self):
        graph, measure = build_taxonomy_graph()
        nodes, plain = prank_scores(graph, decay=0.6, tolerance=1e-10)
        _, semantic = sem_prank_scores(graph, measure, decay=0.6, tolerance=1e-10)
        assert not np.allclose(plain, semantic)

    def test_semantic_upper_bound_carries_over(self):
        """Prop. 2.5's argument applies to the boosted P-Rank too."""
        graph, measure = build_taxonomy_graph()
        nodes, semantic = sem_prank_scores(graph, measure, decay=0.6, tolerance=1e-10)
        for i, u in enumerate(nodes):
            for j, v in enumerate(nodes):
                assert semantic[i, j] <= measure.similarity(u, v) + 1e-9
