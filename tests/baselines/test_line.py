"""Unit tests for the LINE embedding baseline."""

import numpy as np
import pytest

from repro.baselines import LineEmbedding
from repro.errors import ConfigurationError
from repro.hin import HIN


def two_cliques(bridge: bool = True) -> HIN:
    g = HIN()
    left = [f"l{i}" for i in range(5)]
    right = [f"r{i}" for i in range(5)]
    for group in (left, right):
        for i, a in enumerate(group):
            for b in group[i + 1:]:
                g.add_undirected_edge(a, b)
    if bridge:
        g.add_undirected_edge("l0", "r0")
    return g


class TestLine:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LineEmbedding(two_cliques(), dimensions=1)
        with pytest.raises(ConfigurationError):
            LineEmbedding(two_cliques(), order=3)

    def test_self_similarity(self):
        line = LineEmbedding(two_cliques(), dimensions=8, num_samples=5000, seed=0)
        assert line.similarity("l0", "l0") == 1.0

    def test_similarity_in_unit_interval(self):
        line = LineEmbedding(two_cliques(), dimensions=8, num_samples=5000, seed=0)
        for u in ("l0", "l1", "r0"):
            for v in ("l2", "r1"):
                assert 0.0 <= line.similarity(u, v) <= 1.0

    def test_community_structure_learned(self):
        line = LineEmbedding(
            two_cliques(), dimensions=16, num_samples=120_000, seed=0
        )
        intra = np.mean([line.similarity("l1", f"l{i}") for i in (2, 3, 4)])
        cross = np.mean([line.similarity("l1", f"r{i}") for i in (2, 3, 4)])
        assert intra > cross

    def test_reproducible(self):
        a = LineEmbedding(two_cliques(), dimensions=8, num_samples=3000, seed=9)
        b = LineEmbedding(two_cliques(), dimensions=8, num_samples=3000, seed=9)
        assert np.allclose(a.vector("l0"), b.vector("l0"))

    def test_first_order_variant_runs(self):
        line = LineEmbedding(
            two_cliques(), dimensions=8, num_samples=3000, order=1, seed=0
        )
        assert 0.0 <= line.similarity("l0", "l1") <= 1.0

    def test_empty_graph(self):
        line = LineEmbedding(HIN(), dimensions=4, seed=0)
        assert line.nodes == []
