"""Unit tests for HeteSim."""

import pytest

from repro.baselines import HeteSim
from repro.errors import ConfigurationError
from repro.hin import HIN


@pytest.fixture
def bibliographic() -> HIN:
    g = HIN()
    for author, paper in [("a1", "p1"), ("a1", "p2"), ("a2", "p2"), ("a3", "p3")]:
        g.add_edge(author, paper, label="writes")
    for paper, venue in [("p1", "sigmod"), ("p2", "sigmod"), ("p3", "icml")]:
        g.add_edge(paper, venue, label="published-at")
    return g


class TestHeteSim:
    def test_empty_meta_path_rejected(self, bibliographic):
        with pytest.raises(ConfigurationError):
            HeteSim(bibliographic, [])

    def test_self_similarity(self, bibliographic):
        assert HeteSim(bibliographic, ["writes"]).similarity("a1", "a1") == 1.0

    def test_shared_paper_relevance(self, bibliographic):
        """a1 and a2 co-wrote p2; a3 shares no paper with a1."""
        hetesim = HeteSim(bibliographic, ["writes"])
        assert hetesim.similarity("a1", "a2") > 0.0
        assert hetesim.similarity("a1", "a3") == 0.0

    def test_longer_path_broadens_relevance(self, bibliographic):
        """Meeting at venues: a1 ~ a2 strongly, a1 ~ a3 still disjoint."""
        hetesim = HeteSim(bibliographic, ["writes", "published-at"])
        assert hetesim.similarity("a1", "a2") > hetesim.similarity("a1", "a3")
        assert hetesim.similarity("a1", "a3") == 0.0

    def test_exact_value_single_step(self, bibliographic):
        """h_a1 = (1/2, 1/2) over {p1, p2}; h_a2 = (0, 1): cosine = 1/sqrt(2)."""
        hetesim = HeteSim(bibliographic, ["writes"])
        assert hetesim.similarity("a1", "a2") == pytest.approx(2 ** -0.5)

    def test_range(self, bibliographic):
        hetesim = HeteSim(bibliographic, ["writes"])
        for u in ("a1", "a2", "a3"):
            for v in ("a1", "a2", "a3"):
                assert 0.0 <= hetesim.similarity(u, v) <= 1.0 + 1e-12

    def test_symmetry(self, bibliographic):
        hetesim = HeteSim(bibliographic, ["writes"])
        assert hetesim.similarity("a1", "a2") == pytest.approx(
            hetesim.similarity("a2", "a1")
        )

    def test_missing_label_gives_zero(self, bibliographic):
        hetesim = HeteSim(bibliographic, ["cites"])
        assert hetesim.similarity("a1", "a2") == 0.0
