"""Unit tests for the ontology Relatedness baseline."""

import pytest

from repro.baselines import OntologyRelatedness
from repro.errors import ConfigurationError
from repro.hin import HIN
from repro.semantics import LinMeasure
from repro.taxonomy import Taxonomy


@pytest.fixture
def model():
    g = HIN()
    tax_edges = [("dog", "animal"), ("cat", "animal"), ("bone", "object"),
                 ("animal", "root"), ("object", "root")]
    for child, parent in tax_edges:
        g.add_undirected_edge(child, parent, label="is-a")
    g.add_undirected_edge("dog", "bone", label="likes")
    taxonomy = Taxonomy.from_edges(tax_edges)
    return g, LinMeasure(taxonomy)


class TestOntologyRelatedness:
    def test_validation(self, model):
        graph, measure = model
        with pytest.raises(ConfigurationError):
            OntologyRelatedness(graph, measure, property_cost=0.0)

    def test_self_similarity(self, model):
        graph, measure = model
        assert OntologyRelatedness(graph, measure).similarity("dog", "dog") == 1.0

    def test_property_edge_creates_relatedness(self, model):
        graph, measure = model
        relatedness = OntologyRelatedness(graph, measure)
        # dog-bone are taxonomically distant but property-linked.
        assert relatedness.similarity("dog", "bone") > relatedness.similarity("cat", "bone")

    def test_taxonomic_siblings_related(self, model):
        graph, measure = model
        relatedness = OntologyRelatedness(graph, measure)
        assert relatedness.similarity("dog", "cat") > 0.3

    def test_out_of_range_pairs_score_zero(self, model):
        graph, measure = model
        graph.add_node("island")
        relatedness = OntologyRelatedness(graph, measure, max_cost=2.0)
        assert relatedness.similarity("dog", "island") == 0.0

    def test_symmetry(self, model):
        graph, measure = model
        relatedness = OntologyRelatedness(graph, measure)
        assert relatedness.similarity("dog", "bone") == pytest.approx(
            relatedness.similarity("bone", "dog")
        )

    def test_range(self, model):
        graph, measure = model
        relatedness = OntologyRelatedness(graph, measure)
        for u in graph.nodes():
            for v in graph.nodes():
                assert 0.0 <= relatedness.similarity(u, v) <= 1.0
