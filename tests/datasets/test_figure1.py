"""Unit tests for the Figure 1 / Figure 2 bundles."""

import pytest

from repro.datasets import FIGURE1_IC_TABLE, figure1_network, figure2_graph
from repro.semantics import validate_measure


class TestFigure1:
    def test_entities(self, figure1):
        assert set(figure1.entity_nodes) == {"Aditi", "Bo", "John", "Paul"}

    def test_collaboration_weights(self, figure1):
        for author in ("Aditi", "Bo", "John"):
            assert figure1.graph.edge_weight(author, "Paul") == 2.0

    def test_ic_table_in_range(self):
        assert all(0 < v <= 1 for v in FIGURE1_IC_TABLE.values())

    def test_taxonomy_is_dag_not_tree(self, figure1):
        # Crowd Mining has two hypernyms.
        assert not figure1.taxonomy.is_tree()
        assert set(figure1.taxonomy.parents("Crowd Mining")) == {
            "Crowdsourcing", "Data Mining",
        }

    def test_measure_axioms(self, figure1):
        validate_measure(figure1.measure, list(figure1.graph.nodes()))

    def test_is_a_edges_symmetric_in_graph(self, figure1):
        assert figure1.graph.has_edge("India", "Country in Asia")
        assert figure1.graph.has_edge("Country in Asia", "India")

    def test_deterministic(self):
        a = figure1_network()
        b = figure1_network()
        assert list(a.graph.nodes()) == list(b.graph.nodes())


class TestFigure2:
    def test_pair_ab_in_neighbours(self):
        graph, _ = figure2_graph()
        assert set(graph.in_neighbors("A")) == {"Canada", "Author"}
        assert set(graph.in_neighbors("B")) == {"USA", "Author"}

    def test_lin_pins(self):
        _, bundle = figure2_graph()
        assert bundle.measure.similarity("Canada", "USA") == pytest.approx(0.8)
        assert bundle.measure.similarity("Author", "USA") == pytest.approx(0.2)
